"""The abstract's headline: in-memory storage applications.

"Our proposed mechanism results in significant improvements (a 41 %
reduction in execution overhead on average versus the state-of-the-art)
for in-memory storage applications."

Storage applications persist their writes explicitly (CLWB + fence), so
every committed update drags the metadata persistence protocol onto the
application's critical path. This benchmark runs three canonical
storage shapes (KV store, OLTP, append-log) with flush-tagged writes
and compares AMNT against the state-of-the-art (Anubis) and the
baselines, reporting the overhead reduction the abstract quantifies.
"""

from repro.bench.reporting import format_series
from repro.config import default_config
from repro.sim.engine import simulate
from repro.sim.machine import build_machine
from repro.sim.results import normalized_cycles
from repro.sim.runner import geometric_mean
from repro.workloads.storage import generate_storage_trace, storage_names, storage_profile

PROTOCOLS = ("volatile", "leaf", "strict", "anubis", "bmf", "amnt")


def run_storage_suite(accesses: int, seed: int):
    config = default_config()
    figure = {}
    for name in storage_names():
        trace = generate_storage_trace(
            storage_profile(name), seed=seed, accesses=accesses
        )
        results = {}
        for protocol in PROTOCOLS:
            machine = build_machine(config, protocol, seed=seed)
            results[protocol] = simulate(machine, trace, seed=seed)
        figure[name] = normalized_cycles(results)
    return figure


def test_storage_applications(
    benchmark, bench_accesses, bench_seed, shape_checks
):
    figure = benchmark.pedantic(
        run_storage_suite,
        kwargs={"accesses": bench_accesses, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_series(
            figure,
            title="In-memory storage applications (explicit persistence), "
            "normalized cycles",
        )
    )
    means = {
        protocol: geometric_mean(
            figure[name][protocol] for name in storage_names()
        )
        for protocol in PROTOCOLS
    }
    amnt_overhead = means["amnt"] - 1.0
    anubis_overhead = means["anubis"] - 1.0
    reduction = 1.0 - amnt_overhead / anubis_overhead
    print(
        f"geomean overheads: amnt={amnt_overhead:.1%} "
        f"anubis={anubis_overhead:.1%} strict={means['strict'] - 1:.1%} -> "
        f"AMNT reduces overhead vs state-of-the-art by {reduction:.1%}"
    )

    if not shape_checks:
        return  # smoke run: table printed, assertions need warmed caches
    # The abstract's claim, directionally: a large average reduction
    # versus the state-of-the-art on storage workloads.
    assert reduction > 0.25
    # And AMNT stays near the leaf floor even with every write on the
    # commit path.
    for name in storage_names():
        assert figure[name]["amnt"] <= figure[name]["leaf"] * 1.10
        assert figure[name]["strict"] > figure[name]["amnt"]
