"""Ablation — static vs dynamic hybrid persistence (the §2.3 thesis).

The paper's framing: static approaches (Triad-NVM's fixed level
partition, PLP's parallel strict updates) "miss out on potential
performance benefits by treating all addresses the same", and "to the
best of our knowledge, there is no work that proposes a dynamic
persistence scheme" — AMNT being that scheme. This ablation lines the
static designs up against AMNT on a hot-region workload where treating
addresses differently is exactly what pays: all four protocols offer
bounded (or instant) recovery, so the runtime column isolates the value
of *dynamic* hot-region adaptation.
"""

from repro.bench.reporting import format_table
from repro.config import default_config
from repro.core.recovery import RecoveryAnalysis
from repro.sim.engine import simulate
from repro.sim.machine import build_machine
from repro.util.units import TB
from repro.workloads.spec import spec_profile
from repro.workloads.synthetic import generate_trace

PROTOCOLS = ("volatile", "leaf", "strict", "plp", "triad", "amnt")


def run_comparison(accesses: int, seed: int):
    config = default_config()
    analysis = RecoveryAnalysis(config)
    trace = generate_trace(
        spec_profile("xz").scaled(accesses=accesses), seed=seed
    )
    rows = []
    baseline = None
    for name in PROTOCOLS:
        machine = build_machine(config, name, seed=seed)
        result = simulate(machine, trace, seed=seed)
        if baseline is None:
            baseline = result.cycles
        rows.append(
            {
                "protocol": name,
                "norm_cycles": result.cycles / baseline,
                "recovery_ms_2tb": (
                    analysis.recovery_ms(name, 2 * TB)
                    if name != "volatile"
                    else float("nan")
                ),
                "write_amp": result.metadata_write_amplification() or 0.0,
            }
        )
    return rows


def test_ablation_static_vs_dynamic(
    benchmark, bench_accesses, bench_seed, shape_checks
):
    rows = benchmark.pedantic(
        run_comparison,
        kwargs={"accesses": bench_accesses, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            rows,
            title="Ablation — static (triad/plp) vs dynamic (amnt) hybrid "
            "persistence on xz",
        )
    )
    if not shape_checks:
        return  # smoke run: table printed, assertions need warmed caches
    by_name = {row["protocol"]: row for row in rows}

    # Both static schemes improve on plain strict persistence...
    assert by_name["plp"]["norm_cycles"] < by_name["strict"]["norm_cycles"]
    assert by_name["triad"]["norm_cycles"] < by_name["strict"]["norm_cycles"]
    # ...but the dynamic scheme beats both at runtime (the §2.3 thesis),
    assert by_name["amnt"]["norm_cycles"] < by_name["triad"]["norm_cycles"]
    assert by_name["amnt"]["norm_cycles"] < by_name["plp"]["norm_cycles"]
    # ...with bounded recovery (unlike leaf persistence, its runtime
    # equal) and less write amplification than the strict family.
    assert by_name["amnt"]["recovery_ms_2tb"] < by_name["leaf"]["recovery_ms_2tb"]
    assert by_name["amnt"]["write_amp"] < by_name["strict"]["write_amp"]
