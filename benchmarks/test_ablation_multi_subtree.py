"""Ablation — hardware vs software fixes for multiprogram interference.

Section 5 of the paper considers "per-core subtrees" to handle
multiprogram hotness splits and rejects the idea for hardware cost,
choosing the AMNT++ OS modification instead. This ablation measures the
choice: on the interference-heavy pair, multi-subtree AMNT (4 NV
registers, no OS change) is compared against plain AMNT and AMNT++
(1 NV register + a modified allocator) on both performance and area.
"""

from repro.bench.experiments import MULTIPROGRAM_SCATTER_CHUNKS
from repro.bench.reporting import format_table
from repro.config import default_config
from repro.sim.engine import simulate
from repro.sim.machine import build_machine
from repro.workloads.multiprogram import multiprogram_trace
from repro.workloads.parsec import parsec_profile

PROTOCOLS = ("volatile", "leaf", "amnt", "amnt-multi", "amnt++")


def run_ablation(accesses_each: int, seed: int):
    config = default_config()
    trace = multiprogram_trace(
        [parsec_profile("bodytrack"), parsec_profile("fluidanimate")],
        seed=seed,
        accesses_each=accesses_each,
    )
    rows = []
    baseline_cycles = None
    for name in PROTOCOLS:
        machine = build_machine(
            config,
            name,
            seed=seed,
            scatter_span_chunks=MULTIPROGRAM_SCATTER_CHUNKS,
        )
        result = simulate(machine, trace, seed=seed)
        if baseline_cycles is None:
            baseline_cycles = result.cycles
        area = machine.protocol.area_overhead()
        hit_rate = result.subtree_hit_rate()
        rows.append(
            {
                "protocol": name,
                "norm_cycles": result.cycles / baseline_cycles,
                "subtree_hit": -1.0 if hit_rate is None else hit_rate,
                "nv_bytes": area.nonvolatile_on_chip_bytes,
                "needs_os_change": machine.modified_os,
            }
        )
    return rows


def test_ablation_multi_subtree(
    benchmark, bench_accesses, bench_seed, shape_checks
):
    rows = benchmark.pedantic(
        run_ablation,
        kwargs={"accesses_each": bench_accesses // 2, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            rows,
            title="Ablation — per-core subtrees (amnt-multi) vs the "
            "AMNT++ software fix",
        )
    )
    if not shape_checks:
        return  # smoke run: table printed, assertions need warmed caches
    by_name = {row["protocol"]: row for row in rows}

    # Both fixes beat plain AMNT under interference.
    assert by_name["amnt-multi"]["norm_cycles"] < by_name["amnt"]["norm_cycles"]
    assert by_name["amnt++"]["norm_cycles"] < by_name["amnt"]["norm_cycles"]
    # The hardware fix pays 4x the non-volatile on-chip area...
    assert by_name["amnt-multi"]["nv_bytes"] == 4 * by_name["amnt"]["nv_bytes"]
    # ...while the software fix keeps AMNT's 64 B and matches or beats
    # it on performance — the paper's §5 design argument.
    assert by_name["amnt++"]["nv_bytes"] == by_name["amnt"]["nv_bytes"]
    assert (
        by_name["amnt++"]["norm_cycles"]
        <= by_name["amnt-multi"]["norm_cycles"] * 1.10
    )
