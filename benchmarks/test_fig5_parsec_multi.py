"""Figure 5 — normalized cycles, multiprogram PARSEC pairs.

Paper's shapes: co-running programs over a fragmented allocator break
AMNT's single-hot-region assumption (its subtree hit rate drops and it
drifts above leaf persistence), and AMNT++'s allocator bias restores it
— for bodytrack+fluidanimate the paper reports AMNT++ within 0.1 % of
leaf persistence (the best performer) versus 8 % for plain AMNT. The
swaptions+streamcluster and x264+freqmine pairs are not memory
intensive, so every protocol sits near the baseline.
"""

from repro.bench.experiments import FIG4_PROTOCOLS, fig5_multiprogram
from repro.bench.reporting import format_series


def test_fig5_parsec_multiprogram(
    benchmark, bench_accesses, bench_seed, shape_checks
):
    figure = benchmark.pedantic(
        fig5_multiprogram,
        kwargs={"accesses_each": bench_accesses // 2, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_series(
            figure,
            title="Figure 5 — PARSEC multiprogram cycles "
            "(normalized to volatile)",
        )
    )

    if not shape_checks:
        return  # smoke run: table printed, assertions need warmed caches
    memory_bound = figure["bodyt and fluida"]
    # AMNT++ recovers (most of) the gap interference opened.
    assert memory_bound["amnt++"] < memory_bound["amnt"]
    assert memory_bound["amnt++"] <= memory_bound["leaf"] * 1.15
    # Interference keeps plain AMNT above leaf but below strict.
    assert memory_bound["leaf"] < memory_bound["amnt"] < memory_bound["strict"]

    # The two less memory-intensive pairs show milder overheads than
    # the memory-bound pair across the board, and AMNT stays near the
    # baseline on them.
    for pair in ("swapt and stream", "x264 and freqmi"):
        assert figure[pair]["strict"] < memory_bound["strict"]
        assert figure[pair]["strict"] < 1.6
        assert figure[pair]["amnt"] < 1.2
        assert figure[pair]["amnt"] <= memory_bound["amnt"]
