"""Figure 3 — memory accesses per address, single vs multiprogram.

Paper: Fig. 3a shows *lbm* concentrating its physical accesses; Fig. 3b
shows *perlbench*+*lbm* co-running with accesses dispersed across
physical memory — the effect that breaks AMNT's single-subtree
assumption and motivates AMNT++.

We summarize the same scatter plots numerically: the share of accesses
landing in the hottest level-3 subtree region and how many regions are
needed to cover 90 % of accesses.
"""

from repro.bench.experiments import fig3_hotness
from repro.bench.reporting import format_series


def test_fig3_hotness(benchmark, bench_accesses, bench_seed):
    data = benchmark.pedantic(
        fig3_hotness,
        kwargs={"accesses": bench_accesses, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_series(data, title="Figure 3 — physical access concentration"))

    single = data["lbm (single)"]
    multi = data["perlbench+lbm (multi)"]
    # Shape: a single program concentrates; co-running programs over an
    # aged allocator disperse across more regions with a weaker top
    # region.
    assert single["top_region_share"] >= 0.9
    assert multi["touched_regions"] >= single["touched_regions"]
    assert multi["top_region_share"] <= single["top_region_share"]
