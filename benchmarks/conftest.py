"""Benchmark harness configuration.

Each benchmark regenerates one table or figure of the paper and prints
it (run with ``pytest benchmarks/ --benchmark-only -s`` to see the
tables). Trace lengths scale with the ``REPRO_BENCH_ACCESSES``
environment variable (default 40,000 accesses per program) — the
workload profiles are statistically length-invariant, so larger values
sharpen the numbers without changing the shapes.
"""

from __future__ import annotations

import os

import pytest

#: Per-program trace length used by the figure benchmarks.
DEFAULT_ACCESSES = int(os.environ.get("REPRO_BENCH_ACCESSES", "40000"))

#: Seed shared by every benchmark so figures are cross-comparable.
BENCH_SEED = 2024


@pytest.fixture(scope="session")
def bench_accesses() -> int:
    return DEFAULT_ACCESSES


@pytest.fixture(scope="session")
def bench_seed() -> int:
    return BENCH_SEED


#: Shape assertions compare protocols *after* the caches warm up; below
#: this trace length the LLC (16k lines) never fills and every protocol
#: degenerates toward the baseline. Short runs still print their tables
#: but skip the assertions (smoke mode).
SHAPE_ASSERTION_MIN_ACCESSES = 30_000


@pytest.fixture(scope="session")
def shape_checks(bench_accesses) -> bool:
    return bench_accesses >= SHAPE_ASSERTION_MIN_ACCESSES
