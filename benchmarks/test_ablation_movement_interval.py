"""Ablation — the history buffer's selection interval (§4.2).

The paper fixes the interval at n = 64 writes (matching the buffer's 64
entries). Shorter intervals react faster but risk subtree thrash and
more movement traffic; longer intervals are stable but slow to adapt.
This ablation sweeps the interval on the interference-heavy multiprogram
pair, reporting overhead, movement count, and movement rate (the paper
measures ~1-3 movements per 1000 data writes).
"""

from repro.bench.experiments import MULTIPROGRAM_SCATTER_CHUNKS
from repro.bench.reporting import format_table
from repro.config import default_config
from repro.sim.engine import simulate
from repro.sim.machine import build_machine
from repro.workloads.multiprogram import multiprogram_trace
from repro.workloads.parsec import parsec_profile

INTERVALS = (16, 64, 256, 1024)


def run_sweep(accesses_each: int, seed: int):
    trace = multiprogram_trace(
        [parsec_profile("bodytrack"), parsec_profile("fluidanimate")],
        seed=seed,
        accesses_each=accesses_each,
    )
    rows = []
    for interval in INTERVALS:
        config = default_config(movement_interval_writes=interval)
        baseline = simulate(
            build_machine(
                config,
                "volatile",
                seed=seed,
                scatter_span_chunks=MULTIPROGRAM_SCATTER_CHUNKS,
            ),
            trace,
            seed=seed,
        )
        result = simulate(
            build_machine(
                config,
                "amnt",
                seed=seed,
                scatter_span_chunks=MULTIPROGRAM_SCATTER_CHUNKS,
            ),
            trace,
            seed=seed,
        )
        rows.append(
            {
                "interval": interval,
                "norm_cycles": result.cycles / baseline.cycles,
                "subtree_hit": result.subtree_hit_rate() or 0.0,
                "movements": result.protocol_stats.get(
                    "protocol.amnt.movements", 0
                ),
                "movement_rate": result.movement_rate() or 0.0,
            }
        )
    return rows


def test_ablation_movement_interval(benchmark, bench_accesses, bench_seed):
    rows = benchmark.pedantic(
        run_sweep,
        kwargs={"accesses_each": bench_accesses // 2, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            rows,
            title="Ablation — AMNT selection interval (paper default: 64)",
        )
    )
    by_interval = {row["interval"]: row for row in rows}
    # Shorter intervals move (at least as) often.
    assert by_interval[16]["movements"] >= by_interval[1024]["movements"]
    # Every configuration keeps movements rare relative to writes.
    for row in rows:
        assert row["movement_rate"] < 0.05
