"""Table 3 — hardware overheads of BMF, Anubis, and AMNT.

Paper's numbers for a 64 kB metadata cache:

|        | NV on-chip | Vol. on-chip | In-memory |
|--------|-----------:|-------------:|----------:|
| BMF    | 4 kB       | 768 B        | -         |
| Anubis | 64 B       | 37 kB        | 37 kB     |
| AMNT   | 64 B       | 96 B         | -         |
"""

from repro.bench.experiments import table3_area
from repro.bench.reporting import format_table
from repro.util.units import KB


def test_table3_hardware_overheads(benchmark):
    rows = benchmark.pedantic(table3_area, rounds=1, iterations=1)
    print()
    print(
        format_table(
            [row.row() for row in rows],
            title="Table 3 — hardware overheads (64 kB metadata cache)",
        )
    )
    by_name = {row.protocol: row for row in rows}

    assert by_name["bmf"].nonvolatile_on_chip_bytes == 4 * KB
    assert by_name["bmf"].volatile_on_chip_bytes == 768
    assert by_name["bmf"].in_memory_bytes == 0

    assert by_name["anubis"].nonvolatile_on_chip_bytes == 64
    assert by_name["anubis"].volatile_on_chip_bytes == 37 * KB
    assert by_name["anubis"].in_memory_bytes == 37 * KB

    assert by_name["amnt"].nonvolatile_on_chip_bytes == 64
    assert by_name["amnt"].volatile_on_chip_bytes == 96
    assert by_name["amnt"].in_memory_bytes == 0
