"""Figure 6 — normalized cycles vs AMNT subtree root level.

Paper's shape: as the subtree root moves toward the leaves (level 2 ->
7) each subtree region covers less memory, constraining AMNT's hot
tracking; runtime overhead therefore rises with level, and AMNT++'s
allocation bias softens the rise (the paper reports >=5 % subtree hit
improvement between levels 3 and 7 for bodytrack+fluidanimate).
"""

from repro.bench.experiments import fig6_fig7_level_sweep
from repro.bench.reporting import format_table

LEVELS = (2, 3, 4, 5, 6, 7)


def test_fig6_subtree_level_sweep(
    benchmark, bench_accesses, bench_seed, shape_checks
):
    sweep = benchmark.pedantic(
        fig6_fig7_level_sweep,
        kwargs={
            "levels": LEVELS,
            "accesses_each": bench_accesses // 2,
            "seed": bench_seed,
        },
        rounds=1,
        iterations=1,
    )
    rows = []
    for pair, series in sweep.items():
        for protocol in ("amnt", "amnt++"):
            row = {"workload": pair, "protocol": protocol}
            for level in LEVELS:
                row[f"L{level}"] = series[f"{protocol}_cycles"][level]
            rows.append(row)
    print()
    print(
        format_table(
            rows,
            title="Figure 6 — multiprogram cycles vs subtree level "
            "(normalized to volatile)",
        )
    )

    if not shape_checks:
        return  # smoke run: table printed, assertions need warmed caches
    memory_bound = sweep["bodyt and fluida"]
    # Deeper levels constrain AMNT: the deepest level must not beat the
    # coarsest by any meaningful margin.
    assert (
        memory_bound["amnt_cycles"][7]
        >= memory_bound["amnt_cycles"][2] * 0.95
    )
    # AMNT++ is at least as good as AMNT on every level for the
    # memory-bound pair.
    for level in LEVELS:
        assert (
            memory_bound["amnt++_cycles"][level]
            <= memory_bound["amnt_cycles"][level] * 1.05
        )
