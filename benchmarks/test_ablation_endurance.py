"""Ablation — SCM endurance: where each protocol's writes land.

PCM cells endure ~10^8 writes, and the persistence protocol decides how
hard the metadata cells get hammered: strict persistence rewrites the
same upper-tree lines on *every* data write (a wear hotspot no
wear-leveler loves), while leaf/AMNT shed that traffic. The paper
optimizes latency; this ablation shows the same design choice also
decides device lifetime — an adoption-relevant property the protocols'
write-amplification numbers make concrete.
"""

from repro.bench.reporting import format_table
from repro.config import default_config
from repro.mem.wear import attach_wear_tracking
from repro.sim.engine import simulate
from repro.sim.machine import build_machine
from repro.workloads.spec import spec_profile
from repro.workloads.synthetic import generate_trace

PROTOCOLS = ("volatile", "leaf", "strict", "anubis", "bmf", "amnt")


def run_endurance(accesses: int, seed: int):
    config = default_config()
    trace = generate_trace(
        spec_profile("xz").scaled(accesses=accesses), seed=seed
    )
    rows = []
    for name in PROTOCOLS:
        machine = build_machine(config, name, seed=seed)
        tracker = attach_wear_tracking(machine.mee)
        simulate(machine, trace, seed=seed)
        report = tracker.report()
        rows.append(
            {
                "protocol": name,
                "write_amp": report.write_amplification() or 0.0,
                "hotspot_factor": report.hotspot_factor(),
                "hottest_region": (
                    report.hottest_line[0] if report.hottest_line else "-"
                ),
                "total_writes": report.total_writes,
            }
        )
    return rows


def test_ablation_endurance(benchmark, bench_accesses, bench_seed, shape_checks):
    rows = benchmark.pedantic(
        run_endurance,
        kwargs={"accesses": bench_accesses, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            rows,
            title="Ablation — SCM wear by protocol (xz)",
        )
    )
    if not shape_checks:
        return  # smoke run: table printed, assertions need warmed caches
    by_name = {row["protocol"]: row for row in rows}

    # Strict's amplification dwarfs the lazy family's...
    assert by_name["strict"]["write_amp"] > 3 * by_name["leaf"]["write_amp"]
    # ...and its hottest cells are tree lines rewritten per data write.
    assert by_name["strict"]["hottest_region"] == "tree"
    assert (
        by_name["strict"]["hotspot_factor"]
        > by_name["leaf"]["hotspot_factor"]
    )
    # AMNT wears like leaf, not like strict (the hot region is leaf-
    # persisted; only the rare out-of-subtree writes walk the tree).
    assert by_name["amnt"]["write_amp"] < 1.5 * by_name["leaf"]["write_amp"]
