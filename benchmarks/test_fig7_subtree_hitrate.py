"""Figure 7 — subtree hit rates vs AMNT subtree root level.

Paper's shape: the subtree hit rate falls as the root level deepens
(smaller regions), and AMNT++ lifts the whole curve — e.g. 91 % -> 97 %
at level 3 for bodytrack+fluidanimate.
"""

from repro.bench.experiments import fig6_fig7_level_sweep
from repro.bench.reporting import format_table

LEVELS = (2, 3, 4, 5, 6, 7)


def test_fig7_subtree_hit_rates(
    benchmark, bench_accesses, bench_seed, shape_checks
):
    sweep = benchmark.pedantic(
        fig6_fig7_level_sweep,
        kwargs={
            "levels": LEVELS,
            "accesses_each": bench_accesses // 2,
            "seed": bench_seed,
        },
        rounds=1,
        iterations=1,
    )
    rows = []
    for pair, series in sweep.items():
        for protocol in ("amnt", "amnt++"):
            row = {"workload": pair, "protocol": protocol}
            for level in LEVELS:
                row[f"L{level}"] = series[f"{protocol}_hitrate"][level]
            rows.append(row)
    print()
    print(
        format_table(
            rows, title="Figure 7 — subtree hit rate vs subtree level"
        )
    )

    if not shape_checks:
        return  # smoke run: table printed, assertions need warmed caches
    memory_bound = sweep["bodyt and fluida"]
    # Coarse levels cover more memory, so hit rates fall (weakly) with
    # depth for plain AMNT.
    assert (
        memory_bound["amnt_hitrate"][2]
        >= memory_bound["amnt_hitrate"][7] - 0.02
    )
    # AMNT++ lifts the memory-bound pair's hit rate at the paper's
    # default level 3.
    assert (
        memory_bound["amnt++_hitrate"][3]
        > memory_bound["amnt_hitrate"][3]
    )
    # All rates are valid probabilities.
    for series in sweep.values():
        for key in ("amnt_hitrate", "amnt++_hitrate"):
            for rate in series[key].values():
                assert 0.0 <= rate <= 1.0
