"""Table 4 — recovery times (ms) as a function of memory size.

Paper's table (12 GB/s recovery read bandwidth, 8:1 read:write mix):

|         | 2 TB      | 16 TB      | 128 TB       | stale  |
|---------|----------:|-----------:|-------------:|-------:|
| leaf    | 6,222.21  | 49,777.78  | 398,222.21   | 100 %  |
| strict  | 0         | 0          | 0            | 0 %    |
| Anubis  | 1.30      | 1.30       | 1.30         | fixed  |
| Osiris  | 50,666.67 | 405,333.32 | 3,242,666.64 | 100 %* |
| BMF     | 0         | 0          | 0            | 0 %    |
| AMNT L2 | 777.77    | 6,222.21   | 49,777.78    | 12.5 % |
| AMNT L3 | 97.22     | 777.77     | 6,222.21     | 1.56 % |
| AMNT L4 | 12.15     | 97.22      | 777.77       | 0.2 %  |
"""

import pytest

from repro.bench.experiments import table4_recovery
from repro.bench.reporting import format_table


def test_table4_recovery_times(benchmark):
    rows = benchmark.pedantic(table4_recovery, rounds=1, iterations=1)
    print()
    print(
        format_table(
            rows,
            title="Table 4 — recovery time (ms) vs memory size",
            precision=2,
        )
    )
    by_label = {row["protocol"]: row for row in rows}

    # Leaf: the calibrated anchor row.
    assert by_label["leaf"]["2.00TB"] == pytest.approx(6222.21, rel=1e-4)
    assert by_label["leaf"]["16.00TB"] == pytest.approx(49777.78, rel=1e-4)
    assert by_label["leaf"]["128.00TB"] == pytest.approx(398222.21, rel=1e-4)

    # Strict and BMF recover instantly.
    for label in ("strict", "bmf"):
        for column in ("2.00TB", "16.00TB", "128.00TB"):
            assert by_label[label][column] == 0.0

    # Anubis is fixed at ~1.30 ms regardless of memory size.
    anubis = {by_label["anubis"][c] for c in ("2.00TB", "16.00TB", "128.00TB")}
    assert len(anubis) == 1
    assert anubis.pop() == pytest.approx(1.30, abs=0.01)

    # Osiris: ~8.1x leaf (probing pass dominates).
    assert by_label["osiris"]["2.00TB"] == pytest.approx(50666.67, rel=0.05)

    # AMNT: each level divides leaf recovery by arity, exactly the
    # paper's diagonal (AMNT L2 @ 16 TB == leaf @ 2 TB, etc.).
    assert by_label["AMNT L2"]["2.00TB"] == pytest.approx(777.77, rel=1e-3)
    assert by_label["AMNT L3"]["2.00TB"] == pytest.approx(97.22, rel=1e-3)
    assert by_label["AMNT L4"]["2.00TB"] == pytest.approx(12.15, rel=1e-2)
    assert by_label["AMNT L2"]["16.00TB"] == pytest.approx(
        by_label["leaf"]["2.00TB"], rel=1e-6
    )

    # Stale fractions follow 1/8^(L-1).
    assert by_label["AMNT L2"]["stale_fraction"] == pytest.approx(0.125)
    assert by_label["AMNT L3"]["stale_fraction"] == pytest.approx(1 / 64)
    assert by_label["AMNT L4"]["stale_fraction"] == pytest.approx(1 / 512)
