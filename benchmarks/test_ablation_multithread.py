"""Ablation — multithread vs multiprogram: when does AMNT need help?

The paper evaluates multithreaded SPEC (§6.5, one address space, four
cores) and multiprogram PARSEC (§6.2, distinct address spaces). AMNT's
hot-region assumption survives the former but not the latter — that
asymmetry is AMNT++'s entire reason to exist. This ablation puts both
on one table: the same write-heavy behaviour run as 4 threads (shared
footprint) versus as 2 co-scheduled programs (separate footprints over
an aged allocator), reporting AMNT's subtree hit rate and overhead in
each setting.
"""

from repro.bench.experiments import MULTIPROGRAM_SCATTER_CHUNKS
from repro.bench.reporting import format_table
from repro.config import default_config
from repro.sim.engine import simulate
from repro.sim.machine import build_machine
from repro.workloads.multiprogram import multiprogram_trace
from repro.workloads.multithread import multithread_trace
from repro.workloads.parsec import parsec_profile


def run_contrast(accesses: int, seed: int):
    config = default_config()
    fluid = parsec_profile("fluidanimate")
    body = parsec_profile("bodytrack")

    scenarios = {
        "multithread (fluid x4)": (
            multithread_trace(fluid, threads=4, seed=seed, accesses_total=accesses),
            0,  # fresh allocator: one process, contiguous pages
        ),
        "multiprogram (body+fluid)": (
            multiprogram_trace([body, fluid], seed=seed, accesses_each=accesses // 2),
            MULTIPROGRAM_SCATTER_CHUNKS,
        ),
    }
    rows = []
    for label, (trace, scatter) in scenarios.items():
        baseline = simulate(
            build_machine(config, "volatile", seed=seed, scatter_span_chunks=scatter),
            trace,
            seed=seed,
        )
        for protocol in ("amnt", "amnt++"):
            machine = build_machine(
                config, protocol, seed=seed, scatter_span_chunks=scatter
            )
            result = simulate(machine, trace, seed=seed)
            rows.append(
                {
                    "scenario": label,
                    "protocol": protocol,
                    "norm_cycles": result.cycles / baseline.cycles,
                    "subtree_hit": result.subtree_hit_rate() or 0.0,
                }
            )
    return rows


def test_ablation_multithread_vs_multiprogram(
    benchmark, bench_accesses, bench_seed, shape_checks
):
    rows = benchmark.pedantic(
        run_contrast,
        kwargs={"accesses": bench_accesses, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            rows,
            title="Ablation — thread-level vs program-level sharing",
        )
    )
    if not shape_checks:
        return  # smoke run: table printed, assertions need warmed caches
    by_key = {(row["scenario"], row["protocol"]): row for row in rows}
    mt_amnt = by_key[("multithread (fluid x4)", "amnt")]
    mp_amnt = by_key[("multiprogram (body+fluid)", "amnt")]
    mp_pp = by_key[("multiprogram (body+fluid)", "amnt++")]

    # Threads share one address space: plain AMNT keeps its locality
    # (the first selection interval's writes always count as misses, so
    # short traces sit slightly below the asymptotic rate).
    assert mt_amnt["subtree_hit"] > 0.85
    # Programs do not: the hit rate collapses...
    assert mp_amnt["subtree_hit"] < mt_amnt["subtree_hit"]
    # ...until the modified OS restores it.
    assert mp_pp["subtree_hit"] > mp_amnt["subtree_hit"]
    assert mp_pp["norm_cycles"] < mp_amnt["norm_cycles"]
