"""Ablation — metadata cache size sensitivity (§6.6's scalability claim).

The paper argues AMNT's performance is "agnostic to other features,
such as metadata cache size" because it depends on spatial hot-region
tracking, whereas Anubis's slow path fires on every metadata cache miss
— its overhead is a function of cache efficacy. This ablation sweeps
the metadata cache from 16 kB to 256 kB on *fluidanimate*, whose
metadata working set (~tens of kB of counter lines) straddles exactly
that range, and compares how each protocol's overhead responds.
"""

from dataclasses import replace

from repro.bench.reporting import format_table
from repro.config import MetadataCacheConfig, default_config
from repro.sim.engine import simulate
from repro.sim.machine import build_machine
from repro.util.units import KB
from repro.workloads.parsec import parsec_profile
from repro.workloads.synthetic import generate_trace

CACHE_SIZES_KB = (16, 32, 64, 128, 256)


def run_sweep(accesses: int, seed: int):
    trace = generate_trace(
        parsec_profile("fluidanimate").scaled(accesses=accesses), seed=seed
    )
    rows = []
    for size_kb in CACHE_SIZES_KB:
        config = replace(
            default_config(),
            metadata_cache=MetadataCacheConfig(capacity_bytes=size_kb * KB),
        )
        results = {}
        for name in ("volatile", "leaf", "anubis", "amnt"):
            machine = build_machine(config, name, seed=seed)
            results[name] = simulate(machine, trace, seed=seed)
        baseline = results["volatile"].cycles
        rows.append(
            {
                "mdcache_kb": size_kb,
                "md_hit_rate": results["volatile"].mdcache_hit_rate,
                "leaf": results["leaf"].cycles / baseline,
                "anubis": results["anubis"].cycles / baseline,
                "amnt": results["amnt"].cycles / baseline,
            }
        )
    return rows


def test_ablation_metadata_cache_size(
    benchmark, bench_accesses, bench_seed, shape_checks
):
    rows = benchmark.pedantic(
        run_sweep,
        kwargs={"accesses": bench_accesses, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            rows,
            title="Ablation — metadata cache size on fluidanimate "
            "(normalized cycles)",
        )
    )
    if not shape_checks:
        return  # smoke run: table printed, assertions need warmed caches
    # Measure each protocol against the leaf-persistence floor: the
    # floor itself shifts with the cache (everything normalizes to the
    # volatile baseline, which also speeds up), so gaps-to-leaf isolate
    # the protocol's own cache sensitivity.
    anubis_gaps = [row["anubis"] - row["leaf"] for row in rows]
    amnt_gaps = [row["amnt"] - row["leaf"] for row in rows]
    # Anubis's gap to the floor is large and strongly cache-dependent...
    assert max(anubis_gaps) - min(anubis_gaps) > 0.05
    assert min(anubis_gaps) > 0.1
    # ...while AMNT rides the floor at every size (§6.6's claim).
    assert max(abs(gap) for gap in amnt_gaps) < 0.05
    # And at every size, AMNT is the cheaper protocol on this workload.
    for row in rows:
        assert row["amnt"] < row["anubis"]
