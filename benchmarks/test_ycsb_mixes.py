"""Extension — YCSB mixes on secure SCM.

The canonical cloud-serving request mixes, compiled to flush-tagged
traces (updates/inserts persist; reads do not), run under the main
protocols. The expected shape follows the mixes' write intensity:
workload A (50 % updates) separates the protocols sharply, C (read
only) barely at all, with B/D/F in between — and AMNT tracks the leaf
floor on every mix, which is what a storage engine adopting it cares
about.
"""

from dataclasses import replace

from repro.bench.charts import grouped_bar_chart
from repro.bench.reporting import format_series
from repro.config import DataCacheConfig, default_config
from repro.sim.engine import simulate
from repro.sim.machine import build_machine
from repro.sim.results import normalized_cycles
from repro.util.units import KB
from repro.workloads.ycsb import generate_ycsb_trace, ycsb_names, ycsb_workload

PROTOCOLS = ("volatile", "leaf", "strict", "anubis", "amnt")


def run_ycsb(operations: int, seed: int):
    # The YCSB footprint (100k x 64 B records ~ 6 MB) is modest, so a
    # smaller LLC keeps the runs memory-bound as a storage node's would
    # be once the heap around the store fills the cache.
    config = replace(
        default_config(),
        llc=DataCacheConfig(capacity_bytes=256 * KB, associativity=16),
    )
    figure = {}
    for name in ycsb_names():
        trace = generate_ycsb_trace(
            ycsb_workload(name), operations=operations, seed=seed
        )
        results = {}
        for protocol in PROTOCOLS:
            machine = build_machine(config, protocol, seed=seed)
            results[protocol] = simulate(machine, trace, seed=seed)
        figure[f"YCSB-{name}"] = normalized_cycles(results)
    return figure


def test_ycsb_mixes(benchmark, bench_accesses, bench_seed, shape_checks):
    figure = benchmark.pedantic(
        run_ycsb,
        kwargs={"operations": bench_accesses // 2, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_series(figure, title="YCSB mixes — normalized cycles"))
    print()
    print(
        grouped_bar_chart(
            {name: figure[name] for name in ("YCSB-A", "YCSB-C")},
            members=list(PROTOCOLS),
            title="YCSB A (update heavy) vs C (read only)",
            reference=1.0,
        )
    )
    if not shape_checks:
        return  # smoke run: table printed, assertions need warmed caches

    # Write intensity orders the damage: A >= B >= C for strict.
    assert (
        figure["YCSB-A"]["strict"]
        >= figure["YCSB-B"]["strict"]
        >= figure["YCSB-C"]["strict"]
    )
    # Read-only C is indifferent to the persistence model.
    assert figure["YCSB-C"]["strict"] < 1.1
    assert figure["YCSB-C"]["leaf"] < 1.05
    # AMNT tracks the leaf floor on every mix.
    for name, row in figure.items():
        assert row["amnt"] <= row["leaf"] * 1.25, name
        assert row["amnt"] < row["strict"] or row["strict"] < 1.05, name