"""Table 2 — the cost of the AMNT++ modified operating system.

Paper: normalized performance 0.992 / 0.967 / 1.013 (the modified OS is
never meaningfully slower and often slightly faster thanks to improved
locality), and instruction overhead 1.004 / 1.021 / 1.010 (~2 % average
extra instructions, all in the off-critical-path reclamation pass).
"""

from repro.bench.experiments import table2_os_cost
from repro.bench.reporting import format_table


def test_table2_modified_os_cost(
    benchmark, bench_accesses, bench_seed, shape_checks
):
    rows = benchmark.pedantic(
        table2_os_cost,
        kwargs={"accesses_each": bench_accesses // 2, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            rows,
            title="Table 2 — impact of the modified operating system",
        )
    )

    if not shape_checks:
        return  # smoke run: table printed, assertions need warmed caches
    for row in rows:
        # The modified OS never costs meaningful runtime...
        assert row["normalized_performance"] <= 1.05
        # ...and its instruction overhead is a few percent at most.
        assert 1.0 <= row["instruction_overhead"] < 1.15

    # The memory-bound pair actually gains performance (ratio < 1),
    # mirroring the paper's 0.992/0.967 rows.
    body_fluid = rows[0]
    assert body_fluid["workload"] == "bodyt and fluida"
    assert body_fluid["normalized_performance"] < 1.0
