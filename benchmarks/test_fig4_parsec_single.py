"""Figure 4 — normalized cycles, single-program PARSEC.

Paper's shapes (normalized to volatile secure memory):
* leaf persistence ~8 % average overhead — the floor;
* strict persistence ~2.39x average — the ceiling;
* AMNT ~16 % average (~10 % with AMNT++): near-leaf, because single
  programs concentrate their writes in one subtree region;
* Anubis collapses on metadata-cache-hostile workloads (canneal ~2.4x,
  30 % metadata hit rate) while AMNT stays under a few percent there.
"""

import pytest

from repro.bench.experiments import FIG4_PROTOCOLS, fig4_single_program
from repro.bench.reporting import format_series
from repro.sim.runner import geometric_mean
from repro.workloads.parsec import parsec_names


def test_fig4_parsec_single_program(
    benchmark, bench_accesses, bench_seed, shape_checks
):
    figure = benchmark.pedantic(
        fig4_single_program,
        kwargs={"accesses": bench_accesses, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_series(
            figure,
            title="Figure 4 — PARSEC single-program cycles "
            "(normalized to volatile)",
        )
    )
    means = {
        protocol: geometric_mean(
            figure[bench][protocol] for bench in parsec_names()
        )
        for protocol in FIG4_PROTOCOLS
    }
    print(
        "geomean:  "
        + "  ".join(f"{name}={value:.3f}" for name, value in means.items())
    )

    if not shape_checks:
        return  # smoke run: table printed, assertions need warmed caches
    # --- paper-shape assertions -----------------------------------------
    # The ordering of averages: volatile <= leaf <= amnt <= strict.
    assert means["leaf"] <= means["amnt"] * 1.02
    assert means["amnt"] < means["strict"]
    assert means["bmf"] < means["strict"]
    # Leaf is a modest overhead, strict a multiple (the gap widens with
    # REPRO_BENCH_ACCESSES as LLC warmup amortizes; the paper's full
    # regions of interest give ~1.08 vs ~2.39).
    assert means["leaf"] < 1.25
    assert means["strict"] > 1.35
    assert means["strict"] > means["leaf"] + 0.25
    # canneal: Anubis suffers (metadata-cache hostile), AMNT doesn't.
    assert figure["canneal"]["anubis"] > 1.5
    assert figure["canneal"]["amnt"] < 1.1
    # Compute-bound benchmarks barely notice any protocol.
    assert figure["swaptions"]["strict"] < 1.1
