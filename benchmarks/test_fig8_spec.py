"""Figure 8 — normalized cycles, SPEC CPU 2017.

Paper's shapes (normalized to the writeback/volatile secure baseline):
* AMNT within ~2 % of leaf persistence, up to 8x better than strict;
* AMNT beats Anubis by up to 41 % (xz) and 13 % on average;
* BMF tracks strict on write-intensive workloads (xz: 7x vs 8x);
* read-intensive cactuBSSN/mcf: persistence model irrelevant (AMNT ~=
  leaf ~= baseline) while Anubis still pays its per-miss slow path.
"""

from repro.bench.experiments import fig8_spec
from repro.bench.reporting import format_series
from repro.sim.runner import FIGURE_PROTOCOLS, geometric_mean
from repro.workloads.spec import spec_names


def test_fig8_spec(benchmark, bench_accesses, bench_seed, shape_checks):
    figure = benchmark.pedantic(
        fig8_spec,
        kwargs={"accesses": bench_accesses, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_series(
            figure,
            title="Figure 8 — SPEC CPU 2017 cycles (normalized to volatile)",
        )
    )
    means = {
        protocol: geometric_mean(
            figure[bench][protocol] for bench in spec_names()
        )
        for protocol in FIGURE_PROTOCOLS
    }
    print(
        "geomean:  "
        + "  ".join(f"{name}={value:.3f}" for name, value in means.items())
    )

    if not shape_checks:
        return  # smoke run: table printed, assertions need warmed caches
    # --- paper-shape assertions -----------------------------------------
    xz = figure["xz"]
    # xz (most write intensive): AMNT < Anubis < BMF < strict.
    assert xz["amnt"] < xz["anubis"]
    assert xz["anubis"] < xz["strict"]
    assert xz["bmf"] < xz["strict"]
    assert xz["bmf"] > xz["leaf"]
    # AMNT within a couple percent of leaf.
    assert xz["amnt"] <= xz["leaf"] * 1.03
    # Read-intensive workloads: AMNT negligible vs leaf; Anubis pays.
    for name in ("cactuBSSN", "mcf"):
        assert figure[name]["amnt"] <= figure[name]["leaf"] * 1.02
        assert figure[name]["anubis"] > figure[name]["amnt"] * 1.1
    # Averages: AMNT better than Anubis (the 13 % claim's direction).
    assert means["amnt"] < means["anubis"]
    assert means["amnt"] < means["strict"]
