"""Integrity substrate: BMT geometry and the functional Merkle tree."""

from repro.integrity.bmt import BonsaiMerkleTree, VerificationReport
from repro.integrity.geometry import NodeId, TreeGeometry

__all__ = ["TreeGeometry", "NodeId", "BonsaiMerkleTree", "VerificationReport"]
