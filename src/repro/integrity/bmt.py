"""Functional Bonsai Merkle Tree over the simulated NVM.

This class maintains *two* views of every tree node and counter block,
mirroring the hardware state the paper reasons about:

* the **persisted** view — bytes in the non-volatile backend, which is
  all that survives a crash;
* the **current** view — a volatile overlay modeling dirty copies in
  the on-chip metadata cache. ``crash()`` discards the overlay.

Node format is the General BMT (§2.1, Figure 1): a 64 B node is the
concatenation of the 8-byte keyed hashes of its (up to 8) children;
slots for absent children (tree edge) are zero. The root's own hash
lives in a non-volatile on-chip register and is updated atomically with
every counter update, exactly the root-of-trust discipline every
protocol in the paper shares.

Never-written lines read as their *genesis* values — the node contents
a freshly zeroed memory implies — memoized per (level, child-count), so
an 8 GB (or 128 TB) tree is consistent from the first access without
materializing millions of nodes.

Two update modes share this class (``mode`` constructor argument):

* ``"eager"`` — every counter write recomputes the keyed hash of each
  ancestor immediately (the hardware-faithful default, and what every
  fault-injection entry point forces);
* ``"lazy"`` — counter writes only record *which child slot* of each
  ancestor is stale (:attr:`_lazy_slots`) and defer the digests. Real
  bytes are materialized on demand — any read of a dirty node's
  current value, the root register, ``crash()``, persists, recovery —
  and are bit-identical to the eager values by construction: a
  materialized node splices ``hash8(child's current value)`` into each
  recorded slot over the same base bytes the eager path started from
  (the base cannot change while slots are pending, because every
  backend writer of a TREE line clears the pending state first).
  Repeated writes to one path collapse to a single hash per node at
  materialization time, which is where functional sweeps win.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.crypto.counters import ENCODED_BYTES, CounterBlock
from repro.crypto.engine import CryptoEngine
from repro.errors import CrashConsistencyError, IntegrityError
from repro.integrity.geometry import NodeId, TreeGeometry
from repro.mem.backend import MetadataRegion, SparseMemory

NODE_BYTES = 64
SLOT_BYTES = 8


@dataclass
class VerificationReport:
    """Outcome of a verification walk, for tests and recovery logs."""

    ok: bool
    #: Levels at which the stored slot mismatched the computed hash.
    mismatched_levels: List[int] = field(default_factory=list)
    root_matches: bool = True


class BonsaiMerkleTree:
    """The paper's BMT with persisted/current state separation."""

    def __init__(
        self,
        geometry: TreeGeometry,
        engine: CryptoEngine,
        backend: SparseMemory,
        mode: str = "eager",
    ) -> None:
        from repro.config import validate_integrity_mode

        validate_integrity_mode(mode)
        self.geometry = geometry
        self.engine = engine
        self.backend = backend
        self.mode = mode
        self.lazy = mode == "lazy"
        self._volatile_nodes: Dict[NodeId, bytes] = {}
        self._volatile_counters: Dict[int, CounterBlock] = {}
        #: Lazy mode: node -> child indices whose slot hash is deferred.
        #: A node is dirty iff it appears here or in ``_volatile_nodes``.
        self._lazy_slots: Dict[NodeId, Set[int]] = {}
        #: genesis node bytes memoized by (level, child_count).
        self._genesis_cache: Dict[Tuple[int, int], bytes] = {}
        #: Lazily-deferred nodes made real so far (telemetry only).
        self.materializations = 0
        #: Non-volatile on-chip root register (8 B), kept current in
        #: eager mode and recomputed on read when lazily stale.
        self._root_stale = False
        self._root_register: bytes = self._hash_node(
            self.current_node_bytes((1, 0))
        )

    @property
    def root_register(self) -> bytes:
        if self._root_stale:
            self._root_stale = False
            self._root_register = self._hash_node(
                self.current_node_bytes((1, 0))
            )
        return self._root_register

    @root_register.setter
    def root_register(self, value: bytes) -> None:
        self._root_register = value
        self._root_stale = False

    # ------------------------------------------------------------------
    # genesis values
    # ------------------------------------------------------------------

    def _child_count(self, node: NodeId) -> int:
        return sum(1 for _ in self.geometry.children(node))

    def _genesis_counter_bytes(self) -> bytes:
        return bytes(ENCODED_BYTES)

    def _genesis_node_bytes(self, node: NodeId) -> bytes:
        """Node contents implied by an all-zero counter space."""
        level, _ = node
        child_count = self._child_count(node)
        cached = self._genesis_cache.get((level, child_count))
        if cached is not None:
            return cached
        slots = []
        for child in self.geometry.children(node):
            child_level, _ = child
            if child_level == self.geometry.counter_level:
                child_bytes = self._genesis_counter_bytes()
            else:
                child_bytes = self._genesis_node_bytes(child)
            slots.append(self.engine.hash8(child_bytes))
        value = b"".join(slots)
        value += bytes(NODE_BYTES - len(value))  # zero-fill edge slots
        # Genesis values depend only on (level, child_count) when every
        # descendant is also full or shares the same edge shape; edge
        # nodes at the same level with the same child count can still
        # differ if a *descendant* is partial, so only memoize the
        # common full-shape case.
        if child_count == self.geometry.arity:
            self._genesis_cache[(level, child_count)] = value
        return value

    # ------------------------------------------------------------------
    # state views
    # ------------------------------------------------------------------

    def persisted_counter(self, index: int) -> CounterBlock:
        if self.backend.contains(MetadataRegion.COUNTERS, index):
            raw = self.backend.read(MetadataRegion.COUNTERS, index, ENCODED_BYTES)
            return CounterBlock.decode(raw)
        return CounterBlock()

    def current_counter(self, index: int) -> CounterBlock:
        block = self._volatile_counters.get(index)
        if block is not None:
            return block
        return self.persisted_counter(index)

    def persisted_node_bytes(self, node: NodeId) -> bytes:
        if self.backend.contains(MetadataRegion.TREE, node):
            return self.backend.read(MetadataRegion.TREE, node, NODE_BYTES)
        return self._genesis_node_bytes(node)

    def current_node_bytes(self, node: NodeId) -> bytes:
        if self._lazy_slots and node in self._lazy_slots:
            return self._materialize_node(node)
        value = self._volatile_nodes.get(node)
        if value is not None:
            return value
        return self.persisted_node_bytes(node)

    def _materialize_node(self, node: NodeId) -> bytes:
        """Turn a lazily-dirty node into its real (eager) bytes.

        Splices ``hash8`` of each pending child's *current* value into
        the node's base bytes, recursing into child nodes that are
        themselves lazily dirty. Repeated counter writes to one path
        collapse into a single hash per node here.
        """
        pending = self._lazy_slots.pop(node, None)
        self.materializations += 1
        base = self._volatile_nodes.get(node)
        if base is None:
            base = self.persisted_node_bytes(node)
        if not pending:
            return base
        parent = bytearray(base)
        counter_level = self.geometry.counter_level
        arity = self.geometry.arity
        child_level = node[0] + 1
        children_are_counters = child_level == counter_level
        for child_index in pending:
            if children_are_counters:
                child_bytes = self.current_counter(child_index).encode()
            else:
                child_bytes = self._materialize_node((child_level, child_index))
            slot = child_index % arity
            parent[slot * SLOT_BYTES : (slot + 1) * SLOT_BYTES] = (
                self._hash_node(child_bytes)
            )
        value = bytes(parent)
        self._volatile_nodes[node] = value
        return value

    def materialize_all(self) -> None:
        """Force every deferred digest real (no-op in eager mode).

        The root register read materializes the full dirty chain —
        every lazily-dirty node lies on some counter's ancestor path,
        all of which terminate in the root's pending slots.
        """
        _ = self.root_register
        for node in list(self._lazy_slots):
            self._materialize_node(node)

    def _hash_node(self, node_bytes: bytes) -> bytes:
        return self.engine.hash8(node_bytes)

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------

    def set_counter(
        self,
        index: int,
        block: CounterBlock,
        persist: bool = False,
        path: Optional[List[NodeId]] = None,
    ) -> None:
        """Install a new counter value and propagate the hash change.

        The ancestral path is recomputed into the *volatile* overlay
        (as the metadata cache would hold it) and the on-chip root
        register updated atomically. ``persist`` additionally writes
        the counter line through to NVM — what leaf persistence does on
        every data write. ``path`` optionally supplies the pre-resolved
        ancestor chain (plan-driven replays); it must equal
        ``geometry.ancestors_of_counter(index)``.
        """
        self._volatile_counters[index] = block
        if persist:
            self.persist_counter(index)
        self._update_path(index, path)

    def persist_counter(self, index: int) -> None:
        """Write the current counter line through to NVM."""
        block = self._volatile_counters.pop(index, None)
        if block is None:
            return  # already persisted and clean
        self.backend.write(MetadataRegion.COUNTERS, index, block.encode())

    def _recompute_node(self, node: NodeId) -> bytes:
        slots = []
        for child in self.geometry.children(node):
            child_level, child_index = child
            if child_level == self.geometry.counter_level:
                child_bytes = self.current_counter(child_index).encode()
            else:
                child_bytes = self.current_node_bytes(child)
            slots.append(self._hash_node(child_bytes))
        value = b"".join(slots)
        return value + bytes(NODE_BYTES - len(value))

    def _update_path(
        self, counter_index: int, path: Optional[List[NodeId]] = None
    ) -> None:
        """Propagate a counter change along its ancestor path.

        Each parent gets *only the changed child's slot* spliced in —
        the hardware never re-reads or re-hashes siblings on an update,
        so a sibling corrupted in NVM can never be laundered into a
        freshly written parent (the audit in ``repro.core.audit`` and
        the splice tests rely on this).

        Lazy mode records the stale slot along the same path and defers
        every digest (and the root-register refresh) to materialization.
        """
        if path is None:
            path = self.geometry.ancestors_of_counter(counter_index)
        if self.lazy:
            lazy = self._lazy_slots
            child_index = counter_index
            for node in path:
                slots = lazy.get(node)
                if slots is None:
                    lazy[node] = {child_index}
                else:
                    slots.add(child_index)
                child_index = node[1]
            self._root_stale = True
            return
        child_bytes = self.current_counter(counter_index).encode()
        child_index = counter_index
        for node in path:
            parent = bytearray(self.current_node_bytes(node))
            slot = child_index % self.geometry.arity
            parent[slot * SLOT_BYTES : (slot + 1) * SLOT_BYTES] = (
                self._hash_node(child_bytes)
            )
            parent_bytes = bytes(parent)
            self._volatile_nodes[node] = parent_bytes
            child_bytes = parent_bytes
            child_index = node[1]
        self.root_register = self._hash_node(self.current_node_bytes((1, 0)))

    def persist_node(self, node: NodeId) -> None:
        """Write the current node value through to NVM."""
        if self._lazy_slots and node in self._lazy_slots:
            self._materialize_node(node)
        value = self._volatile_nodes.pop(node, None)
        if value is None:
            return  # clean already
        self.backend.write(MetadataRegion.TREE, node, value)

    def persist_path(self, counter_index: int, persist_counter: bool = True) -> int:
        """Write-through the counter and its whole ancestral path.

        Returns the number of NVM lines written — what the strict
        persistence protocol charges per data write.
        """
        written = 0
        if persist_counter and counter_index in self._volatile_counters:
            self.persist_counter(counter_index)
            written += 1
        for node in self.geometry.ancestors_of_counter(counter_index):
            if node in self._volatile_nodes or node in self._lazy_slots:
                self.persist_node(node)
                written += 1
        return written

    def dirty_nodes(self) -> List[NodeId]:
        nodes = list(self._volatile_nodes.keys())
        if self._lazy_slots:
            seen = self._volatile_nodes
            nodes.extend(n for n in self._lazy_slots if n not in seen)
        return nodes

    def dirty_counters(self) -> List[int]:
        return list(self._volatile_counters.keys())

    # ------------------------------------------------------------------
    # crash and verification
    # ------------------------------------------------------------------

    def crash(self) -> Tuple[int, int]:
        """Power loss: the volatile overlay vanishes.

        Returns (lost_counter_lines, lost_node_lines) for reporting.
        The non-volatile root register survives by construction — in
        lazy mode it is materialized *before* the overlay is discarded,
        exactly the value the eager path would have maintained.
        """
        if self._lazy_slots or self._root_stale:
            self.materialize_all()
        lost = (len(self._volatile_counters), len(self._volatile_nodes))
        self._volatile_counters.clear()
        self._volatile_nodes.clear()
        return lost

    def verify_counter(self, index: int, persisted_only: bool = False) -> VerificationReport:
        """Authenticate one counter block against the root register.

        ``persisted_only`` verifies the post-crash NVM image (what
        recovery sees); otherwise the current (cached) view is used,
        which is what the MEE authenticates at runtime.
        """
        if persisted_only:
            counter_bytes = self.persisted_counter(index).encode()
            node_bytes_of = self.persisted_node_bytes
        else:
            counter_bytes = self.current_counter(index).encode()
            node_bytes_of = self.current_node_bytes

        report = VerificationReport(ok=True)
        child_bytes = counter_bytes
        child: NodeId = (self.geometry.counter_level, index)
        for node in self.geometry.ancestors_of_counter(index):
            parent_bytes = node_bytes_of(node)
            slot = child[1] % self.geometry.arity
            stored = parent_bytes[slot * SLOT_BYTES : (slot + 1) * SLOT_BYTES]
            if stored != self._hash_node(child_bytes):
                report.ok = False
                report.mismatched_levels.append(node[0])
            child_bytes = parent_bytes
            child = node
        if self._hash_node(child_bytes) != self.root_register:
            report.ok = False
            report.root_matches = False
        return report

    def authenticate_or_raise(self, index: int) -> None:
        """Runtime authentication: raise on any mismatch."""
        report = self.verify_counter(index)
        if not report.ok:
            raise IntegrityError(
                f"counter block {index} failed authentication at levels "
                f"{report.mismatched_levels or ['root']}"
            )

    # ------------------------------------------------------------------
    # recovery support
    # ------------------------------------------------------------------

    def subtree_value_from_persisted(self, subtree: NodeId) -> Tuple[bytes, int]:
        """Recompute ``subtree``'s node value bottom-up from persisted
        counters, writing every recomputed descendant back to NVM.

        Returns ``(subtree_node_bytes, nodes_recomputed)``. This is the
        recovery procedure's core: after a crash the in-subtree nodes
        are assumed stale and must be rebuilt from the (persisted)
        leaves before comparing against the trusted register.
        """
        level, index = subtree
        first, last = self.geometry.counter_range_of(subtree)
        # hashes of the current level's entries, keyed by entry index
        child_hashes: Dict[int, bytes] = {}
        for counter_index in range(first, last):
            raw = self.persisted_counter(counter_index).encode()
            child_hashes[counter_index] = self._hash_node(raw)
        nodes_recomputed = 0
        current_level = self.geometry.counter_level - 1
        while current_level >= level:
            parent_hashes: Dict[int, bytes] = {}
            parent_first = first // (
                self.geometry.arity ** (self.geometry.counter_level - current_level)
            )
            # Group children by parent index.
            grouped: Dict[int, List[Tuple[int, bytes]]] = {}
            for child_index, digest in child_hashes.items():
                grouped.setdefault(child_index // self.geometry.arity, []).append(
                    (child_index, digest)
                )
            for parent_index, children in grouped.items():
                slots = bytearray(NODE_BYTES)
                for child_index, digest in children:
                    slot = child_index % self.geometry.arity
                    slots[slot * SLOT_BYTES : (slot + 1) * SLOT_BYTES] = digest
                node_value = bytes(slots)
                node_id: NodeId = (current_level, parent_index)
                self.backend.write(MetadataRegion.TREE, node_id, node_value)
                self._volatile_nodes.pop(node_id, None)
                self._lazy_slots.pop(node_id, None)
                parent_hashes[parent_index] = self._hash_node(node_value)
                nodes_recomputed += 1
            child_hashes = parent_hashes
            current_level -= 1
        subtree_bytes = self.persisted_node_bytes(subtree)
        return subtree_bytes, nodes_recomputed

    def recompute_and_persist(self, node: NodeId) -> bytes:
        """Recompute one node from its children's current values and
        write it through to NVM. Used by recovery procedures fixing the
        levels above an NV-registered subtree root (AMNT) or persistent
        root set (BMF)."""
        value = self._recompute_node(node)
        self.backend.write(MetadataRegion.TREE, node, value)
        self._volatile_nodes.pop(node, None)
        self._lazy_slots.pop(node, None)
        return value

    def rebuild_all_from_persisted(self) -> int:
        """Full-tree rebuild (leaf-persistence recovery). Returns node
        count recomputed; raises if the rebuilt root contradicts the
        non-volatile root register (tampering or torn persistence)."""
        root_bytes, count = self.subtree_value_from_persisted((1, 0))
        if self._hash_node(root_bytes) != self.root_register:
            raise CrashConsistencyError(
                "rebuilt tree root does not match the on-chip root register"
            )
        return count
