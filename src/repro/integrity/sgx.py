"""SGX-style integrity tree (the paper's §2.1 second BMT flavour).

General BMTs (the default in this reproduction) store, in each node,
the concatenated *hashes of its children*. SGX-style trees instead
embed *version counters* in every node: a 64 B node holds one 56-bit
counter per child slot plus an 8-byte MAC binding those counters to the
node's own version — which is, in turn, a slot in its parent. A data
write bumps the version chain along its ancestor path and recomputes
each node's MAC; verification recomputes MACs bottom-up and checks the
root's version against a non-volatile on-chip register.

The paper notes AMNT "can be used in an SGX-style BMT with small
modifications": the only structural requirement is a trustable interior
anchor, and an SGX-style subtree is summarized by its node's (version,
MAC) pair exactly as a General-BMT subtree is summarized by its node
hash. :meth:`SGXStyleTree.subtree_anchor` exposes that pair so an AMNT
subtree register can be pointed at any interior node; the tests
demonstrate leaf-persisted recovery against such an anchor.

Like :class:`~repro.integrity.bmt.BonsaiMerkleTree`, this class keeps a
*persisted* view (the NVM image) and a *current* volatile overlay, so
crash modeling works identically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.crypto.engine import CryptoEngine
from repro.errors import CrashConsistencyError, IntegrityError
from repro.integrity.geometry import NodeId, TreeGeometry
from repro.mem.backend import MetadataRegion, SparseMemory

SLOT_BYTES = 7  # 56-bit per-child version counters
MAC_BYTES = 8
NODE_BYTES = 64


class SGXNode:
    """One SGX-style node: 8 x 56-bit slot counters + an 8 B MAC."""

    __slots__ = ("slots", "mac")

    def __init__(
        self, slots: Optional[List[int]] = None, mac: bytes = b"\x00" * MAC_BYTES
    ) -> None:
        self.slots = slots if slots is not None else [0] * 8
        self.mac = mac

    def encode(self) -> bytes:
        packed = b"".join(
            slot.to_bytes(SLOT_BYTES, "little") for slot in self.slots
        )
        return packed + self.mac

    @classmethod
    def decode(cls, raw: bytes) -> "SGXNode":
        if len(raw) != NODE_BYTES:
            raise ValueError(f"SGX node must be {NODE_BYTES} bytes")
        slots = [
            int.from_bytes(raw[i * SLOT_BYTES : (i + 1) * SLOT_BYTES], "little")
            for i in range(8)
        ]
        return cls(slots, raw[8 * SLOT_BYTES :])

    def copy(self) -> "SGXNode":
        return SGXNode(list(self.slots), self.mac)


class SGXStyleTree:
    """Versioned (SGX-style) integrity tree over counter leaves."""

    def __init__(
        self,
        geometry: TreeGeometry,
        engine: CryptoEngine,
        backend: SparseMemory,
    ) -> None:
        if geometry.arity != 8:
            raise ValueError("SGX-style nodes hold exactly 8 slots")
        self.geometry = geometry
        self.engine = engine
        self.backend = backend
        self._volatile: Dict[NodeId, SGXNode] = {}
        #: NV on-chip register: the root node's own version counter.
        self.root_version: int = 0

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    def persisted_node(self, node: NodeId) -> SGXNode:
        if self.backend.contains(MetadataRegion.TREE, node):
            raw = self.backend.read(MetadataRegion.TREE, node, NODE_BYTES)
            return SGXNode.decode(raw)
        genesis = SGXNode()
        # The zeroed media corresponds to version 0 everywhere — the
        # genesis MAC must not depend on the *current* register, or a
        # stale image would always look self-consistent.
        genesis.mac = self._mac_for(node, genesis.slots, 0)
        return genesis

    def current_node(self, node: NodeId) -> SGXNode:
        cached = self._volatile.get(node)
        if cached is not None:
            return cached
        return self.persisted_node(node)

    def _version_of(self, node: NodeId, current: bool = True) -> int:
        """A node's own version: its slot in its parent (root: the NV
        register)."""
        level, index = node
        if level == 1:
            return self.root_version if current else self.root_version
        parent = self.geometry.parent(node)
        parent_node = (
            self.current_node(parent) if current else self.persisted_node(parent)
        )
        return parent_node.slots[index % self.geometry.arity]

    def _mac_for(self, node: NodeId, slots: List[int], version: int) -> bytes:
        payload = b"".join(
            slot.to_bytes(SLOT_BYTES, "little") for slot in slots
        )
        return self.engine.mac(
            payload,
            version.to_bytes(8, "little"),
            node[0].to_bytes(2, "little"),
            node[1].to_bytes(6, "little"),
        )

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------

    def bump_counter(self, counter_index: int) -> None:
        """A data write under ``counter_index``: bump the version chain
        along the ancestor path and re-MAC every node on it.

        Walks root-ward; each parent's slot for its updated child
        increments, then (after all slots are final) MACs are
        recomputed top-down so each node's MAC uses its *new* version.
        """
        path = self.geometry.ancestors_of_counter(counter_index)
        child_index = counter_index
        for node in path:
            updated = self.current_node(node).copy()
            updated.slots[child_index % self.geometry.arity] += 1
            self._volatile[node] = updated
            child_index = node[1]
        self.root_version += 1
        # Re-MAC from the root down (versions are now final).
        for node in reversed(path):
            cached = self._volatile[node]
            cached.mac = self._mac_for(node, cached.slots, self._version_of(node))

    def counter_version(self, counter_index: int, current: bool = True) -> int:
        """The leaf version protecting ``counter_index``."""
        parent = self.geometry.parent(
            (self.geometry.counter_level, counter_index)
        )
        node = (
            self.current_node(parent) if current else self.persisted_node(parent)
        )
        return node.slots[counter_index % self.geometry.arity]

    # ------------------------------------------------------------------
    # persistence and crash
    # ------------------------------------------------------------------

    def persist_node(self, node: NodeId) -> None:
        cached = self._volatile.pop(node, None)
        if cached is None:
            return
        self.backend.write(MetadataRegion.TREE, node, cached.encode())

    def persist_path(self, counter_index: int) -> int:
        written = 0
        for node in self.geometry.ancestors_of_counter(counter_index):
            if node in self._volatile:
                self.persist_node(node)
                written += 1
        return written

    def crash(self) -> int:
        lost = len(self._volatile)
        self._volatile.clear()
        return lost

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------

    def verify_counter(self, counter_index: int, persisted_only: bool = False) -> bool:
        """Authenticate the version chain above ``counter_index``."""
        current = not persisted_only
        node: NodeId = (self.geometry.counter_level, counter_index)
        while node[0] > 1:
            node = self.geometry.parent(node)
            candidate = (
                self.current_node(node) if current else self.persisted_node(node)
            )
            expected = self._mac_for(
                node, candidate.slots, self._version_of(node, current=current)
            )
            if candidate.mac != expected:
                return False
        return True

    def authenticate_or_raise(self, counter_index: int) -> None:
        if not self.verify_counter(counter_index):
            raise IntegrityError(
                f"SGX-style chain broken above counter {counter_index}"
            )

    # ------------------------------------------------------------------
    # AMNT anchoring (the paper's "small modifications")
    # ------------------------------------------------------------------

    def subtree_anchor(self, node: NodeId) -> Tuple[int, bytes]:
        """The (version, MAC) pair an AMNT subtree register would hold
        for ``node`` — a trustable summary of everything beneath it."""
        current = self.current_node(node)
        return (self._version_of(node), current.mac)

    def verify_subtree_against_anchor(
        self, node: NodeId, anchor: Tuple[int, bytes]
    ) -> bool:
        """Post-crash: check the persisted subtree node against an NV
        anchor (leaf-persistence recovery for an SGX-style subtree)."""
        version, mac = anchor
        persisted = self.persisted_node(node)
        expected = self._mac_for(node, persisted.slots, version)
        return persisted.mac == expected and mac == persisted.mac

    def rebuild_check_root(self) -> None:
        """Verify the persisted root is MAC-consistent with the NV root
        version register (strict-persistence recovery check)."""
        root = self.persisted_node((1, 0))
        expected = self._mac_for((1, 0), root.slots, self.root_version)
        if root.mac != expected:
            raise CrashConsistencyError(
                "persisted SGX root contradicts the NV version register"
            )
