"""Bonsai Merkle Tree geometry: levels, node indexing, and coverage.

The BMT protects the encryption counters (one 64 B counter block per
4 KB page). Integrity nodes are ``arity``-ary. Levels are numbered from
the root:

* level 1 — the root (one node, held in a non-volatile on-chip register),
* level ``num_node_levels`` — the deepest integrity node level, whose
  children are counter blocks,
* ``counter_level = num_node_levels + 1`` — the counter blocks (tree
  leaves), so the paper's "8-level BMT" for 8 GB corresponds to
  ``num_node_levels == 7``.

A node at level ``L`` covers ``arity**(num_node_levels - L + 1)``
counter blocks, i.e. that many 4 KB pages of data. With 8 GB and
arity 8, level 3 has 64 nodes covering 128 MB each — the paper's
"64 possible subtree regions".

All geometry is pure arithmetic; nothing here stores node contents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Tuple

from repro.errors import ConfigError
from repro.util.bitops import ceil_div

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.config import SystemConfig

#: A tree node is identified by its (level, index) pair, level >= 1.
NodeId = Tuple[int, int]

#: Ancestor paths are pure functions of (num_counter_blocks, arity), so
#: every geometry of the same shape — e.g. the seven machines a protocol
#: sweep builds over one trace — shares a single path memo. Callers
#: treat the returned lists as read-only.
_ANCESTOR_MEMO: Dict[Tuple[int, int], Dict[int, List[NodeId]]] = {}


@dataclass(frozen=True)
class TreeGeometry:
    """Shape of a BMT over ``num_counter_blocks`` counter leaves."""

    num_counter_blocks: int
    arity: int = 8
    page_bytes: int = 4096
    #: nodes per integrity level, index 0 == root level (level 1).
    _level_sizes: List[int] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.num_counter_blocks <= 0:
            raise ConfigError("tree needs at least one counter block")
        if self.arity < 2:
            raise ConfigError("tree arity must be at least 2")
        sizes: List[int] = []
        width = ceil_div(self.num_counter_blocks, self.arity)
        sizes.append(width)
        while width > 1:
            width = ceil_div(width, self.arity)
            sizes.append(width)
        sizes.reverse()  # sizes[0] is the root level
        if sizes[0] != 1:
            raise ConfigError("internal error: root level must have one node")
        object.__setattr__(self, "_level_sizes", sizes)
        shape = (self.num_counter_blocks, self.arity)
        object.__setattr__(
            self, "_ancestor_memo", _ANCESTOR_MEMO.setdefault(shape, {})
        )

    @classmethod
    def from_config(cls, config: "SystemConfig") -> "TreeGeometry":
        security = config.security
        num_counter_blocks = config.pcm.capacity_bytes // security.page_bytes
        return cls(
            num_counter_blocks=num_counter_blocks,
            arity=security.tree_arity,
            page_bytes=security.page_bytes,
        )

    # -- level bookkeeping ----------------------------------------------

    @property
    def num_node_levels(self) -> int:
        """Integrity node levels, root included (root is level 1)."""
        return len(self._level_sizes)

    @property
    def num_levels(self) -> int:
        """Total BMT levels including the counter-leaf level."""
        return self.num_node_levels + 1

    @property
    def counter_level(self) -> int:
        """Level number assigned to the counter blocks (the leaves)."""
        return self.num_node_levels + 1

    def nodes_at_level(self, level: int) -> int:
        """Number of integrity nodes at ``level`` (1 == root)."""
        self._check_node_level(level)
        return self._level_sizes[level - 1]

    def _check_node_level(self, level: int) -> None:
        if not 1 <= level <= self.num_node_levels:
            raise ConfigError(
                f"level {level} outside integrity levels "
                f"[1, {self.num_node_levels}]"
            )

    # -- parent/child arithmetic ----------------------------------------

    def parent(self, node: NodeId) -> NodeId:
        """Parent of an integrity node or counter block.

        Counter blocks are addressed as ``(counter_level, index)``.
        The root has no parent.
        """
        level, index = node
        if level == 1:
            raise ConfigError("the root has no parent")
        if level == self.counter_level:
            if not 0 <= index < self.num_counter_blocks:
                raise ConfigError(f"counter block {index} out of range")
        else:
            self._check_node_level(level)
            if not 0 <= index < self.nodes_at_level(level):
                raise ConfigError(f"node {index} out of range at level {level}")
        return (level - 1, index // self.arity)

    def children(self, node: NodeId) -> Iterator[NodeId]:
        """Children of an integrity node (nodes or counter blocks)."""
        level, index = node
        self._check_node_level(level)
        child_level = level + 1
        if child_level == self.counter_level:
            child_count = self.num_counter_blocks
        else:
            child_count = self.nodes_at_level(child_level)
        first = index * self.arity
        last = min(first + self.arity, child_count)
        for child_index in range(first, last):
            yield (child_level, child_index)

    def ancestors_of_counter(self, counter_index: int) -> List[NodeId]:
        """Integrity-node path from the deepest level up to the root.

        The returned list starts at the counter block's direct parent
        and ends at ``(1, 0)`` — the order a write-through persist walks.
        Results are memoized per tree shape and shared between geometry
        instances; callers must treat the list as read-only.
        """
        memo: Dict[int, List[NodeId]] = self._ancestor_memo
        path = memo.get(counter_index)
        if path is None:
            if not 0 <= counter_index < self.num_counter_blocks:
                raise ConfigError(
                    f"counter block {counter_index} out of range"
                )
            arity = self.arity
            index = counter_index
            path = []
            for level in range(self.num_node_levels, 0, -1):
                index //= arity
                path.append((level, index))
            memo[counter_index] = path
        return path

    # -- coverage ---------------------------------------------------------

    def counters_covered_by(self, level: int) -> int:
        """Counter blocks covered by one node at ``level``."""
        self._check_node_level(level)
        return self.arity ** (self.num_node_levels - level + 1)

    def region_bytes(self, level: int) -> int:
        """Bytes of protected data covered by one node at ``level``."""
        return self.counters_covered_by(level) * self.page_bytes

    def ancestor_at_level(self, counter_index: int, level: int) -> int:
        """Index (at ``level``) of the ancestor of ``counter_index``."""
        self._check_node_level(level)
        if not 0 <= counter_index < self.num_counter_blocks:
            raise ConfigError(f"counter block {counter_index} out of range")
        return counter_index // self.counters_covered_by(level)

    def counter_range_of(self, node: NodeId) -> Tuple[int, int]:
        """Half-open range of counter-block indices under ``node``."""
        level, index = node
        covered = self.counters_covered_by(level)
        first = index * covered
        last = min(first + covered, self.num_counter_blocks)
        return (first, last)

    def is_ancestor(self, node: NodeId, counter_index: int) -> bool:
        """True when ``counter_index`` lies under integrity ``node``."""
        first, last = self.counter_range_of(node)
        return first <= counter_index < last

    def total_nodes(self) -> int:
        """All integrity nodes in the tree (excludes counter blocks)."""
        return sum(self._level_sizes)
