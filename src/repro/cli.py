"""Command-line interface: ``python -m repro.cli <command>``.

Commands:

* ``sweep`` — run one benchmark profile under a set of protocols and
  print the normalized-cycles table (one bar group of Figure 4/8);
* ``experiment`` — regenerate a whole paper artifact by name
  (``fig3``..``fig8``, ``table2``..``table4``);
* ``perf`` — time the reference sweep serial vs parallel and write
  ``BENCH_sweep.json``;
* ``profile`` — attribute one cell's wall-clock to pipeline phases
  (trace-gen/engine/MEE/BMT/export) with optional cProfile hotspots,
  writing ``PROFILE_run.json``;
* ``faults`` — run a fault-injection campaign (swept crash points,
  recovery + integrity oracle) and write ``FAULTS_campaign.json``;
* ``area-table`` — print Table 3;
* ``recovery-table`` — print Table 4;
* ``protocols`` — list registered protocols;
* ``store`` — inspect/maintain the content-addressed result store
  (``stats``/``verify``/``gc``/``ls``, see docs/STORE.md);
* ``history`` — render ``BENCH_history.jsonl`` as per-leg trend tables
  (delta + speedup vs the previous recorded run);
* ``metrics`` — print a ``repro.metrics/v1`` document (from
  ``--metrics-out``) as snapshot tables or Prometheus text.

``sweep``, ``experiment``, and ``perf`` accept ``--workers N`` to fan
the sweep grid out over a process pool; results are bit-identical to
the serial run. ``sweep`` and ``perf`` accept ``--no-replay`` to
bypass boundary-event compilation and re-walk the data side per
protocol, and ``--no-plan`` to replay without the compiled metadata
plan (see docs/PERFORMANCE.md); results are identical either way.
``perf`` also appends each timing run's headline numbers to a JSONL
trend log (``--history``, default ``BENCH_history.jsonl``) and prints
the delta against the previous entry.

``perf`` and ``faults`` accept ``--run-dir DIR`` to journal every
completed cell (crash-safe, resumable with ``--resume DIR``) and
supervision knobs (``--max-attempts``, ``--cell-timeout``); see
docs/RESILIENCE.md for the journal format and exit codes. Supervised
runs additionally write lifecycle events to ``<run-dir>/events.jsonl``.

``sweep``, ``perf``, ``profile``, and ``faults`` accept
``--metrics-out PATH`` (export the run's metrics as a
``repro.metrics/v1`` document) and ``--no-telemetry`` (disable
collection; results are bit-identical either way) — see
docs/OBSERVABILITY.md.

``sweep`` and ``perf`` accept ``--store-dir DIR`` (or
``$REPRO_STORE_DIR``) to reuse cells already computed under identical
inputs through the content-addressed result store, and ``--no-store``
to force it off; fault campaigns never consult the store (they mutate
machine state mid-run). ``sweep``, ``perf``, and ``profile`` accept
``--cache-limit N`` (or ``$REPRO_CACHE_LIMIT``) to cap the
trace/stream/plan materialization caches — see docs/STORE.md.

Everything the CLI does is a thin wrapper over the public API, so the
printed numbers are identical to what the pytest benchmark harness
reports for the same sizes and seeds.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench import experiments
from repro.bench.reporting import format_series, format_table
from repro.config import default_config
from repro.core.protocol import protocol_names
from repro.errors import ResumeManifestMismatch

#: Distinct exit codes for supervised runs (documented in
#: docs/RESILIENCE.md): integrity failures keep the historic 1.
EXIT_OK = 0
EXIT_INTEGRITY = 1
EXIT_QUARANTINED = 3
EXIT_RESUME_MISMATCH = 4
EXIT_INTERRUPTED = 130
from repro.sim.runner import FIGURE_PROTOCOLS, sweep_normalized
from repro.workloads.parsec import PARSEC_PROFILES, parsec_profile
from repro.workloads.registry import profile_spec
from repro.workloads.spec import SPEC_PROFILES, spec_profile


def _profile_for(name: str):
    if name in PARSEC_PROFILES:
        return parsec_profile(name)
    if name in SPEC_PROFILES:
        return spec_profile(name)
    known = sorted(set(PARSEC_PROFILES) | set(SPEC_PROFILES))
    raise SystemExit(f"unknown benchmark {name!r}; known: {known}")


def cmd_sweep(args: argparse.Namespace) -> int:
    _telemetry_begin(args)
    _apply_cache_limit(args)
    store = _resolve_store(args)
    config = default_config(subtree_level=args.subtree_level)
    if args.benchmark in PARSEC_PROFILES:
        trace = profile_spec("parsec", args.benchmark, args.accesses, args.seed)
    elif args.benchmark in SPEC_PROFILES:
        trace = profile_spec("spec", args.benchmark, args.accesses, args.seed)
    else:
        _profile_for(args.benchmark)  # raises with the known-name list
        raise AssertionError("unreachable")
    normalized = sweep_normalized(
        trace,
        config,
        protocols=tuple(args.protocols),
        seed=args.seed,
        scatter_span_chunks=args.scatter_chunks,
        workers=args.workers,
        replay=not args.no_replay,
        plan=not args.no_plan,
        store=store,
    )
    rows = [
        {"protocol": name, "normalized_cycles": value}
        for name, value in normalized.items()
    ]
    print(
        format_table(
            rows,
            title=f"{args.benchmark} ({args.accesses} accesses, "
            f"subtree level {args.subtree_level})",
        )
    )
    if store is not None:
        session = store.session
        print(
            f"store: {session['hits']} hit(s), {session['misses']} miss(es), "
            f"{session['puts']} put(s) in {store.directory}"
        )
    _telemetry_end(args, "sweep")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    name = args.name
    workers = args.workers
    if name == "fig3":
        print(format_series(experiments.fig3_hotness(accesses=args.accesses)))
    elif name == "fig4":
        print(
            format_series(
                experiments.fig4_single_program(
                    accesses=args.accesses, workers=workers
                ),
                title="Figure 4",
            )
        )
    elif name == "fig5":
        print(
            format_series(
                experiments.fig5_multiprogram(
                    accesses_each=args.accesses // 2, workers=workers
                ),
                title="Figure 5",
            )
        )
    elif name in ("fig6", "fig7"):
        sweep = experiments.fig6_fig7_level_sweep(
            accesses_each=args.accesses // 2, workers=workers
        )
        key = "cycles" if name == "fig6" else "hitrate"
        rows = []
        for pair, series in sweep.items():
            for protocol in ("amnt", "amnt++"):
                row = {"workload": pair, "protocol": protocol}
                row.update(
                    {
                        f"L{level}": value
                        for level, value in series[f"{protocol}_{key}"].items()
                    }
                )
                rows.append(row)
        print(format_table(rows, title=f"Figure {name[-1]} ({key})"))
    elif name == "fig8":
        print(
            format_series(
                experiments.fig8_spec(accesses=args.accesses, workers=workers),
                title="Figure 8",
            )
        )
    elif name == "table2":
        print(
            format_table(
                experiments.table2_os_cost(
                    accesses_each=args.accesses // 2, workers=workers
                ),
                title="Table 2",
            )
        )
    elif name == "table3":
        return cmd_area_table(args)
    elif name == "table4":
        return cmd_recovery_table(args)
    else:
        raise SystemExit(f"unknown experiment {name!r}")
    return 0


def cmd_area_table(_args: argparse.Namespace) -> int:
    rows = [row.row() for row in experiments.table3_area()]
    print(format_table(rows, title="Table 3 — hardware overheads"))
    return 0


def cmd_recovery_table(_args: argparse.Namespace) -> int:
    print(
        format_table(
            experiments.table4_recovery(),
            title="Table 4 — recovery time (ms)",
            precision=2,
        )
    )
    return 0


def cmd_protocols(_args: argparse.Namespace) -> int:
    for name in protocol_names():
        print(name)
    return 0


def cmd_profiles(_args: argparse.Namespace) -> int:
    from repro.workloads.storage import STORAGE_PROFILES

    rows = []
    for suite, profiles in (
        ("parsec", PARSEC_PROFILES),
        ("spec", SPEC_PROFILES),
    ):
        for profile in profiles.values():
            rows.append(
                {
                    "suite": suite,
                    "benchmark": profile.name,
                    "footprint_mb": profile.footprint_bytes // (1024 * 1024),
                    "write_frac": profile.write_fraction,
                    "seq_frac": profile.sequential_fraction,
                    "think": profile.think_cycles,
                }
            )
    for storage in STORAGE_PROFILES.values():
        rows.append(
            {
                "suite": "storage",
                "benchmark": storage.name,
                "footprint_mb": storage.base.footprint_bytes // (1024 * 1024),
                "write_frac": storage.base.write_fraction,
                "seq_frac": storage.base.sequential_fraction,
                "think": storage.base.think_cycles,
            }
        )
    rows.sort(key=lambda row: (row["suite"], row["benchmark"]))
    print(format_table(rows, title="Workload profiles", precision=2))
    return 0


def _add_telemetry_args(parser: argparse.ArgumentParser) -> None:
    """Shared telemetry flags for simulation-running commands."""
    parser.add_argument(
        "--no-telemetry",
        action="store_true",
        help="disable metrics/span collection for this run",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the run's metrics as a repro.metrics/v1 document",
    )


def _telemetry_begin(args: argparse.Namespace) -> None:
    """Apply the telemetry flags and start from a clean registry."""
    from repro import telemetry

    if getattr(args, "no_telemetry", False):
        telemetry.set_enabled(False)
        return
    telemetry.set_enabled(True)
    telemetry.reset()


def _telemetry_end(args: argparse.Namespace, command: str) -> None:
    """Export the command's metrics snapshot if ``--metrics-out`` asked."""
    from repro import telemetry

    path = getattr(args, "metrics_out", None)
    if not path:
        return
    telemetry.write_metrics_artifact(
        path,
        telemetry.get_registry(),
        run={"kind": command},
        spans=telemetry.get_tracer().finished(),
    )
    print(f"wrote {path}")


def _install_run_events(run_dir) -> None:
    """Route the event sink to ``<run_dir>/events.jsonl`` for
    supervised runs, so lifecycle events land next to the journal."""
    from pathlib import Path

    from repro import telemetry

    telemetry.install_sink(Path(run_dir) / "events.jsonl")


def _add_store_args(parser: argparse.ArgumentParser) -> None:
    """Shared result-store flags for sweep-running commands."""
    parser.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="content-addressed result store: reuse cells already "
        "computed under identical inputs, write back the rest "
        "(default: $REPRO_STORE_DIR if set, else off)",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="ignore --store-dir and $REPRO_STORE_DIR for this run",
    )


def _resolve_store(args: argparse.Namespace):
    """The ResultStore the flags ask for, or ``None`` (store off)."""
    from repro.store import ResultStore, resolve_store_dir

    directory = resolve_store_dir(
        getattr(args, "store_dir", None), getattr(args, "no_store", False)
    )
    return ResultStore(directory) if directory is not None else None


def _add_cache_limit_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-limit",
        type=int,
        default=None,
        metavar="N",
        help="cap the trace/stream/plan materialization caches at N "
        "entries each (default: $REPRO_CACHE_LIMIT if set, else 64/32/32)",
    )


def _apply_cache_limit(args: argparse.Namespace) -> None:
    limit = getattr(args, "cache_limit", None)
    if limit is None:
        return
    if limit < 1:
        raise SystemExit(f"--cache-limit must be >= 1, got {limit}")
    from repro.workloads.registry import apply_cache_limit

    apply_cache_limit(limit)


def _add_resilience_args(parser: argparse.ArgumentParser) -> None:
    """Shared supervision/journal flags for long-running commands."""
    parser.add_argument(
        "--run-dir",
        default=None,
        help="journal directory: checkpoint each cell for kill-safe resume",
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="RUN_DIR",
        help="resume a killed run from its journal directory",
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="tries per cell before quarantine (supervised runs)",
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=600.0,
        help="per-cell wall-clock budget in seconds (pool mode)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        help="completed cells between journal flushes",
    )
    parser.add_argument(
        "--die-after-flushes",
        type=int,
        default=None,
        help=argparse.SUPPRESS,  # test hook: simulate a kill at a checkpoint
    )


def _policy_from_args(args: argparse.Namespace):
    from repro.sim.supervisor import SupervisionPolicy

    return SupervisionPolicy(
        max_attempts=args.max_attempts,
        cell_timeout_seconds=args.cell_timeout,
        checkpoint_every=args.checkpoint_every,
        die_after_flushes=args.die_after_flushes,
    )


def _resolve_run_dir(args: argparse.Namespace):
    if args.resume and args.run_dir:
        raise SystemExit("--run-dir and --resume are mutually exclusive")
    return args.resume or args.run_dir, bool(args.resume)


def _report_failures(failures) -> None:
    for failure in failures:
        print(f"QUARANTINED: {failure.describe()}", file=sys.stderr)
        if failure.traceback:
            print(failure.traceback, file=sys.stderr)


def cmd_perf(args: argparse.Namespace) -> int:
    """Time the reference sweep (serial and parallel) and record it.

    With ``--run-dir``/``--resume`` the command switches to the
    resilient mode: the same grid runs under supervision, each cell's
    deterministic result is journaled, and the artifact is the grid's
    ``SWEEP_results.json`` instead of wall-clock timings.
    """
    from pathlib import Path

    from repro.bench.perf import (
        format_history_delta,
        format_report,
        run_reference_bench,
        run_resilient_sweep,
    )

    _telemetry_begin(args)
    _apply_cache_limit(args)
    run_dir, resume = _resolve_run_dir(args)
    if run_dir:
        _install_run_events(run_dir)
        store = _resolve_store(args)
        outcome = run_resilient_sweep(
            Path(run_dir),
            resume=resume,
            workers=args.workers,
            benchmarks=tuple(args.benchmarks),
            accesses=args.accesses,
            policy=_policy_from_args(args),
            replay=not args.no_replay,
            plan=not args.no_plan,
            store=store,
        )
        if store is not None:
            session = store.session
            print(
                f"store: {session['hits']} hit(s), "
                f"{session['misses']} miss(es), {session['puts']} put(s) "
                f"in {store.directory}"
            )
        print(
            f"resilient sweep: {outcome['completed']}/{outcome['cells']} "
            f"cells completed, {len(outcome['failures'])} quarantined"
        )
        print(f"journal: {outcome['journal']}")
        print(f"wrote {outcome['artifact']}")
        _telemetry_end(args, "perf-resilient")
        if outcome["failures"]:
            _report_failures(outcome["failures"])
            return EXIT_QUARANTINED
        return EXIT_OK

    report = run_reference_bench(
        workers=args.workers,
        benchmarks=tuple(args.benchmarks),
        accesses=args.accesses,
        output=Path(args.output) if args.output else None,
        include_uncached=not args.skip_uncached,
        include_replay=not args.no_replay,
        include_plan=not args.no_plan,
        include_telemetry=not args.no_telemetry,
        include_store=not args.no_store,
        rounds=args.rounds,
        metrics_out=Path(args.metrics_out) if args.metrics_out else None,
        history=Path(args.history) if args.history else None,
    )
    print(format_report(report))
    history = report.get("history")
    if history is not None:
        print(format_history_delta(report, history["previous"]))
        print(f"appended {history['path']}")
    if args.output:
        print(f"wrote {args.output}")
    if args.metrics_out and not args.no_telemetry:
        print(f"wrote {args.metrics_out}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Profile one simulation cell and write the JSON artifact."""
    from repro.bench.profiling import (
        format_profile,
        profile_run,
        write_profile_artifact,
    )
    from repro.workloads.parsec import PARSEC_PROFILES
    from repro.workloads.spec import SPEC_PROFILES as _SPEC

    _telemetry_begin(args)
    _apply_cache_limit(args)
    if args.benchmark in PARSEC_PROFILES:
        suite = "parsec"
    elif args.benchmark in _SPEC:
        suite = "spec"
    else:
        _profile_for(args.benchmark)  # raises with the known-name list
        raise AssertionError("unreachable")
    document = profile_run(
        benchmark=args.benchmark,
        protocol=args.protocol,
        accesses=args.accesses,
        seed=args.seed,
        suite=suite,
        functional=args.functional,
        integrity_mode=args.integrity_mode,
        capture_cprofile=not args.no_cprofile,
        top=args.top,
        replay=args.replay or args.plan,
        plan=args.plan,
    )
    print(format_profile(document, top=args.top))
    if args.output:
        write_profile_artifact(document, args.output)
        print(f"wrote {args.output}")
    _telemetry_end(args, "profile")
    return EXIT_OK


def cmd_crash_drill(args: argparse.Namespace) -> int:
    """Functional crash/recovery drill: write, pull the plug, recover,
    audit — the quickest way to see a protocol's guarantee in action."""
    from repro.core.mee import MemoryEncryptionEngine
    from repro.core.protocol import make_protocol
    from repro.core.recovery import CrashInjector
    from repro.util.units import MB

    config = default_config(capacity_bytes=64 * MB)
    mee = MemoryEncryptionEngine(
        config, make_protocol(args.protocol, config), functional=True
    )
    records = {}
    for i in range(args.records):
        # 48 pages x 64 blocks: unique addresses up to 3072 records.
        addr = (i % 48) * 4096 + (i // 48) * 64
        payload = f"drill-{i:05d}".encode().ljust(64, b"\x00")
        mee.write_block(addr, data=payload)
        records[addr] = payload
    outcome = CrashInjector(mee).crash_and_recover()
    intact = sum(
        1 for addr, payload in records.items()
        if outcome.ok and mee.read_block_data(addr) == payload
    )
    print(
        f"protocol={args.protocol}  recovery="
        f"{'OK' if outcome.ok else 'FAILED'}  "
        f"nodes_recomputed={outcome.nodes_recomputed}  "
        f"records_intact={intact}/{len(records)}"
        + (f"  ({outcome.detail})" if outcome.detail else "")
    )
    return 0 if outcome.ok else 1


def cmd_faults(args: argparse.Namespace) -> int:
    """Run a fault-injection campaign and write the JSON report."""
    from pathlib import Path

    from repro.bench.reporting import format_matrix
    from repro.faults.campaign import default_fault_config, run_campaign
    from repro.faults.triggers import trigger_catalog
    from repro.workloads.faultprofiles import FAULT_PROFILES

    if args.list_triggers:
        print("crash-trigger kinds:")
        for kind, example, description in trigger_catalog():
            print(f"  {kind:<16} e.g. {example:<18} {description}")
        return EXIT_OK

    def split(values: List[str]) -> List[str]:
        return [item for chunk in values for item in chunk.split(",") if item]

    protocols = split(args.protocols)
    known = protocol_names()
    for protocol in protocols:
        if protocol not in known:
            raise SystemExit(
                f"unknown protocol {protocol!r}; known: {known}"
            )
    workloads = split(args.workloads)
    for workload in workloads:
        if workload not in FAULT_PROFILES:
            raise SystemExit(
                f"unknown fault workload {workload!r}; "
                f"known: {sorted(FAULT_PROFILES)}"
            )
    traces = [
        profile_spec("faults", name, args.accesses, args.seed)
        for name in workloads
    ]
    _telemetry_begin(args)
    run_dir, resume = _resolve_run_dir(args)
    if run_dir:
        _install_run_events(run_dir)
    report = run_campaign(
        protocols,
        traces,
        config=default_fault_config(persist_model=args.persist_model),
        crash_every=args.crash_every,
        random_crashes=args.random_crashes,
        phase_samples=args.phase_samples,
        tamper_crashes=args.tamper_crashes,
        tamper_target=args.tamper_target,
        seed=args.seed,
        max_crash_states=args.max_crash_states,
        torn_lines=args.torn_lines,
        workers=args.workers,
        run_dir=run_dir,
        resume=resume,
        policy=_policy_from_args(args) if run_dir else None,
    )
    summary = report.summary()
    print(
        format_matrix(
            report.by_protocol(),
            "protocol",
            title=f"Fault campaign — {summary['cells']} cells, "
            f"{summary['baselines']} baselines",
        )
    )
    print()
    print(format_matrix(report.by_phase(), "crash_phase"))
    print()
    occurrences = summary["phase_occurrences"]
    if occurrences:
        print(
            "crash windows observed: "
            + ", ".join(f"{k}={v}" for k, v in sorted(occurrences.items()))
        )
    coverage = summary["crash_states"]
    if coverage["total_reachable"]:
        print(
            f"crash states: {coverage['explored']} explored of "
            f"{coverage['total_reachable']} reachable "
            f"(sampled={coverage['sampled']}, skipped={coverage['skipped']}, "
            f"torn={coverage['torn']}; "
            f"{coverage['exhaustive_cells']} exhaustive / "
            f"{coverage['sampled_cells']} sampled cells)"
        )
    if args.output:
        report.write_json(Path(args.output))
        print(f"wrote {args.output}")
    _telemetry_end(args, "faults")
    failed = False
    for cell in report.silent_cells():
        failed = True
        state = f" state={cell.worst_state}" if cell.worst_state else ""
        print(
            f"SILENT DIVERGENCE: {cell.protocol}/{cell.workload} "
            f"{cell.trigger}:{state} {cell.first_divergence}"
        )
    for cell in report.anomalies():
        failed = True
        print(
            f"ANOMALY ({cell.anomaly}): {cell.protocol}/{cell.workload} "
            f"{cell.trigger}: verdict={cell.verdict} "
            f"{cell.recovery_detail}"
        )
    if failed:
        return EXIT_INTEGRITY
    if report.failures:
        _report_failures(report.failures)
        return EXIT_QUARANTINED
    return EXIT_OK


def cmd_store(args: argparse.Namespace) -> int:
    """Inspect and maintain a content-addressed result store."""
    from repro.store import ResultStore, resolve_store_dir

    directory = resolve_store_dir(args.store_dir)
    if directory is None:
        raise SystemExit(
            "no store directory: pass --store-dir or set $REPRO_STORE_DIR"
        )
    store = ResultStore(directory)

    if args.action == "stats":
        stats = store.stats()
        rows = [
            {"property": "objects", "value": stats["objects"]},
            {"property": "bytes", "value": stats["bytes"]},
            {"property": "index entries", "value": stats["index_entries"]},
        ]
        print(
            format_table(
                rows, title=f"result store — {stats['directory']}", precision=0
            )
        )
        return EXIT_OK

    if args.action == "verify":
        report = store.verify()
        print(
            f"verified {report['checked']} object(s): {report['ok']} ok, "
            f"{len(report['corrupt'])} corrupt"
        )
        for item in report["corrupt"]:
            print(
                f"CORRUPT: {item['fingerprint']} — {item['problem']}",
                file=sys.stderr,
            )
        return EXIT_INTEGRITY if report["corrupt"] else EXIT_OK

    if args.action == "gc":
        max_age = (
            args.max_age_days * 86400.0
            if args.max_age_days is not None
            else None
        )
        report = store.gc(max_age_seconds=max_age, max_objects=args.max_objects)
        print(
            f"gc: removed {report['removed']} object(s), "
            f"kept {report['kept']} "
            f"({report['index_entries']} index entries)"
        )
        return EXIT_OK

    if args.action == "ls":
        rows = [
            {
                "fingerprint": entry.get("fingerprint", "")[:16],
                "protocol": entry.get("protocol", "?"),
                "workload": entry.get("workload", "?"),
                "created_at": entry.get("created_at", "?"),
            }
            for entry in store.ls(limit=args.limit)
        ]
        if not rows:
            print(f"store at {store.directory} is empty")
            return EXIT_OK
        print(format_table(rows, title=f"result store — {store.directory}"))
        return EXIT_OK

    raise SystemExit(f"unknown store action {args.action!r}")


def cmd_history(args: argparse.Namespace) -> int:
    """Render the BENCH_history.jsonl trend log as per-leg tables."""
    from pathlib import Path

    from repro.util.atomicio import read_jsonl

    path = Path(args.path)
    entries = read_jsonl(path)
    if not entries:
        raise SystemExit(
            f"no history at {path} — produce entries with `repro perf`"
        )
    if args.last is not None and args.last >= 1:
        entries = entries[-args.last :]
    latest = entries[-1]
    previous = entries[-2] if len(entries) > 1 else None

    def block(kind: str, unit: str, better_when_lower: bool) -> List[dict]:
        rows = []
        current = latest.get(kind) or {}
        prior = (previous or {}).get(kind) or {}
        for leg, value in current.items():
            if value is None:
                continue
            row = {"leg": leg, f"latest_{unit}": value}
            before = prior.get(leg)
            if before is not None and before > 0:
                row[f"previous_{unit}"] = before
                row["delta_pct"] = (value - before) / before * 100.0
                row["speedup_vs_prev"] = (
                    before / value if better_when_lower else value / before
                )
            rows.append(row)
        return rows

    print(
        f"{len(entries)} recorded run(s) in {path}; "
        f"latest {latest.get('recorded_at')}"
        + (f", previous {previous.get('recorded_at')}" if previous else "")
    )
    timing_rows = block("timings_seconds", "s", better_when_lower=True)
    if timing_rows:
        print(format_table(timing_rows, title="leg timings", precision=3))
    speedup_rows = block("speedups", "x", better_when_lower=False)
    if speedup_rows:
        print(format_table(speedup_rows, title="derived speedups", precision=3))
    return EXIT_OK


def cmd_metrics(args: argparse.Namespace) -> int:
    """Print a ``repro.metrics/v1`` document as snapshot tables."""
    import json
    from pathlib import Path

    from repro import telemetry
    from repro.bench.reporting import format_metrics

    path = Path(args.path)
    if not path.exists():
        raise SystemExit(
            f"no metrics document at {path} — produce one with "
            f"--metrics-out on sweep/perf/profile/faults"
        )
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise SystemExit(f"{path} is not valid JSON: {exc}")
    problems = telemetry.validate_metrics_document(document)
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return EXIT_INTEGRITY
    if args.prometheus:
        print(telemetry.render_prometheus(document["metrics"]), end="")
        return EXIT_OK
    print(format_metrics(document, source=str(path)))
    return EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="AMNT reproduction command-line interface"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    sweep = commands.add_parser(
        "sweep", help="run one benchmark under several protocols"
    )
    sweep.add_argument("benchmark", help="PARSEC or SPEC profile name")
    sweep.add_argument("--accesses", type=int, default=60_000)
    sweep.add_argument("--seed", type=int, default=2024)
    sweep.add_argument("--subtree-level", type=int, default=3)
    sweep.add_argument("--scatter-chunks", type=int, default=0)
    sweep.add_argument(
        "--protocols",
        nargs="+",
        default=list(FIGURE_PROTOCOLS),
        choices=protocol_names(),
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        help="processes for the sweep grid (1 = in-process serial)",
    )
    sweep.add_argument(
        "--no-replay",
        action="store_true",
        help="re-walk the data side per protocol instead of compiling "
        "one boundary stream (results are identical either way)",
    )
    sweep.add_argument(
        "--no-plan",
        action="store_true",
        help="replay without the compiled metadata plan (results are "
        "identical either way; only the wall-clock changes)",
    )
    _add_store_args(sweep)
    _add_cache_limit_arg(sweep)
    _add_telemetry_args(sweep)
    sweep.set_defaults(handler=cmd_sweep)

    experiment = commands.add_parser(
        "experiment", help="regenerate a paper table or figure"
    )
    experiment.add_argument(
        "name",
        choices=[
            "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
            "table2", "table3", "table4",
        ],
    )
    experiment.add_argument("--accesses", type=int, default=40_000)
    experiment.add_argument(
        "--workers",
        type=int,
        default=1,
        help="processes for the experiment's sweep grid",
    )
    experiment.set_defaults(handler=cmd_experiment)

    perf = commands.add_parser(
        "perf",
        help="time the reference sweep and write BENCH_sweep.json",
    )
    perf.add_argument(
        "--workers",
        type=int,
        default=None,
        help="pool size for the parallel leg (default: visible cores)",
    )
    perf.add_argument("--accesses", type=int, default=20_000)
    perf.add_argument(
        "--benchmarks",
        nargs="+",
        default=["blackscholes", "bodytrack", "canneal"],
    )
    perf.add_argument(
        "--output",
        default="BENCH_sweep.json",
        help="report path ('' to skip writing)",
    )
    perf.add_argument(
        "--skip-uncached",
        action="store_true",
        help="skip the slow no-trace-cache leg (CI smoke)",
    )
    perf.add_argument(
        "--rounds",
        type=int,
        default=3,
        help="interleaved rounds per leg; reported time is the best",
    )
    perf.add_argument(
        "--no-replay",
        action="store_true",
        help="skip the boundary-replay leg (timing mode) or run the "
        "resilient sweep through the direct per-protocol path",
    )
    perf.add_argument(
        "--no-plan",
        action="store_true",
        help="skip the metadata-plan leg (timing mode) or run the "
        "resilient sweep's replays without compiled plans",
    )
    perf.add_argument(
        "--history",
        default="BENCH_history.jsonl",
        help="JSONL trend log appended after each timing run "
        "('' to skip)",
    )
    _add_store_args(perf)
    _add_cache_limit_arg(perf)
    _add_resilience_args(perf)
    _add_telemetry_args(perf)
    perf.set_defaults(handler=cmd_perf)

    prof = commands.add_parser(
        "profile",
        help="attribute one cell's wall-clock to phases, with hotspots",
    )
    prof.add_argument("benchmark", help="PARSEC or SPEC profile name")
    prof.add_argument(
        "--protocol", default="amnt", choices=protocol_names()
    )
    prof.add_argument("--accesses", type=int, default=20_000)
    prof.add_argument("--seed", type=int, default=2024)
    prof.add_argument(
        "--functional",
        action="store_true",
        help="run with the functional crypto/tree engaged",
    )
    prof.add_argument(
        "--integrity-mode",
        choices=["eager", "lazy"],
        default="eager",
        help="BMT update discipline for functional runs",
    )
    prof.add_argument(
        "--no-cprofile",
        action="store_true",
        help="skip cProfile capture (pure phase timers, less overhead)",
    )
    prof.add_argument(
        "--replay",
        action="store_true",
        help="profile the compile-then-replay pipeline (splits out the "
        "boundary_compile phase) instead of the direct path",
    )
    prof.add_argument(
        "--plan",
        action="store_true",
        help="profile the plan-driven replay (implies --replay; splits "
        "out the boundary_plan phase)",
    )
    prof.add_argument(
        "--top", type=int, default=15, help="hotspot rows to keep/print"
    )
    prof.add_argument(
        "--output",
        default="PROFILE_run.json",
        help="artifact path ('' to skip writing)",
    )
    _add_cache_limit_arg(prof)
    _add_telemetry_args(prof)
    prof.set_defaults(handler=cmd_profile)

    area = commands.add_parser("area-table", help="print Table 3")
    area.set_defaults(handler=cmd_area_table)

    recovery = commands.add_parser("recovery-table", help="print Table 4")
    recovery.set_defaults(handler=cmd_recovery_table)

    protocols = commands.add_parser("protocols", help="list protocols")
    protocols.set_defaults(handler=cmd_protocols)

    profiles = commands.add_parser(
        "profiles", help="list workload profiles and their parameters"
    )
    profiles.set_defaults(handler=cmd_profiles)

    drill = commands.add_parser(
        "crash-drill",
        help="functional crash/recovery drill for one protocol",
    )
    drill.add_argument(
        "--protocol", default="amnt", choices=protocol_names()
    )
    drill.add_argument("--records", type=int, default=150)
    drill.set_defaults(handler=cmd_crash_drill)

    faults = commands.add_parser(
        "faults",
        help="fault-injection campaign: swept crash points + oracle",
    )
    faults.add_argument(
        "--protocols",
        nargs="+",
        default=["leaf", "strict", "amnt", "amnt++"],
        help="protocol names (space- or comma-separated)",
    )
    faults.add_argument(
        "--workloads",
        nargs="+",
        default=["hotshift"],
        help="fault workload profiles (see repro.workloads.faultprofiles)",
    )
    faults.add_argument("--accesses", type=int, default=5_000)
    faults.add_argument(
        "--crash-every",
        type=int,
        default=0,
        help="crash at every Nth access (0 = none)",
    )
    faults.add_argument(
        "--random-crashes",
        type=int,
        default=0,
        help="seeded random crash points per (protocol, workload)",
    )
    faults.add_argument(
        "--phase-samples",
        type=int,
        default=3,
        help="crash ordinals sampled per observed phase window",
    )
    faults.add_argument(
        "--tamper-crashes",
        type=int,
        default=2,
        help="crash+tamper cells per (protocol, workload)",
    )
    faults.add_argument(
        "--tamper-target", choices=["data", "counter"], default="data"
    )
    faults.add_argument(
        "--persist-model",
        choices=["writethrough", "wpq"],
        default="writethrough",
        help="NVM persistence model: writethrough (stores durable "
        "immediately) or wpq (stores staged in a write-pending queue; "
        "crashed cells explore every reachable drain subset)",
    )
    faults.add_argument(
        "--max-crash-states",
        type=int,
        default=4096,
        help="crash-state budget per cell under --persist-model wpq "
        "(beyond it, subsets are seeded-sampled, never silently dropped)",
    )
    faults.add_argument(
        "--torn-lines",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="also audit one half-applied (torn) variant per pending line",
    )
    faults.add_argument(
        "--list-triggers",
        action="store_true",
        help="print the crash-trigger catalog and exit",
    )
    faults.add_argument("--seed", type=int, default=2024)
    faults.add_argument(
        "--workers",
        type=int,
        default=1,
        help="processes for the campaign grid (1 = in-process serial)",
    )
    faults.add_argument(
        "--output",
        default="FAULTS_campaign.json",
        help="JSON report path ('' to skip writing)",
    )
    _add_resilience_args(faults)
    _add_telemetry_args(faults)
    faults.set_defaults(handler=cmd_faults)

    store = commands.add_parser(
        "store",
        help="inspect/maintain the content-addressed result store",
    )
    store.add_argument(
        "action",
        choices=["stats", "verify", "gc", "ls"],
        help="stats: totals; verify: re-hash every object; "
        "gc: expire by age/count; ls: catalog entries",
    )
    store.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="store directory (default: $REPRO_STORE_DIR)",
    )
    store.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        help="gc: remove objects older than this many days",
    )
    store.add_argument(
        "--max-objects",
        type=int,
        default=None,
        help="gc: keep at most this many (newest) objects",
    )
    store.add_argument(
        "--limit",
        type=int,
        default=None,
        help="ls: show at most this many entries (newest first)",
    )
    store.set_defaults(handler=cmd_store)

    history = commands.add_parser(
        "history",
        help="render the BENCH_history.jsonl trend log as tables",
    )
    history.add_argument(
        "path",
        nargs="?",
        default="BENCH_history.jsonl",
        help="trend log to read (default: BENCH_history.jsonl)",
    )
    history.add_argument(
        "--last",
        type=int,
        default=None,
        metavar="N",
        help="only consider the last N recorded runs",
    )
    history.set_defaults(handler=cmd_history)

    metrics = commands.add_parser(
        "metrics",
        help="print a repro.metrics/v1 document as snapshot tables",
    )
    metrics.add_argument(
        "path",
        nargs="?",
        default="METRICS_run.json",
        help="metrics document to print (default: METRICS_run.json)",
    )
    metrics.add_argument(
        "--prometheus",
        action="store_true",
        help="emit Prometheus text exposition format instead of tables",
    )
    metrics.set_defaults(handler=cmd_metrics)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # stdout piped into a pager/head that exited early; not an error.
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        return 0
    except ResumeManifestMismatch as exc:
        print(f"resume refused: {exc}", file=sys.stderr)
        return EXIT_RESUME_MISMATCH
    except KeyboardInterrupt:
        print(
            "interrupted — journal checkpoint flushed; "
            "continue with --resume <run-dir>",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED


if __name__ == "__main__":
    sys.exit(main())
