"""Content-addressed result store with incremental sweeps.

Every sweep cell in this repository is a *pure function* of its inputs:
``(protocol, trace recipe, seeds, geometry, integrity mode, persist
model) -> SimulationResult``, bit-identically, on any machine. The
replay and plan compilers (:mod:`repro.sim.replay`,
:mod:`repro.sim.plan`) made each cell cheap *within* a process; this
package makes results free *across* processes: a persistent,
content-addressed store keyed by the cell's full input closure, and an
incremental execution path that consults it before computing.

* :mod:`repro.store.fingerprint` — canonical, stable cell fingerprints
  (the store addresses);
* :mod:`repro.store.store` — the on-disk CAS: sharded JSON objects plus
  a JSONL index, atomic-rename writers, digest-verified readers, GC.

The incremental path is threaded through
:meth:`repro.sim.parallel.ParallelSweepRunner.run`,
:func:`repro.sim.runner.run_protocol_sweep`, and
:func:`repro.bench.perf.run_resilient_sweep` via their ``store=``
parameter; fault campaigns never pass a store (they mutate machine
state mid-run through :func:`repro.faults.campaign.run_fault_cell`,
which pins the direct path). See docs/STORE.md.
"""

from repro.store.fingerprint import (
    RESULT_EPOCH,
    STORE_SCHEMA,
    cell_fingerprint,
    fingerprint_payload,
)
from repro.store.store import (
    DEFAULT_STORE_DIR,
    STORE_DIR_ENV,
    ResultStore,
    resolve_store_dir,
)

__all__ = [
    "RESULT_EPOCH",
    "STORE_SCHEMA",
    "cell_fingerprint",
    "fingerprint_payload",
    "DEFAULT_STORE_DIR",
    "STORE_DIR_ENV",
    "ResultStore",
    "resolve_store_dir",
]
