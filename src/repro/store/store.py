"""The on-disk content-addressed store: sharded objects + JSONL index.

Layout (all under one store directory)::

    <store>/objects/ab/cdef...0123.json   one JSON object per result,
                                          sharded by the first two hex
                                          chars of the fingerprint
    <store>/index.jsonl                   append-only catalog: one line
                                          per put (fingerprint, label,
                                          timestamps) for ls/gc/stats
    <store>/meta.json                     schema tag + creation record

Durability and concurrency inherit the repository's atomic-IO
discipline (:mod:`repro.util.atomicio`):

* **Objects** are written via write-temp-fsync-rename, so a reader
  sees a complete object or nothing — never a torn prefix. Concurrent
  writers of the same fingerprint race safely: both temp files hold
  byte-identical payloads (results are pure functions of the
  fingerprinted closure), so last-writer-wins is a no-op.
* **The index** uses the durable single-line append; a crash can tear
  at worst the final line, which readers skip. The index is a cache of
  the object tree, not the source of truth — ``ls``/``stats`` fall
  back to scanning objects when entries are missing, and ``gc``
  rewrites it atomically to drop entries for deleted objects only.
* **Corruption is demoted to a miss.** Every object embeds a sha256 of
  its payload; ``get`` re-verifies on read, and a torn/bit-flipped
  object counts ``store.corrupt`` and returns ``None`` — the sweep
  recomputes that cell and the subsequent ``put`` heals the object.
  A corrupt entry is never served.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro import telemetry
from repro.sim.results import SimulationResult
from repro.util.atomicio import (
    atomic_append_jsonl,
    atomic_write_json,
    read_jsonl,
)
from repro.util.fingerprint import digest_payload
from repro.store.fingerprint import STORE_SCHEMA

#: Environment variable naming the default store directory.
STORE_DIR_ENV = "REPRO_STORE_DIR"

#: Conventional in-repo store location (what the docs suggest; nothing
#: creates it unless a command is pointed at it).
DEFAULT_STORE_DIR = ".repro-store"

INDEX_NAME = "index.jsonl"
META_NAME = "meta.json"
OBJECTS_DIR = "objects"


def resolve_store_dir(
    store_dir: Optional[Union[str, Path]] = None,
    no_store: bool = False,
) -> Optional[Path]:
    """CLI/env resolution: explicit flag beats ``$REPRO_STORE_DIR``;
    ``no_store`` beats both. ``None`` means the store stays off."""
    if no_store:
        return None
    if store_dir:
        return Path(store_dir)
    env = os.environ.get(STORE_DIR_ENV, "").strip()
    return Path(env) if env else None


def _is_fingerprint(text: str) -> bool:
    return len(text) == 64 and all(c in "0123456789abcdef" for c in text)


class ResultStore:
    """A persistent, content-addressed cache of sweep-cell results.

    Instances are cheap (no open handles between calls) and safe to use
    from many processes against one directory. Per-instance session
    counters (`hits`/`misses`/`puts`/`corrupt`) always accumulate;
    matching ``store.*`` telemetry counters fire when collection is
    enabled, so warm-ratio numbers land in the metrics document.
    """

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        self.session: Dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "puts": 0,
            "corrupt": 0,
        }

    # -- paths --------------------------------------------------------

    @property
    def objects_dir(self) -> Path:
        return self.directory / OBJECTS_DIR

    @property
    def index_path(self) -> Path:
        return self.directory / INDEX_NAME

    @property
    def meta_path(self) -> Path:
        return self.directory / META_NAME

    def object_path(self, fingerprint: str) -> Path:
        """``objects/ab/cdef...json`` — sharded so one directory never
        holds more than 1/256th of the store."""
        return (
            self.objects_dir / fingerprint[:2] / (fingerprint[2:] + ".json")
        )

    # -- lifecycle ----------------------------------------------------

    def ensure(self) -> "ResultStore":
        """Create the directory skeleton (idempotent, concurrent-safe)."""
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        if not self.meta_path.exists():
            atomic_write_json(
                self.meta_path,
                {"schema": STORE_SCHEMA, "created_at": _now_iso()},
            )
        return self

    # -- core CAS operations ------------------------------------------

    def contains(self, fingerprint: str) -> bool:
        """Cheap existence probe — no digest verification (``get`` does
        that); a corrupt object still reads as a miss later."""
        return self.object_path(fingerprint).exists()

    def get(self, fingerprint: str) -> Optional[SimulationResult]:
        """The result stored under ``fingerprint``, or ``None``.

        ``None`` covers both a genuine miss and a corrupt object (torn
        write from a crashed writer, bit rot); corruption additionally
        counts ``store.corrupt``. Either way the caller recomputes —
        a corrupt entry is never served.
        """
        path = self.object_path(fingerprint)
        try:
            text = path.read_text(encoding="utf-8")
        except (FileNotFoundError, OSError):
            self._count("misses")
            return None
        problem = _object_problem(text, fingerprint)
        if problem is not None:
            self._count("corrupt")
            self._count("misses")
            telemetry.emit_event(
                "store_corrupt", fingerprint=fingerprint, problem=problem
            )
            return None
        payload = json.loads(text)["payload"]
        self._count("hits")
        return SimulationResult.from_json_dict(payload)

    def put(
        self,
        fingerprint: str,
        result: SimulationResult,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Persist ``result`` under ``fingerprint`` (atomic, idempotent).

        Safe under concurrent multi-process writers: the object lands
        via write-temp-rename (unique temp names, atomic replace), and
        two writers of one fingerprint carry byte-identical payloads by
        the store's purity contract, so last-writer-wins cannot lose
        information. The index append is durable and single-line;
        duplicate index lines for one fingerprint are collapsed on read.
        """
        self.ensure()
        payload = result.to_json_dict()
        document = {
            "schema": STORE_SCHEMA,
            "fingerprint": fingerprint,
            "payload": payload,
            "payload_digest": digest_payload(payload),
        }
        if meta:
            document["meta"] = meta
        path = self.object_path(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Insertion order is preserved on disk deliberately: the codec
        # (to_json/from_json) keys stat dicts in emission order, and a
        # warm read must serialize byte-identically to the cold result
        # it replaced. The payload digest is canonical-JSON (sorted), so
        # verification is order-insensitive either way.
        atomic_write_json(path, document, indent=None, sort_keys=False)
        atomic_append_jsonl(
            self.index_path,
            {
                "fingerprint": fingerprint,
                "protocol": result.protocol,
                "workload": result.workload,
                "accesses": result.accesses,
                "created_at": _now_iso(),
            },
        )
        self._count("puts")
        return path

    @staticmethod
    def normalize(result: SimulationResult) -> SimulationResult:
        """A result as it would read back from the store (full JSON
        round trip). The incremental runners pass freshly computed
        misses through this, so a warm sweep and a cold sweep return
        structurally indistinguishable objects — the same codec
        discipline the run journal applies."""
        return SimulationResult.from_json(result.to_json())

    # -- maintenance --------------------------------------------------

    def fingerprints(self) -> List[str]:
        """Every object currently on disk (the source of truth)."""
        found: List[str] = []
        if not self.objects_dir.exists():
            return found
        for shard in sorted(self.objects_dir.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.iterdir()):
                if entry.suffix == ".json":
                    fingerprint = shard.name + entry.stem
                    if _is_fingerprint(fingerprint):
                        found.append(fingerprint)
        return found

    def verify(self) -> Dict[str, Any]:
        """Re-hash every object; report (and count) corruption.

        Returns ``{"checked": n, "ok": n, "corrupt": [{fingerprint,
        problem}, ...]}``. Verification never deletes — a corrupt
        object is healed by the next recompute's ``put``, and leaving
        it in place keeps the evidence for a curious operator.
        """
        corrupt: List[Dict[str, str]] = []
        checked = 0
        for fingerprint in self.fingerprints():
            checked += 1
            try:
                text = self.object_path(fingerprint).read_text(
                    encoding="utf-8"
                )
            except OSError as exc:
                corrupt.append(
                    {"fingerprint": fingerprint, "problem": str(exc)}
                )
                continue
            problem = _object_problem(text, fingerprint)
            if problem is not None:
                corrupt.append(
                    {"fingerprint": fingerprint, "problem": problem}
                )
        self.session["corrupt"] += len(corrupt)
        if corrupt:
            telemetry.counter("store.corrupt").inc(len(corrupt))
        return {
            "checked": checked,
            "ok": checked - len(corrupt),
            "corrupt": corrupt,
        }

    def gc(
        self,
        max_age_seconds: Optional[float] = None,
        max_objects: Optional[int] = None,
        now: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Expire objects by age and/or count; compact the index.

        ``max_age_seconds`` drops objects whose mtime is older than the
        horizon; ``max_objects`` then keeps only the newest N. Both
        ``None`` makes gc a pure index compaction (drop lines whose
        objects vanished, dedupe). The index rewrite is atomic and
        keeps exactly the entries of surviving objects — live entries
        are never deleted.
        """
        now = time.time() if now is None else now
        ages: List[tuple] = []  # (mtime, fingerprint)
        for fingerprint in self.fingerprints():
            try:
                mtime = self.object_path(fingerprint).stat().st_mtime
            except OSError:
                continue
            ages.append((mtime, fingerprint))
        doomed: List[str] = []
        if max_age_seconds is not None:
            horizon = now - max_age_seconds
            doomed.extend(fp for mtime, fp in ages if mtime < horizon)
        if max_objects is not None and max_objects >= 0:
            survivors = sorted(
                (pair for pair in ages if pair[1] not in set(doomed)),
                reverse=True,
            )
            doomed.extend(fp for _, fp in survivors[max_objects:])
        removed = 0
        for fingerprint in doomed:
            try:
                self.object_path(fingerprint).unlink()
                removed += 1
            except OSError:
                pass
        live = set(self.fingerprints())
        kept_entries = [
            entry
            for entry in self._index_entries()
            if entry.get("fingerprint") in live
        ]
        self._rewrite_index(kept_entries)
        if removed:
            telemetry.counter("store.gc_removed").inc(removed)
            telemetry.emit_event(
                "store_gc", removed=removed, kept=len(live)
            )
        return {
            "removed": removed,
            "kept": len(live),
            "index_entries": len(kept_entries),
        }

    def stats(self) -> Dict[str, Any]:
        """On-disk totals plus this process's session counters."""
        fingerprints = self.fingerprints()
        total_bytes = 0
        for fingerprint in fingerprints:
            try:
                total_bytes += self.object_path(fingerprint).stat().st_size
            except OSError:
                pass
        return {
            "directory": str(self.directory),
            "schema": STORE_SCHEMA,
            "objects": len(fingerprints),
            "bytes": total_bytes,
            "index_entries": len(self._index_entries()),
            "session": dict(self.session),
        }

    def ls(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Catalog rows, newest first: index entries for live objects
        (one per fingerprint, latest write wins), backfilled from the
        object tree for entries the index is missing."""
        live = set(self.fingerprints())
        by_fingerprint: Dict[str, Dict[str, Any]] = {}
        for entry in self._index_entries():
            fingerprint = entry.get("fingerprint")
            if fingerprint in live:
                by_fingerprint[fingerprint] = entry
        for fingerprint in live - set(by_fingerprint):
            by_fingerprint[fingerprint] = {"fingerprint": fingerprint}
        rows = sorted(
            by_fingerprint.values(),
            key=lambda entry: str(entry.get("created_at", "")),
            reverse=True,
        )
        return rows if limit is None else rows[:limit]

    # -- internals ----------------------------------------------------

    def _index_entries(self) -> List[Dict[str, Any]]:
        return [
            entry
            for entry in read_jsonl(self.index_path)
            if isinstance(entry, dict)
        ]

    def _rewrite_index(self, entries: List[Dict[str, Any]]) -> None:
        from repro.util.atomicio import atomic_write_text

        lines = [
            json.dumps(entry, sort_keys=True, separators=(",", ": "))
            for entry in entries
        ]
        self.directory.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            self.index_path, "\n".join(lines) + ("\n" if lines else "")
        )

    def _count(self, kind: str) -> None:
        self.session[kind] += 1
        telemetry.counter(f"store.{kind}").inc()


def _object_problem(text: str, fingerprint: str) -> Optional[str]:
    """Why this object text must not be served (``None`` when clean)."""
    try:
        document = json.loads(text)
    except ValueError:
        return "unparsable JSON (torn or truncated write)"
    if not isinstance(document, dict):
        return "not a JSON object"
    if document.get("fingerprint") != fingerprint:
        return "fingerprint does not match object address"
    payload = document.get("payload")
    if not isinstance(payload, dict):
        return "missing result payload"
    digest = document.get("payload_digest")
    if digest != digest_payload(payload):
        return "payload digest mismatch (bit rot or tampering)"
    return None


def _now_iso() -> str:
    from datetime import datetime, timezone

    return datetime.now(timezone.utc).isoformat(timespec="seconds")
