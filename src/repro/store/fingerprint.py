"""Cell fingerprints: the result store's content addresses.

A fingerprint must satisfy two properties or the store is worse than
useless:

1. **Completeness** — every input that can change a
   :class:`~repro.sim.results.SimulationResult` is in the hashed
   closure. Miss one and the store serves a stale result for a changed
   knob (silent wrong numbers, the cardinal sin of a cache).
2. **Stability modulo execution strategy** — inputs that provably
   *cannot* change the result stay out. The direct, stream-replay, and
   plan-replay paths are bit-identical by construction (property-tested
   since PRs 5 and 9), so ``replay``/``plan`` do not participate; a
   warm sweep hits regardless of which engine path computed the entry.

The closure hashed here is therefore: the full effective
:class:`~repro.config.SystemConfig` (geometry, timing, metadata cache,
protocol knobs, ``persist_model`` — everything, via its dataclass
fields), the resolved :class:`~repro.workloads.registry.TraceSpec`
recipe including its seed, the engine seed and churn schedule, the
allocator aging knob, ``functional`` and ``integrity_mode``, the
protocol name, and a schema + code-epoch version so entries written by
an older simulator can never alias a newer one's.

The digest itself is :func:`repro.util.fingerprint.digest_payload` —
the same canonical-JSON sha256 the run journals' manifests are built
on. One digest implementation, everywhere.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.util.fingerprint import digest_payload

#: Store object schema tag. Bump when the on-disk object layout changes.
STORE_SCHEMA = "repro.store/v1"

#: Result-semantics epoch. Bump this whenever a change to the simulator
#: alters SimulationResults for unchanged inputs (a timing-model fix, a
#: stat rename, a protocol behaviour change): every fingerprint changes,
#: so stale entries from the previous epoch can never be served. The
#: library version participates too, but the epoch is the explicit,
#: reviewable switch — a version bump for docs-only changes should NOT
#: invalidate a store, and this constant is how that distinction is
#: drawn.
RESULT_EPOCH = 1


def _library_version() -> str:
    from repro import __version__

    return __version__


def fingerprint_payload(cell: Any, config: Any) -> Dict[str, Any]:
    """The jsonable input closure of one sweep cell.

    ``cell`` is a :class:`~repro.sim.parallel.SweepCell` (duck-typed to
    avoid an import cycle: ``repro.sim`` imports this package for the
    incremental path). ``config`` is the runner-level
    :class:`~repro.config.SystemConfig`; a cell-level override wins,
    exactly as in :func:`repro.sim.parallel.run_cell`.

    Exposed separately from :func:`cell_fingerprint` so tests (and
    curious humans) can inspect *what* was hashed, not just the hash.
    """
    effective = cell.config if cell.config is not None else config
    return {
        "schema": STORE_SCHEMA,
        "epoch": RESULT_EPOCH,
        "library_version": _library_version(),
        "protocol": cell.protocol,
        # TraceSpec is a frozen dataclass; jsonable() inside
        # digest_payload reduces it (names tuple, literal payload and
        # all) to canonical JSON.
        "trace": cell.trace,
        "seed": cell.seed,
        "churn_interval": cell.churn_interval,
        "scatter_span_chunks": cell.scatter_span_chunks,
        "functional": cell.functional,
        "integrity_mode": cell.integrity_mode,
        # The *entire* effective config: data/metadata geometry, PCM
        # timing, every protocol's knobs, and persist_model. Hashing
        # the whole dataclass means a future config field is in the
        # closure the day it is added — completeness by construction.
        "config": effective,
    }


def cell_fingerprint(cell: Any, config: Any) -> str:
    """The store address of one sweep cell's result (64-char hex)."""
    return digest_payload(fingerprint_payload(cell, config))
