"""Exception hierarchy for the AMNT reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single ``except`` clause.
Security-relevant failures (integrity mismatches, replay detection) are
deliberately distinct from configuration or simulation errors: a caller
must never confuse "the simulator was misconfigured" with "the memory
was tampered with".
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent with another."""


class ConfigValidationError(ConfigError):
    """A specific configuration field failed up-front validation.

    Carries the dotted name of the offending field (``pcm.capacity_bytes``,
    ``trace.accesses``, ``cell.protocol``) so harnesses and CLIs can point
    at exactly what to fix instead of surfacing a failure from deep inside
    ``simulate()``.
    """

    def __init__(self, field: str, message: str) -> None:
        super().__init__(f"{field}: {message}")
        #: Dotted path of the rejected field.
        self.field = field


class AddressError(ReproError):
    """An address is out of range or misaligned for the operation."""


class CacheError(ReproError):
    """A cache was used in a way that violates its contract."""


class AllocationError(ReproError):
    """The physical page allocator could not satisfy a request."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent internal state."""


class SecurityError(ReproError):
    """Base class for security-protocol violations."""


class IntegrityError(SecurityError):
    """A computed MAC or tree hash did not match the stored value.

    Raised on the read path when verification against the Bonsai Merkle
    Tree fails — this is the condition a physical attacker triggers by
    splicing or spoofing off-chip data.
    """


class ReplayError(SecurityError):
    """Stale-but-valid data was detected (replay attack)."""


class CrashConsistencyError(SecurityError):
    """Recovery found persistent metadata inconsistent with the root.

    Distinct from :class:`IntegrityError`: this is raised by the
    *recovery* procedure when the rebuilt tree cannot be reconciled
    with the non-volatile on-chip root register after a crash.
    """


class RecoveryError(ReproError):
    """The recovery procedure itself could not run to completion."""


class FaultInjectionError(RecoveryError):
    """Fault injection was requested on an engine that cannot host it.

    Raised by :class:`~repro.core.recovery.CrashInjector` and the fault
    campaign machinery when pointed at a timing-only engine: without a
    functional persisted image there is nothing for recovery or the
    integrity oracle to examine. Subclasses :class:`RecoveryError` so
    callers that treated the old generic error keep working.
    """


class OrchestrationError(ReproError):
    """Base class for sweep/campaign orchestration failures.

    These are harness-level conditions (a worker hung, a resume was
    pointed at the wrong run directory) — never simulation results.
    """


class CellTimeoutError(OrchestrationError):
    """A sweep cell exceeded its per-cell wall-clock budget.

    The supervisor terminates the pool that hosted the cell (the only
    way to reclaim a stuck worker) and either retries the cell on a
    fresh pool or quarantines it after exhausting its attempts.
    """

    def __init__(self, key: str, timeout_seconds: float) -> None:
        super().__init__(
            f"cell {key!r} exceeded its {timeout_seconds:.1f}s wall-clock budget"
        )
        self.key = key
        self.timeout_seconds = timeout_seconds


class CellRetryExhausted(OrchestrationError):
    """A sweep cell failed on every allowed attempt and was quarantined.

    The run continues without the cell; the journal and final report
    record the failure (with the last traceback) so a poison cell never
    aborts the surviving grid.
    """

    def __init__(self, key: str, attempts: int, last_error: str) -> None:
        super().__init__(
            f"cell {key!r} quarantined after {attempts} attempt(s): {last_error}"
        )
        self.key = key
        self.attempts = attempts
        self.last_error = last_error


class ResumeManifestMismatch(OrchestrationError):
    """A resume was requested against a journal from a different run.

    Raised when the stored manifest (config digest, grid digest,
    library version, parameters) disagrees with the one the resuming
    process would produce — silently mixing cells from two different
    runs would corrupt the artifact, so the resume is refused.
    """

    def __init__(self, mismatches: "dict[str, tuple[object, object]]") -> None:
        detail = "; ".join(
            f"{field}: journal has {old!r}, run wants {new!r}"
            for field, (old, new) in sorted(mismatches.items())
        )
        super().__init__(f"resume manifest mismatch — {detail}")
        #: field -> (journal value, current value)
        self.mismatches = dict(mismatches)


class PowerFailure(ReproError):
    """A simulated power loss fired by the fault-injection scheduler.

    This is control flow, not a defect: the crash scheduler raises it
    from an instrumentation hook to cut the current access short, and
    the fault driver catches it at the replay loop. It records where
    the crash landed so the campaign can attribute the cell.
    """

    def __init__(
        self,
        phase: str = "access",
        occurrence: int = 0,
        access_index: int = -1,
        write_committed: bool = False,
        in_group: bool = False,
    ) -> None:
        super().__init__(
            f"power failure in phase {phase!r} "
            f"(occurrence {occurrence}, access {access_index})"
        )
        #: Which crash window fired (see repro.faults.triggers).
        self.phase = phase
        #: 1-based count of that phase at the moment of the crash.
        self.occurrence = occurrence
        #: Trace position of the access in flight, -1 if none.
        self.access_index = access_index
        #: True when the in-flight write's persist group had already
        #: drained (the write is durable despite the crash).
        self.write_committed = write_committed
        #: True when the crash landed *inside* an open persist group
        #: (persist-window triggers): the in-flight write's persists
        #: are only partially issued, so "detected" is an acceptable
        #: recovery outcome even for crash-consistent protocols.
        self.in_group = in_group
