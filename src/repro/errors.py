"""Exception hierarchy for the AMNT reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single ``except`` clause.
Security-relevant failures (integrity mismatches, replay detection) are
deliberately distinct from configuration or simulation errors: a caller
must never confuse "the simulator was misconfigured" with "the memory
was tampered with".
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent with another."""


class AddressError(ReproError):
    """An address is out of range or misaligned for the operation."""


class CacheError(ReproError):
    """A cache was used in a way that violates its contract."""


class AllocationError(ReproError):
    """The physical page allocator could not satisfy a request."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent internal state."""


class SecurityError(ReproError):
    """Base class for security-protocol violations."""


class IntegrityError(SecurityError):
    """A computed MAC or tree hash did not match the stored value.

    Raised on the read path when verification against the Bonsai Merkle
    Tree fails — this is the condition a physical attacker triggers by
    splicing or spoofing off-chip data.
    """


class ReplayError(SecurityError):
    """Stale-but-valid data was detected (replay attack)."""


class CrashConsistencyError(SecurityError):
    """Recovery found persistent metadata inconsistent with the root.

    Distinct from :class:`IntegrityError`: this is raised by the
    *recovery* procedure when the rebuilt tree cannot be reconciled
    with the non-volatile on-chip root register after a crash.
    """


class RecoveryError(ReproError):
    """The recovery procedure itself could not run to completion."""


class FaultInjectionError(RecoveryError):
    """Fault injection was requested on an engine that cannot host it.

    Raised by :class:`~repro.core.recovery.CrashInjector` and the fault
    campaign machinery when pointed at a timing-only engine: without a
    functional persisted image there is nothing for recovery or the
    integrity oracle to examine. Subclasses :class:`RecoveryError` so
    callers that treated the old generic error keep working.
    """


class PowerFailure(ReproError):
    """A simulated power loss fired by the fault-injection scheduler.

    This is control flow, not a defect: the crash scheduler raises it
    from an instrumentation hook to cut the current access short, and
    the fault driver catches it at the replay loop. It records where
    the crash landed so the campaign can attribute the cell.
    """

    def __init__(
        self,
        phase: str = "access",
        occurrence: int = 0,
        access_index: int = -1,
        write_committed: bool = False,
    ) -> None:
        super().__init__(
            f"power failure in phase {phase!r} "
            f"(occurrence {occurrence}, access {access_index})"
        )
        #: Which crash window fired (see repro.faults.triggers).
        self.phase = phase
        #: 1-based count of that phase at the moment of the crash.
        self.occurrence = occurrence
        #: Trace position of the access in flight, -1 if none.
        self.access_index = access_index
        #: True when the in-flight write's persist group had already
        #: drained (the write is durable despite the crash).
        self.write_committed = write_committed
