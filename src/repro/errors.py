"""Exception hierarchy for the AMNT reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single ``except`` clause.
Security-relevant failures (integrity mismatches, replay detection) are
deliberately distinct from configuration or simulation errors: a caller
must never confuse "the simulator was misconfigured" with "the memory
was tampered with".
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent with another."""


class AddressError(ReproError):
    """An address is out of range or misaligned for the operation."""


class CacheError(ReproError):
    """A cache was used in a way that violates its contract."""


class AllocationError(ReproError):
    """The physical page allocator could not satisfy a request."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent internal state."""


class SecurityError(ReproError):
    """Base class for security-protocol violations."""


class IntegrityError(SecurityError):
    """A computed MAC or tree hash did not match the stored value.

    Raised on the read path when verification against the Bonsai Merkle
    Tree fails — this is the condition a physical attacker triggers by
    splicing or spoofing off-chip data.
    """


class ReplayError(SecurityError):
    """Stale-but-valid data was detected (replay attack)."""


class CrashConsistencyError(SecurityError):
    """Recovery found persistent metadata inconsistent with the root.

    Distinct from :class:`IntegrityError`: this is raised by the
    *recovery* procedure when the rebuilt tree cannot be reconciled
    with the non-volatile on-chip root register after a crash.
    """


class RecoveryError(ReproError):
    """The recovery procedure itself could not run to completion."""
