"""Where does the wall-clock go? Phase attribution + cProfile capture.

The perf work in this repository keeps asking the same question — is a
run spending its time generating the trace, walking the cache model,
inside the MEE's metadata walk, or hashing tree nodes? This module
answers it reproducibly: :func:`profile_run` executes one (benchmark,
protocol) cell and attributes wall-clock to the pipeline's phases:

* ``trace_gen`` — synthesizing the access trace (cold, cache cleared);
* ``setup`` — building the machine (protocol, MEE, LLC, OS);
* ``boundary_compile`` — compiling the data side to a boundary-event
  stream (``replay=True`` runs only; identically 0.0 on the direct
  path, kept in the schema so documents stay comparable);
* ``engine`` — the full simulate() (or, under ``replay=True``, the
  simulate_from_stream() replay) call, inside which two sub-phases
  are carved out by instrumenting the live objects:

  * ``mee`` — time inside ``read_block``/``write_block`` (the
    metadata walk, i.e. everything below the LLC) *excluding* the
    functional tree;
  * ``bmt`` — time inside the functional Merkle tree (zero in
    timing-only runs, and near-zero in lazy mode until a
    materialization point);

* ``export`` — serializing the result to its JSON form.

``engine_other`` is the derived remainder (trace iteration, address
translation, LLC model, OS churn). Sub-phase timers use the same
clock as the enclosing phase, so fractions are internally consistent;
when cProfile capture is enabled the *absolute* times inflate by the
profiler's per-call overhead, uniformly enough that the attribution
remains honest — the report records whether it was on.

The artifact is written through :mod:`repro.util.atomicio` like every
other artifact in the repo, and :func:`validate_profile_document`
checks the schema so CI can smoke-test ``repro profile`` output.
"""

from __future__ import annotations

import cProfile
import io
import json
import platform
import pstats
import sys
import time
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.config import SystemConfig, default_config, validate_integrity_mode
from repro.sim.engine import simulate, simulate_from_plan, simulate_from_stream
from repro.sim.machine import build_machine
from repro.sim.parallel import default_workers
from repro.util.atomicio import atomic_write_json
from repro.workloads.registry import (
    TraceSpec,
    effective_cache_limits,
    materialize_trace,
    profile_spec,
    trace_cache_clear,
)

#: Schema tag embedded in every profile artifact; bump on breaking
#: layout changes so downstream readers can dispatch. v2 added the
#: ``boundary_compile`` phase and the ``run.replay`` flag; v3 added
#: ``boundary_plan`` (metadata-plan compilation, ``plan=True`` runs
#: only) and the ``run.plan`` flag; v4 added
#: ``environment.cache_limits`` (the effective trace/stream/plan LRU
#: bounds, settable via ``--cache-limit`` / ``$REPRO_CACHE_LIMIT``).
PROFILE_SCHEMA = "repro.profile/v4"

#: Phases with directly measured timers (``engine_other`` and ``total``
#: are derived). Order is the pipeline order, used for display.
MEASURED_PHASES = (
    "trace_gen",
    "setup",
    "boundary_compile",
    "boundary_plan",
    "engine",
    "mee",
    "bmt",
    "export",
)

#: Methods whose cumulative time defines the ``mee`` sub-phase. The
#: engine hoists these bound methods once per run, so instance-level
#: wrappers installed *before* simulate() capture every call.
#: ``replay_plan_events`` is the plan-driven replay's entire metadata
#: walk (plan runs never enter read_block/write_block).
_MEE_METHODS = (
    "read_block",
    "write_block",
    "read_block_data",
    "replay_plan_events",
)

#: Functional-tree methods charged to the ``bmt`` sub-phase.
_BMT_METHODS = (
    "set_counter",
    "current_counter",
    "persist_counter",
    "persist_node",
    "persist_path",
    "authenticate_or_raise",
    "verify_counter",
    "materialize_all",
)


class _PhaseClock:
    """Accumulates exclusive wall-clock per named phase."""

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}

    def add(self, phase: str, elapsed: float) -> None:
        self.seconds[phase] = self.seconds.get(phase, 0.0) + elapsed

    def measure(self, phase: str):
        """Context manager: time a ``with`` block into ``phase``."""
        return _PhaseSpan(self, phase)


class _PhaseSpan:
    __slots__ = ("_clock", "_phase", "_start")

    def __init__(self, clock: _PhaseClock, phase: str) -> None:
        self._clock = clock
        self._phase = phase

    def __enter__(self) -> "_PhaseSpan":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *_exc) -> None:
        self._clock.add(self._phase, time.perf_counter() - self._start)


def _instrument(obj: Any, methods, clock: _PhaseClock, phase: str) -> None:
    """Shadow ``obj``'s named methods with timing wrappers.

    Wrappers are installed as *instance* attributes, so the class (and
    any other instance) is untouched; the machine is discarded after
    the profiled run, so nothing needs uninstalling. Wrapped methods
    call each other (``persist_path`` → ``self.persist_node`` resolves
    to the instance wrapper), so a shared depth counter ensures only
    the outermost call charges the phase — no double counting.
    """
    perf_counter = time.perf_counter
    depth = [0]
    for name in methods:
        bound = getattr(obj, name, None)
        if bound is None or not callable(bound):
            continue

        def wrapper(*args, __bound=bound, **kwargs):
            if depth[0]:
                return __bound(*args, **kwargs)
            depth[0] = 1
            start = perf_counter()
            try:
                return __bound(*args, **kwargs)
            finally:
                clock.add(phase, perf_counter() - start)
                depth[0] = 0

        setattr(obj, name, wrapper)


def _hotspots(profiler: cProfile.Profile, top: int) -> List[Dict[str, Any]]:
    """Top-``top`` functions by internal time, as plain dicts."""
    stats = pstats.Stats(profiler, stream=io.StringIO())
    rows = []
    for func, (cc, nc, tottime, cumtime, _callers) in stats.stats.items():
        filename, line, name = func
        rows.append(
            {
                "function": f"{Path(filename).name}:{line}({name})",
                "ncalls": nc,
                "primitive_calls": cc,
                "tottime": round(tottime, 6),
                "cumtime": round(cumtime, 6),
            }
        )
    rows.sort(key=lambda row: row["tottime"], reverse=True)
    return rows[:top]


def profile_run(
    benchmark: str = "canneal",
    protocol: str = "amnt",
    accesses: int = 20_000,
    seed: int = 2024,
    suite: str = "parsec",
    functional: bool = False,
    integrity_mode: str = "eager",
    config: Optional[SystemConfig] = None,
    capture_cprofile: bool = True,
    top: int = 25,
    replay: bool = False,
    plan: bool = False,
) -> Dict[str, Any]:
    """Profile one simulation cell; returns the artifact document.

    The run is the same deterministic cell the sweep harness executes
    (same spec, same seed), so its :class:`SimulationResult` numbers
    are directly comparable with sweep output — the profile just says
    where the host CPU time went while producing them.

    With ``replay=True`` the cell runs through the compile-then-replay
    pipeline: ``boundary_compile`` times a cold
    :func:`~repro.sim.replay.compile_boundary_stream` and ``engine``
    times the stream replay into the MEE — so the split shows what a
    sweep's first protocol pays versus every subsequent one.
    ``plan=True`` (requires ``replay``) adds ``boundary_plan``: a cold
    :func:`~repro.sim.plan.compile_metadata_plan` over the stream,
    with the engine phase then timing the plan-driven replay.
    """
    validate_integrity_mode(integrity_mode)
    config = config or default_config()
    clock = _PhaseClock()

    spec: TraceSpec = profile_spec(suite, benchmark, accesses, seed)
    trace_cache_clear()  # charge trace synthesis, not a warm cache hit
    with clock.measure("trace_gen"):
        trace = materialize_trace(spec)

    with clock.measure("setup"):
        machine = build_machine(
            config,
            protocol,
            functional=functional,
            seed=seed,
            integrity_mode=integrity_mode,
        )

    if plan and not replay:
        raise ValueError("plan=True requires replay=True")

    stream = None
    metadata_plan = None
    if replay:
        from repro.core.protocol import protocol_uses_modified_os
        from repro.sim.replay import compile_boundary_stream

        with clock.measure("boundary_compile"):
            stream = compile_boundary_stream(
                trace,
                config,
                seed=seed,
                modified_os=protocol_uses_modified_os(protocol),
            )
        if plan:
            from repro.sim.plan import compile_metadata_plan

            with clock.measure("boundary_plan"):
                metadata_plan = compile_metadata_plan(stream, config)

    _instrument(machine.mee, _MEE_METHODS, clock, "mee")
    tree = getattr(machine.mee, "tree", None)
    if tree is not None:
        _instrument(tree, _BMT_METHODS, clock, "bmt")

    profiler = cProfile.Profile() if capture_cprofile else None
    if profiler is not None:
        profiler.enable()
    try:
        with clock.measure("engine"):
            if metadata_plan is not None:
                result = simulate_from_plan(stream, metadata_plan, machine)
            elif replay:
                result = simulate_from_stream(stream, machine)
            else:
                result = simulate(machine, trace, seed=seed)
    finally:
        if profiler is not None:
            profiler.disable()

    with clock.measure("export"):
        payload = asdict(result)
        json.dumps(payload)  # the serialization cost a real export pays

    phases = {name: clock.seconds.get(name, 0.0) for name in MEASURED_PHASES}
    engine = phases["engine"]
    # The tree is only ever called from inside the MEE's walk, and the
    # walk only from inside the engine: carve the nesting into three
    # disjoint buckets so the engine sub-phases sum to the engine time.
    bmt = min(phases["bmt"], phases["mee"], engine)
    phases["bmt"] = bmt
    phases["mee"] = min(max(phases["mee"] - bmt, 0.0), engine)
    phases["engine_other"] = max(engine - phases["mee"] - bmt, 0.0)
    total = (
        phases["trace_gen"]
        + phases["setup"]
        + phases["boundary_compile"]
        + phases["boundary_plan"]
        + engine
        + phases["export"]
    )
    phases["total"] = total
    phases = {name: round(value, 6) for name, value in phases.items()}
    fractions = {
        name: round(value / total, 4) if total else 0.0
        for name, value in phases.items()
        if name != "total"
    }

    return {
        "schema": PROFILE_SCHEMA,
        "run": {
            "suite": suite,
            "benchmark": benchmark,
            "protocol": protocol,
            "accesses": accesses,
            "seed": seed,
            "functional": functional,
            "integrity_mode": integrity_mode,
            "cprofile": capture_cprofile,
            "replay": replay,
            "plan": plan,
        },
        # Mirrors BENCH_sweep.json's environment block so profiles from
        # different machines are comparable. A profile run is always
        # one in-process cell, hence workers == 1.
        "environment": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "visible_cpus": default_workers(),
            "workers": 1,
            # Effective LRU bounds (trace/stream/plan) — so a profile
            # captured under --cache-limit / $REPRO_CACHE_LIMIT says so
            # (a shrunken cache shifts time into re-materialization).
            "cache_limits": effective_cache_limits(),
        },
        "phases": phases,
        "phase_fractions": fractions,
        "result": {
            "cycles": result.cycles,
            "accesses": result.accesses,
            "llc_hit_rate": round(result.llc_hit_rate, 6),
            "mdcache_hit_rate": round(result.mdcache_hit_rate, 6),
        },
        "hotspots": _hotspots(profiler, top) if profiler is not None else [],
    }


def write_profile_artifact(document: Dict[str, Any], path) -> Path:
    """Atomically write a profile document produced by :func:`profile_run`."""
    return atomic_write_json(Path(path), document)


def validate_profile_document(document: Any) -> List[str]:
    """Check a profile artifact against the v4 schema.

    Returns a list of human-readable problems; an empty list means the
    document is valid. Used by the CI smoke job and the test suite, and
    deliberately dependency-free (no jsonschema in the image).
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return [f"document is {type(document).__name__}, expected object"]
    if document.get("schema") != PROFILE_SCHEMA:
        problems.append(
            f"schema is {document.get('schema')!r}, expected {PROFILE_SCHEMA!r}"
        )

    run = document.get("run")
    if not isinstance(run, dict):
        problems.append("missing 'run' object")
    else:
        for key, kinds in (
            ("benchmark", str),
            ("protocol", str),
            ("accesses", int),
            ("seed", int),
            ("functional", bool),
            ("integrity_mode", str),
            ("replay", bool),
            ("plan", bool),
        ):
            if not isinstance(run.get(key), kinds):
                problems.append(f"run.{key} missing or mistyped")

    environment = document.get("environment")
    if not isinstance(environment, dict):
        problems.append("missing 'environment' object")
    else:
        for key, kinds in (
            ("python", str),
            ("platform", str),
            ("visible_cpus", int),
            ("workers", int),
            ("cache_limits", dict),
        ):
            if not isinstance(environment.get(key), kinds):
                problems.append(f"environment.{key} missing or mistyped")
        cache_limits = environment.get("cache_limits")
        if isinstance(cache_limits, dict):
            for cache in ("trace", "stream", "plan"):
                if not isinstance(cache_limits.get(cache), int):
                    problems.append(
                        f"environment.cache_limits.{cache} missing or mistyped"
                    )

    phases = document.get("phases")
    if not isinstance(phases, dict):
        problems.append("missing 'phases' object")
    else:
        for name in MEASURED_PHASES + ("engine_other", "total"):
            value = phases.get(name)
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(f"phases.{name} missing or negative")

    fractions = document.get("phase_fractions")
    if not isinstance(fractions, dict):
        problems.append("missing 'phase_fractions' object")

    result = document.get("result")
    if not isinstance(result, dict) or not isinstance(
        result.get("cycles"), int
    ):
        problems.append("missing 'result.cycles'")

    hotspots = document.get("hotspots")
    if not isinstance(hotspots, list):
        problems.append("missing 'hotspots' list")
    else:
        for i, row in enumerate(hotspots):
            if not isinstance(row, dict) or not isinstance(
                row.get("function"), str
            ):
                problems.append(f"hotspots[{i}] malformed")
                break
    return problems


def format_profile(document: Dict[str, Any], top: int = 10) -> str:
    """Render a profile document as the CLI's human-readable summary."""
    run = document["run"]
    lines = [
        f"profile: {run['suite']}/{run['benchmark']} under {run['protocol']}"
        f"  ({run['accesses']} accesses, seed {run['seed']}, "
        f"functional={run['functional']}, mode={run['integrity_mode']}, "
        f"replay={run.get('replay', False)}, plan={run.get('plan', False)})",
    ]
    env = document.get("environment")
    if env:
        lines.append(
            f"environment: python {env['python']} on {env['platform']} "
            f"({env['visible_cpus']} visible cpu(s), "
            f"{env['workers']} worker(s))"
        )
    lines.extend(["", "phase attribution (seconds, fraction of total):"])
    phases = document["phases"]
    fractions = document["phase_fractions"]
    order = (
        "trace_gen",
        "setup",
        "boundary_compile",
        "boundary_plan",
        "engine",
        "export",
    )
    for name in order:
        if name not in phases:  # tolerate pre-v3 documents
            continue
        lines.append(
            f"  {name:<16s} {phases[name]:>9.4f}s  {fractions[name]:>6.1%}"
        )
        if name == "engine":
            for sub in ("mee", "bmt", "engine_other"):
                lines.append(
                    f"    {sub:<14s} {phases[sub]:>9.4f}s  "
                    f"{fractions[sub]:>6.1%}"
                )
    lines.append(f"  {'total':<16s} {phases['total']:>9.4f}s")
    hotspots = document.get("hotspots") or []
    if hotspots:
        lines.append("")
        lines.append(f"top {min(top, len(hotspots))} functions by self time:")
        for row in hotspots[:top]:
            lines.append(
                f"  {row['tottime']:>8.4f}s  {row['ncalls']:>9d}x  "
                f"{row['function']}"
            )
    return "\n".join(lines)
