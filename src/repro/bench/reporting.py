"""Plain-text table/series rendering for benchmark output.

The paper's figures are bar charts and its tables are small grids; the
harness reproduces both as aligned monospace tables so `pytest
benchmarks/ -s` output can be compared against the paper side by side.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Union

Number = Union[int, float]
Cell = Union[str, Number]


def _fmt_cell(value: Cell, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Cell]],
    columns: Sequence[str] = (),
    title: str = "",
    precision: int = 3,
) -> str:
    """Render dict-rows as an aligned monospace table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    columns = list(columns) if columns else list(rows[0].keys())
    rendered: List[List[str]] = [
        [_fmt_cell(row.get(column, ""), precision) for column in columns]
        for row in rows
    ]
    widths = [
        max(len(column), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(column.ljust(widths[i]) for i, column in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for line in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
    return "\n".join(lines)


def format_matrix(
    counts: Mapping[str, Mapping[str, int]],
    row_label: str,
    title: str = "",
) -> str:
    """Render nested ``{row: {column: count}}`` tallies as a table with
    a stable column order and zeros filled in — the shape of the fault
    campaign's per-protocol / per-phase verdict breakdowns."""
    columns = sorted({c for row in counts.values() for c in row})
    rows: List[Dict[str, Cell]] = [
        {row_label: name, **{c: row.get(c, 0) for c in columns}}
        for name, row in sorted(counts.items())
    ]
    return format_table(rows, title=title)


def derive_hit_ratios(counters: Mapping[str, Number]) -> Dict[str, float]:
    """Hit ratios derivable from ``X.hits`` / ``X.misses`` counter pairs.

    Any subsystem that publishes both counters (the trace, stream, and
    plan LRU caches; any cache stats export) gets an ``X.hit_ratio``
    row for free — the number a human actually wants from the raw pair.
    Pairs that never fired (hits + misses == 0) are omitted rather than
    reported as a misleading 0.0.
    """
    ratios: Dict[str, float] = {}
    for name, hits in counters.items():
        if not name.endswith(".hits"):
            continue
        base = name[: -len(".hits")]
        misses = counters.get(base + ".misses")
        if misses is None:
            continue
        total = hits + misses
        if total:
            ratios[base + ".hit_ratio"] = hits / total
    return ratios


def format_metrics(document: Mapping, source: str = "") -> str:
    """Render a ``repro.metrics/v1`` document as snapshot tables.

    One table per metric kind that has data (counters, gauges,
    histograms), plus derived hit-ratio rows for every
    ``X.hits``/``X.misses`` counter pair and a one-line span summary —
    the ``repro metrics`` subcommand's output.
    """
    metrics = document.get("metrics", {})
    sections: List[str] = []
    title_suffix = f" — {source}" if source else ""
    counters = metrics.get("counters", {})
    if counters:
        rows: List[Mapping[str, Cell]] = [
            {"counter": name, "value": counters[name]}
            for name in sorted(counters)
        ]
        sections.append(format_table(rows, title=f"counters{title_suffix}"))
        ratios = derive_hit_ratios(counters)
        if ratios:
            ratio_rows: List[Mapping[str, Cell]] = [
                {"cache": name, "hit_ratio": ratios[name]}
                for name in sorted(ratios)
            ]
            sections.append(
                format_table(
                    ratio_rows, title=f"derived hit ratios{title_suffix}"
                )
            )
    gauges = metrics.get("gauges", {})
    if gauges:
        rows = [
            {"gauge": name, "value": gauges[name]} for name in sorted(gauges)
        ]
        sections.append(format_table(rows, title=f"gauges{title_suffix}"))
    histograms = metrics.get("histograms", {})
    if histograms:
        rows = []
        for name in sorted(histograms):
            hist = histograms[name]
            count = hist.get("count", 0)
            total = hist.get("sum", 0.0)
            rows.append(
                {
                    "histogram": name,
                    "count": count,
                    "sum": round(float(total), 4),
                    "mean": round(total / count, 4) if count else 0.0,
                }
            )
        sections.append(
            format_table(rows, title=f"histograms{title_suffix}")
        )
    spans = document.get("spans") or []
    if spans:
        total_s = sum(float(span.get("duration_s", 0.0)) for span in spans)
        sections.append(
            f"{len(spans)} span(s) recorded, {total_s:.4f}s total"
        )
    if not sections:
        return "(no metrics recorded)"
    return "\n\n".join(sections)


def format_series(
    series: Mapping[str, Mapping[str, Number]],
    title: str = "",
    precision: int = 3,
) -> str:
    """Render {row_label: {column_label: value}} as a grid (one row per
    outer key) — the shape of every normalized-cycles figure."""
    rows = []
    for label, values in series.items():
        row: Dict[str, Cell] = {"workload": label}
        row.update(values)
        rows.append(row)
    return format_table(rows, title=title, precision=precision)
