"""Plain-text table/series rendering for benchmark output.

The paper's figures are bar charts and its tables are small grids; the
harness reproduces both as aligned monospace tables so `pytest
benchmarks/ -s` output can be compared against the paper side by side.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Union

Number = Union[int, float]
Cell = Union[str, Number]


def _fmt_cell(value: Cell, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Cell]],
    columns: Sequence[str] = (),
    title: str = "",
    precision: int = 3,
) -> str:
    """Render dict-rows as an aligned monospace table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    columns = list(columns) if columns else list(rows[0].keys())
    rendered: List[List[str]] = [
        [_fmt_cell(row.get(column, ""), precision) for column in columns]
        for row in rows
    ]
    widths = [
        max(len(column), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(column.ljust(widths[i]) for i, column in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for line in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
    return "\n".join(lines)


def format_matrix(
    counts: Mapping[str, Mapping[str, int]],
    row_label: str,
    title: str = "",
) -> str:
    """Render nested ``{row: {column: count}}`` tallies as a table with
    a stable column order and zeros filled in — the shape of the fault
    campaign's per-protocol / per-phase verdict breakdowns."""
    columns = sorted({c for row in counts.values() for c in row})
    rows: List[Dict[str, Cell]] = [
        {row_label: name, **{c: row.get(c, 0) for c in columns}}
        for name, row in sorted(counts.items())
    ]
    return format_table(rows, title=title)


def format_series(
    series: Mapping[str, Mapping[str, Number]],
    title: str = "",
    precision: int = 3,
) -> str:
    """Render {row_label: {column_label: value}} as a grid (one row per
    outer key) — the shape of every normalized-cycles figure."""
    rows = []
    for label, values in series.items():
        row: Dict[str, Cell] = {"workload": label}
        row.update(values)
        rows.append(row)
    return format_table(rows, title=title, precision=precision)
