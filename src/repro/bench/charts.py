"""Terminal bar charts for the figure harnesses.

The paper's figures are grouped bar charts; the harness's aligned
tables carry the numbers, and these renderers carry the *shape* — a
reader eyeballing `pytest benchmarks/ -s` output can see who wins the
way they would in the paper. Pure text, no plotting dependency.

Two renderers:

* :func:`bar_chart` — one bar per label, scaled to a shared axis, with
  an optional reference marker (the ``1.0`` baseline of normalized
  figures);
* :func:`grouped_bar_chart` — the Figure 4/5/8 shape: one group per
  workload, one bar per protocol within it.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

Number = float

FULL = "█"
PARTIAL = "▌"


def _render_bar(value: Number, scale: Number, width: int) -> str:
    if scale <= 0:
        return ""
    cells = value / scale * width
    whole = int(cells)
    bar = FULL * whole
    if cells - whole >= 0.5 and whole < width:
        bar += PARTIAL
    return bar


def bar_chart(
    values: Mapping[str, Number],
    title: str = "",
    width: int = 40,
    reference: Optional[Number] = None,
    precision: int = 3,
) -> str:
    """Render ``{label: value}`` as horizontal bars on one axis.

    ``reference`` draws a marker column (e.g. the normalized-cycles
    baseline at 1.0) so above/below baseline is visible at a glance.
    """
    if not values:
        return f"{title}\n(empty)" if title else "(empty)"
    scale = max(values.values())
    if reference is not None:
        scale = max(scale, reference)
    label_width = max(len(label) for label in values)
    lines = [title] if title else []
    marker = (
        min(width - 1, int(reference / scale * width))
        if reference and scale > 0
        else None
    )
    for label, value in values.items():
        bar = _render_bar(value, scale, width)
        row = list(bar.ljust(width))
        if marker is not None and 0 <= marker < width:
            if row[marker] == " ":
                row[marker] = "|"
        lines.append(
            f"{label.ljust(label_width)}  {''.join(row)} {value:.{precision}f}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    series: Mapping[str, Mapping[str, Number]],
    members: Optional[Sequence[str]] = None,
    title: str = "",
    width: int = 40,
    reference: Optional[Number] = None,
    precision: int = 3,
) -> str:
    """Render ``{group: {member: value}}`` as grouped bars.

    All groups share one axis so cross-group comparison works, exactly
    like the paper's figures. ``members`` fixes the bar order (default:
    the first group's key order).
    """
    if not series:
        return f"{title}\n(empty)" if title else "(empty)"
    first_group = next(iter(series.values()))
    members = list(members) if members else list(first_group)
    scale = max(
        group.get(member, 0.0)
        for group in series.values()
        for member in members
    )
    if reference is not None:
        scale = max(scale, reference)
    member_width = max(len(member) for member in members)
    lines = [title] if title else []
    marker = (
        min(width - 1, int(reference / scale * width))
        if reference is not None and scale > 0
        else None
    )
    for group_label, group in series.items():
        lines.append(f"{group_label}:")
        for member in members:
            value = group.get(member, 0.0)
            row = list(_render_bar(value, scale, width).ljust(width))
            if marker is not None and 0 <= marker < width:
                if row[marker] == " ":
                    row[marker] = "|"
            lines.append(
                f"  {member.ljust(member_width)}  {''.join(row)} "
                f"{value:.{precision}f}"
            )
    return "\n".join(lines)
