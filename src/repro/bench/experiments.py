"""Experiment definitions: one function per table/figure of the paper.

Every function is deterministic in its (seed, size) arguments and
returns plain data structures the harnesses print and assert on. Trace
lengths default to laptop-scale values; the statistical structure of
the workloads is length-invariant, so growing them sharpens the numbers
without changing the shapes (see DESIGN.md's substitution notes).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SystemConfig, default_config
from repro.core.area import AreaOverhead, protocol_area_table
from repro.core.recovery import RecoveryAnalysis
from repro.sim.machine import build_machine
from repro.sim.parallel import ParallelSweepRunner, SweepCell
from repro.sim.results import SimulationResult, normalized_cycles
from repro.sim.runner import FIGURE_PROTOCOLS
from repro.util.rng import Seed
from repro.workloads.multiprogram import multiprogram_trace, pair_label
from repro.workloads.parsec import MULTIPROGRAM_PAIRS, parsec_names, parsec_profile
from repro.workloads.registry import multiprogram_spec, profile_spec
from repro.workloads.spec import spec_names, spec_profile
from repro.workloads.synthetic import generate_trace

#: Scatter aging used by the multiprogram methodology: ~40 max-order
#: chunks (160 MB) so the free pool straddles two level-3 subtree
#: regions unevenly — interleaved co-runners then split across regions
#: (Figure 3b's effect) without the split being a perfect coin flip.
MULTIPROGRAM_SCATTER_CHUNKS = 40

#: Single-program protocol lineup of Figure 4 (plus the baseline).
FIG4_PROTOCOLS = ("volatile", "leaf", "strict", "anubis", "bmf", "amnt", "amnt++")


# ---------------------------------------------------------------------------
# Figure 3 — memory accesses per address, single vs multiprogram
# ---------------------------------------------------------------------------

def fig3_hotness(
    accesses: int = 60_000,
    seed: Seed = 2024,
    config: Optional[SystemConfig] = None,
) -> Dict[str, Dict[str, float]]:
    """Accesses-per-physical-region concentration, lbm alone (Fig. 3a)
    versus perlbench+lbm co-running (Fig. 3b).

    Returns, per scenario, the share of physical-memory accesses landing
    in the most-accessed level-3 subtree region, the number of regions
    needed to cover 90 % of accesses, and the count of touched regions —
    the quantities the paper's scatter plots convey visually.
    """
    config = config or default_config()

    def region_histogram(trace, machine) -> Dict[int, int]:
        region_bytes = machine.mee.geometry.region_bytes(
            config.amnt.subtree_level
        )
        histogram: Dict[int, int] = {}
        for access in trace:
            paddr = machine.mm.translate(access.pid, access.vaddr)
            region = paddr // region_bytes
            histogram[region] = histogram.get(region, 0) + 1
        return histogram

    def summarize(histogram: Dict[int, int]) -> Dict[str, float]:
        total = sum(histogram.values())
        shares = sorted(histogram.values(), reverse=True)
        top_share = shares[0] / total
        covered, needed = 0, 0
        for count in shares:
            covered += count
            needed += 1
            if covered >= 0.9 * total:
                break
        return {
            "top_region_share": top_share,
            "regions_for_90pct": float(needed),
            "touched_regions": float(len(shares)),
        }

    single_trace = generate_trace(
        spec_profile("lbm").scaled(accesses=accesses), seed=seed
    )
    single_machine = build_machine(config, "volatile", seed=seed)
    multi_trace = multiprogram_trace(
        [spec_profile("perlbench"), spec_profile("lbm")],
        seed=seed,
        accesses_each=accesses,
    )
    multi_machine = build_machine(
        config,
        "volatile",
        seed=seed,
        scatter_span_chunks=MULTIPROGRAM_SCATTER_CHUNKS,
    )
    return {
        "lbm (single)": summarize(region_histogram(single_trace, single_machine)),
        "perlbench+lbm (multi)": summarize(
            region_histogram(multi_trace, multi_machine)
        ),
    }


# ---------------------------------------------------------------------------
# Figure 4 — single-program PARSEC normalized cycles
# ---------------------------------------------------------------------------

def fig4_single_program(
    benchmarks: Optional[Sequence[str]] = None,
    protocols: Sequence[str] = FIG4_PROTOCOLS,
    accesses: int = 60_000,
    seed: Seed = 2024,
    config: Optional[SystemConfig] = None,
    workers: int = 1,
) -> Dict[str, Dict[str, float]]:
    """Normalized cycles per PARSEC benchmark per protocol.

    ``workers > 1`` fans every (benchmark, protocol) cell out over a
    process pool at once — not one benchmark at a time — so the grid
    saturates the pool even when benchmarks differ wildly in cost.
    """
    config = config or default_config()
    benchmarks = list(benchmarks) if benchmarks else parsec_names()
    specs = {
        name: profile_spec("parsec", name, accesses, seed)
        for name in benchmarks
    }
    return _grid_normalized(specs, config, protocols, seed, workers)


def _grid_normalized(
    specs: Dict[str, "object"],
    config: SystemConfig,
    protocols: Sequence[str],
    seed: Seed,
    workers: int,
    scatter_span_chunks: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Run a full workload × protocol grid and normalize per workload."""
    protocols = tuple(protocols)
    cells = [
        SweepCell(
            protocol=protocol,
            trace=spec,
            seed=seed,
            scatter_span_chunks=scatter_span_chunks,
        )
        for spec in specs.values()
        for protocol in protocols
    ]
    results = ParallelSweepRunner(workers=workers).run(cells, config)
    figure: Dict[str, Dict[str, float]] = {}
    for row, label in enumerate(specs):
        row_results = dict(
            zip(protocols, results[row * len(protocols):(row + 1) * len(protocols)])
        )
        figure[label] = normalized_cycles(row_results)
    return figure


# ---------------------------------------------------------------------------
# Figure 5 — multiprogram PARSEC normalized cycles
# ---------------------------------------------------------------------------

def fig5_multiprogram(
    pairs: Sequence[Tuple[str, str]] = tuple(MULTIPROGRAM_PAIRS),
    protocols: Sequence[str] = FIG4_PROTOCOLS,
    accesses_each: int = 40_000,
    seed: Seed = 2024,
    config: Optional[SystemConfig] = None,
    workers: int = 1,
) -> Dict[str, Dict[str, float]]:
    """Normalized cycles for the paper's co-running pairs."""
    config = config or default_config()
    specs = {
        pair_label(pair): multiprogram_spec("parsec", pair, accesses_each, seed)
        for pair in pairs
    }
    return _grid_normalized(
        specs,
        config,
        protocols,
        seed,
        workers,
        scatter_span_chunks=MULTIPROGRAM_SCATTER_CHUNKS,
    )


# ---------------------------------------------------------------------------
# Figures 6 & 7 — subtree-level sensitivity (cycles and hit rates)
# ---------------------------------------------------------------------------

def fig6_fig7_level_sweep(
    pairs: Sequence[Tuple[str, str]] = tuple(MULTIPROGRAM_PAIRS),
    levels: Sequence[int] = (2, 3, 4, 5, 6, 7),
    accesses_each: int = 40_000,
    seed: Seed = 2024,
    config: Optional[SystemConfig] = None,
    workers: int = 1,
) -> Dict[str, Dict[str, Dict[int, float]]]:
    """AMNT vs AMNT++ across subtree root levels.

    Returns ``{pair: {"amnt_cycles": {level: norm}, "amnt++_cycles": ...,
    "amnt_hitrate": {level: rate}, "amnt++_hitrate": ...}}`` — Figure 6
    is the *_cycles series, Figure 7 the *_hitrate series.

    Every (pair, level, protocol) run is one sweep cell with its own
    level-specific config override, so the whole sensitivity grid fans
    out at once when ``workers > 1``.
    """
    base_config = config or default_config()
    level_protocols = ("volatile", "amnt", "amnt++")
    cells = []
    for pair in pairs:
        spec = multiprogram_spec("parsec", pair, accesses_each, seed)
        for level in levels:
            level_config = base_config.with_amnt(subtree_level=level)
            for protocol in level_protocols:
                cells.append(
                    SweepCell(
                        protocol=protocol,
                        trace=spec,
                        seed=seed,
                        scatter_span_chunks=MULTIPROGRAM_SCATTER_CHUNKS,
                        config=level_config,
                    )
                )
    results = iter(ParallelSweepRunner(workers=workers).run(cells, base_config))

    sweep: Dict[str, Dict[str, Dict[int, float]]] = {}
    for pair in pairs:
        label = pair_label(pair)
        sweep[label] = {
            "amnt_cycles": {},
            "amnt++_cycles": {},
            "amnt_hitrate": {},
            "amnt++_hitrate": {},
        }
        for level in levels:
            baseline = next(results)
            for protocol in ("amnt", "amnt++"):
                result = next(results)
                sweep[label][f"{protocol}_cycles"][level] = (
                    result.cycles / baseline.cycles
                )
                hit_rate = result.subtree_hit_rate()
                sweep[label][f"{protocol}_hitrate"][level] = (
                    hit_rate if hit_rate is not None else 1.0
                )
    return sweep


# ---------------------------------------------------------------------------
# Figure 8 — SPEC CPU 2017 normalized cycles
# ---------------------------------------------------------------------------

def fig8_spec(
    benchmarks: Optional[Sequence[str]] = None,
    protocols: Sequence[str] = FIGURE_PROTOCOLS,
    accesses: int = 60_000,
    seed: Seed = 2024,
    config: Optional[SystemConfig] = None,
    workers: int = 1,
) -> Dict[str, Dict[str, float]]:
    """Normalized cycles per SPEC benchmark per protocol."""
    config = config or default_config()
    benchmarks = list(benchmarks) if benchmarks else spec_names()
    specs = {
        name: profile_spec("spec", name, accesses, seed)
        for name in benchmarks
    }
    return _grid_normalized(specs, config, protocols, seed, workers)


# ---------------------------------------------------------------------------
# Table 2 — cost of the modified operating system
# ---------------------------------------------------------------------------

def table2_os_cost(
    pairs: Sequence[Tuple[str, str]] = tuple(MULTIPROGRAM_PAIRS),
    accesses_each: int = 40_000,
    seed: Seed = 2024,
    config: Optional[SystemConfig] = None,
    workers: int = 1,
) -> List[Dict[str, object]]:
    """Modified-OS impact: cycles ratio and instruction-count ratio.

    Runs each multiprogram workload under AMNT on the stock OS and on
    the AMNT++-modified OS; columns match the paper's Table 2.
    """
    config = config or default_config()
    protocols = ("amnt", "amnt++")
    cells = [
        SweepCell(
            protocol=protocol,
            trace=multiprogram_spec("parsec", pair, accesses_each, seed),
            seed=seed,
            scatter_span_chunks=MULTIPROGRAM_SCATTER_CHUNKS,
        )
        for pair in pairs
        for protocol in protocols
    ]
    results = ParallelSweepRunner(workers=workers).run(cells, config)
    rows: List[Dict[str, object]] = []
    for row, pair in enumerate(pairs):
        runs: Dict[str, SimulationResult] = dict(
            zip(protocols, results[row * len(protocols):(row + 1) * len(protocols)])
        )
        rows.append(
            {
                "workload": pair_label(pair),
                "normalized_performance": (
                    runs["amnt++"].cycles / runs["amnt"].cycles
                ),
                "instruction_overhead": (
                    runs["amnt++"].instructions / runs["amnt"].instructions
                ),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Table 3 — hardware overheads
# ---------------------------------------------------------------------------

def table3_area(
    config: Optional[SystemConfig] = None,
) -> List[AreaOverhead]:
    """Additional on-chip/in-memory hardware per protocol."""
    return protocol_area_table(config or default_config())


# ---------------------------------------------------------------------------
# Table 4 — recovery times versus memory size
# ---------------------------------------------------------------------------

def table4_recovery(
    config: Optional[SystemConfig] = None,
) -> List[Dict[str, object]]:
    """Recovery milliseconds for 2/16/128 TB memories per protocol."""
    analysis = RecoveryAnalysis(config or default_config())
    return analysis.table4()
