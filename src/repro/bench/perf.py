"""Performance benchmark: the reference sweep and its trajectory.

``repro perf`` times one fixed, deterministic sweep grid three ways —
serial without the trace cache (every cell regenerates its trace, the
pre-optimization behaviour), serial with the shared cache, and parallel
over the process pool — and writes the measurements to
``BENCH_sweep.json``. Committing that file after perf-relevant PRs
gives the repository a wall-clock trajectory the same way the figure
harnesses give it a numbers trajectory.

The grid is real work (three PARSEC profiles spanning cache-friendly to
pointer-chasing, times the full Figure-4 protocol lineup), so the
timings move when — and only when — the simulator's hot paths move.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.config import SystemConfig, default_config
from repro.sim.parallel import (
    ParallelSweepRunner,
    SweepCell,
    default_workers,
    run_cell,
)
from repro.sim.runner import FIGURE_PROTOCOLS
from repro.util.rng import Seed
from repro.workloads.registry import (
    materialize_trace,
    profile_spec,
    trace_cache_clear,
)

#: Cache-resident, balanced, and pointer-chasing — three distinct
#: hot-path mixes so the reference number is not hostage to one regime.
REFERENCE_BENCHMARKS = ("blackscholes", "bodytrack", "canneal")
REFERENCE_ACCESSES = 20_000
REFERENCE_SEED = 2024


def reference_cells(
    benchmarks: Sequence[str] = REFERENCE_BENCHMARKS,
    protocols: Sequence[str] = FIGURE_PROTOCOLS,
    accesses: int = REFERENCE_ACCESSES,
    seed: Seed = REFERENCE_SEED,
) -> List[SweepCell]:
    """The reference grid: every (benchmark, protocol) cell."""
    return [
        SweepCell(
            protocol=protocol,
            trace=profile_spec("parsec", name, accesses, seed),
            seed=seed,
        )
        for name in benchmarks
        for protocol in protocols
    ]


def _time_serial_uncached(
    cells: Sequence[SweepCell], config: SystemConfig
) -> float:
    """Serial run that regenerates the trace for every cell — the
    pre-trace-cache behaviour, kept measurable so BENCH_sweep.json
    records what the cache is worth."""
    start = time.perf_counter()
    for cell in cells:
        trace_cache_clear()
        run_cell(cell, config)
    elapsed = time.perf_counter() - start
    trace_cache_clear()
    return elapsed


def _time_serial(cells: Sequence[SweepCell], config: SystemConfig) -> float:
    trace_cache_clear()
    start = time.perf_counter()
    for cell in cells:
        run_cell(cell, config)
    elapsed = time.perf_counter() - start
    return elapsed


def _time_parallel(
    cells: Sequence[SweepCell], config: SystemConfig, workers: int
) -> float:
    runner = ParallelSweepRunner(workers=workers)
    start = time.perf_counter()
    runner.run(cells, config)
    return time.perf_counter() - start


def run_reference_bench(
    workers: Optional[int] = None,
    benchmarks: Sequence[str] = REFERENCE_BENCHMARKS,
    protocols: Sequence[str] = FIGURE_PROTOCOLS,
    accesses: int = REFERENCE_ACCESSES,
    seed: Seed = REFERENCE_SEED,
    output: Optional[Path] = Path("BENCH_sweep.json"),
    include_uncached: bool = True,
) -> Dict[str, object]:
    """Time the reference sweep; optionally write ``BENCH_sweep.json``.

    Returns the report dict. ``workers=None`` auto-sizes to the visible
    core count. ``include_uncached=False`` skips the slowest leg (CI
    smoke runs on tiny grids don't need it).
    """
    config = default_config()
    workers = default_workers() if workers is None else max(1, workers)
    cells = reference_cells(benchmarks, protocols, accesses, seed)

    # Warm what should be warm: interpreter, imports, one materialized
    # trace — so the three legs differ only in the strategy under test.
    materialize_trace(cells[0].trace)

    serial_uncached = (
        _time_serial_uncached(cells, config) if include_uncached else None
    )
    serial_seconds = _time_serial(cells, config)
    parallel_seconds = _time_parallel(cells, config, workers)

    report: Dict[str, object] = {
        "grid": {
            "benchmarks": list(benchmarks),
            "protocols": list(protocols),
            "accesses_per_trace": accesses,
            "seed": seed,
            "cells": len(cells),
        },
        "environment": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "visible_cpus": default_workers(),
            "workers": workers,
        },
        "timings_seconds": {
            "serial_uncached": serial_uncached,
            "serial": serial_seconds,
            "parallel": parallel_seconds,
        },
        "speedups": {
            "trace_cache": (
                serial_uncached / serial_seconds
                if serial_uncached is not None and serial_seconds > 0
                else None
            ),
            "parallel_vs_serial": (
                serial_seconds / parallel_seconds if parallel_seconds > 0 else None
            ),
        },
        "throughput": {
            "serial_cells_per_second": (
                len(cells) / serial_seconds if serial_seconds > 0 else None
            ),
            "parallel_cells_per_second": (
                len(cells) / parallel_seconds if parallel_seconds > 0 else None
            ),
        },
    }
    if output is not None:
        Path(output).write_text(json.dumps(report, indent=2) + "\n")
    return report


def format_report(report: Dict[str, object]) -> str:
    """Human-readable rendering of a perf report."""
    grid = report["grid"]
    env = report["environment"]
    timings = report["timings_seconds"]
    speedups = report["speedups"]
    lines = [
        f"reference sweep: {grid['cells']} cells "
        f"({len(grid['benchmarks'])} benchmarks x "
        f"{len(grid['protocols'])} protocols, "
        f"{grid['accesses_per_trace']} accesses each)",
        f"python {env['python']} on {env['platform']} "
        f"({env['visible_cpus']} visible cpu(s), {env['workers']} workers)",
    ]
    if timings["serial_uncached"] is not None:
        lines.append(
            f"serial, no trace cache : {timings['serial_uncached']:8.2f} s"
        )
    lines.append(f"serial, trace cache    : {timings['serial']:8.2f} s")
    lines.append(f"parallel               : {timings['parallel']:8.2f} s")
    if speedups["trace_cache"] is not None:
        lines.append(f"trace-cache speedup    : {speedups['trace_cache']:8.2f}x")
    if speedups["parallel_vs_serial"] is not None:
        lines.append(
            f"parallel speedup       : {speedups['parallel_vs_serial']:8.2f}x"
        )
    return "\n".join(lines)
