"""Performance benchmark: the reference sweep and its trajectory.

``repro perf`` times one fixed, deterministic sweep grid three ways —
serial without the trace cache (every cell regenerates its trace, the
pre-optimization behaviour), serial with the shared cache, and parallel
over the process pool — and writes the measurements to
``BENCH_sweep.json``. Committing that file after perf-relevant PRs
gives the repository a wall-clock trajectory the same way the figure
harnesses give it a numbers trajectory.

The grid is real work (three PARSEC profiles spanning cache-friendly to
pointer-chasing, times the full Figure-4 protocol lineup), so the
timings move when — and only when — the simulator's hot paths move.

Legs are *interleaved best-of-N*: each round runs every leg once, in
order, and the reported figure per leg is the minimum across rounds
(raw samples are recorded alongside). Back-to-back single-shot legs
measured different machine states — the first leg paid interpreter and
allocator warm-up that later legs inherited for free, which once drove
the recorded trace-cache "speedup" below 1.0 (0.897 in an earlier
BENCH_sweep.json). Interleaving gives every leg the same mix of warm
and cold rounds, and best-of-N is the standard low-noise estimator for
deterministic workloads.
"""

from __future__ import annotations

import platform
import sys
import time
from datetime import datetime, timezone
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro import telemetry
from repro.config import SystemConfig, default_config
from repro.sim.parallel import (
    ParallelSweepRunner,
    SweepCell,
    _pool_entry,
    default_workers,
    precompile_plans,
    precompile_streams,
    run_cell,
    validate_cells,
)
from repro.sim.results import SimulationResult
from repro.sim.runner import FIGURE_PROTOCOLS
from repro.sim.supervisor import (
    CellFailure,
    RunJournal,
    SupervisedRunner,
    SupervisionPolicy,
    build_manifest,
    split_outcomes,
)
from repro.util.atomicio import (
    atomic_append_jsonl,
    atomic_write_json,
    read_jsonl,
)
from repro.util.rng import Seed
from repro.workloads.registry import (
    boundary_stream_cache_clear,
    materialize_trace,
    metadata_plan_cache_clear,
    profile_spec,
    trace_cache_clear,
)

#: Deterministic per-cell results artifact of a resilient sweep.
SWEEP_RESULTS_NAME = "SWEEP_results.json"

#: Append-only trend log: one JSONL entry per ``repro perf`` run.
BENCH_HISTORY_NAME = "BENCH_history.jsonl"

#: Cache-resident, balanced, and pointer-chasing — three distinct
#: hot-path mixes so the reference number is not hostage to one regime.
REFERENCE_BENCHMARKS = ("blackscholes", "bodytrack", "canneal")
REFERENCE_ACCESSES = 20_000
REFERENCE_SEED = 2024

#: Interleaved rounds per leg; the reported time is the per-leg best.
REFERENCE_ROUNDS = 3

#: Acceptance budget for telemetry: the telemetry-enabled serial leg
#: must stay within this fraction of the telemetry-disabled one.
TELEMETRY_OVERHEAD_BUDGET = 0.05


def reference_cells(
    benchmarks: Sequence[str] = REFERENCE_BENCHMARKS,
    protocols: Sequence[str] = FIGURE_PROTOCOLS,
    accesses: int = REFERENCE_ACCESSES,
    seed: Seed = REFERENCE_SEED,
) -> List[SweepCell]:
    """The reference grid: every (benchmark, protocol) cell."""
    return [
        SweepCell(
            protocol=protocol,
            trace=profile_spec("parsec", name, accesses, seed),
            seed=seed,
        )
        for name in benchmarks
        for protocol in protocols
    ]


def _time_serial_uncached(
    cells: Sequence[SweepCell], config: SystemConfig
) -> float:
    """Serial run that regenerates the trace for every cell — the
    pre-trace-cache behaviour, kept measurable so BENCH_sweep.json
    records what the cache is worth."""
    start = time.perf_counter()
    for cell in cells:
        trace_cache_clear()
        run_cell(cell, config)
    elapsed = time.perf_counter() - start
    trace_cache_clear()
    return elapsed


def _time_serial(cells: Sequence[SweepCell], config: SystemConfig) -> float:
    trace_cache_clear()
    start = time.perf_counter()
    for cell in cells:
        run_cell(cell, config)
    elapsed = time.perf_counter() - start
    return elapsed


def _time_serial_replay(
    cells: Sequence[SweepCell], config: SystemConfig
) -> float:
    """Serial run through the compile-then-replay path: the data-side
    hierarchy is walked once per (trace, OS variant) and the compiled
    boundary stream is replayed into every protocol. The stream cache
    is cleared first so the leg pays its own compile cost — the number
    is honest about what a cold grid costs, not just the replays.

    ``plan=False`` pins the leg to the *unplanned* replay loop so the
    trajectory stays comparable with pre-plan BENCH_sweep.json entries
    and the planned leg below has an honest denominator."""
    replay_cells = [replace(cell, replay=True, plan=False) for cell in cells]
    trace_cache_clear()
    boundary_stream_cache_clear()
    start = time.perf_counter()
    precompile_streams(replay_cells, config)
    for cell in replay_cells:
        run_cell(cell, config)
    elapsed = time.perf_counter() - start
    boundary_stream_cache_clear()
    return elapsed


def _time_serial_plan(
    cells: Sequence[SweepCell], config: SystemConfig
) -> float:
    """The replay leg with metadata-plan compilation on top: boundary
    streams *and* per-event metadata plans are compiled cold inside the
    timed region (stream and plan caches cleared first), then every
    cell replays through :func:`repro.sim.engine.simulate_from_plan`.
    The delta against ``serial_replay`` prices exactly what the plan
    compiler buys — pre-resolved metadata addresses, interned cache
    keys, premixed set indices — net of its own compile cost."""
    plan_cells = [replace(cell, replay=True, plan=True) for cell in cells]
    trace_cache_clear()
    boundary_stream_cache_clear()
    metadata_plan_cache_clear()
    start = time.perf_counter()
    precompile_streams(plan_cells, config)
    precompile_plans(plan_cells, config)
    for cell in plan_cells:
        run_cell(cell, config)
    elapsed = time.perf_counter() - start
    boundary_stream_cache_clear()
    metadata_plan_cache_clear()
    return elapsed


def _time_store_cold(
    cells: Sequence[SweepCell], config: SystemConfig, holder: Dict[str, object]
) -> float:
    """Serial run through a *fresh* result store: every cell misses,
    computes, and is written back. The delta against ``serial`` prices
    the store's write path; the populated store is left in ``holder``
    for the warm leg of the same round, so warm always replays exactly
    what cold just computed."""
    import shutil
    import tempfile

    from repro.store import ResultStore

    previous = holder.get("dir")
    if previous:
        shutil.rmtree(previous, ignore_errors=True)
    holder["dir"] = tempfile.mkdtemp(prefix="repro-store-bench-")
    store = ResultStore(holder["dir"])
    trace_cache_clear()
    start = time.perf_counter()
    ParallelSweepRunner(workers=1).run(cells, config, store=store)
    elapsed = time.perf_counter() - start
    holder["cold_session"] = dict(store.session)
    return elapsed


def _time_warm_sweep(
    cells: Sequence[SweepCell], config: SystemConfig, holder: Dict[str, object]
) -> float:
    """The same grid against the store the cold leg just populated:
    every cell is a hit, no machine is ever built. ``warm_vs_cold`` is
    the headline number of the incremental path — what a re-run of an
    already-computed grid costs."""
    from repro.store import ResultStore

    store = ResultStore(holder["dir"])
    start = time.perf_counter()
    ParallelSweepRunner(workers=1).run(cells, config, store=store)
    elapsed = time.perf_counter() - start
    holder["warm_session"] = dict(store.session)
    return elapsed


def _time_parallel(
    cells: Sequence[SweepCell], config: SystemConfig, workers: int
) -> float:
    runner = ParallelSweepRunner(workers=workers)
    start = time.perf_counter()
    runner.run(cells, config)
    return time.perf_counter() - start


def _time_serial_telemetry(
    cells: Sequence[SweepCell], config: SystemConfig
) -> float:
    """The ``serial`` leg re-run with telemetry collection enabled.

    The registry and span ring are reset at leg start, so after the
    final round the process-global registry holds exactly one grid's
    worth of counters — which is what ``metrics_out`` exports.
    """
    was_enabled = telemetry.enabled()
    telemetry.set_enabled(True)
    telemetry.reset()
    try:
        return _time_serial(cells, config)
    finally:
        telemetry.set_enabled(was_enabled)


def run_reference_bench(
    workers: Optional[int] = None,
    benchmarks: Sequence[str] = REFERENCE_BENCHMARKS,
    protocols: Sequence[str] = FIGURE_PROTOCOLS,
    accesses: int = REFERENCE_ACCESSES,
    seed: Seed = REFERENCE_SEED,
    output: Optional[Path] = Path("BENCH_sweep.json"),
    include_uncached: bool = True,
    include_replay: bool = True,
    include_plan: bool = True,
    include_telemetry: bool = True,
    include_store: bool = True,
    rounds: int = REFERENCE_ROUNDS,
    metrics_out: Optional[Path] = None,
    history: Optional[Path] = None,
) -> Dict[str, object]:
    """Time the reference sweep; optionally write ``BENCH_sweep.json``.

    Returns the report dict. ``workers=None`` auto-sizes to the visible
    core count. ``include_uncached=False`` skips the slowest leg (CI
    smoke runs on tiny grids don't need it); ``include_replay=False``
    skips the boundary-replay leg (the ``--no-replay`` escape hatch);
    ``include_plan=False`` skips the metadata-plan leg (``--no-plan``).
    ``history`` names a JSONL trend log: each run appends one entry
    (headline timings + speedups) via the durable-append helper, and
    the report gains a ``history`` block holding the previous entry so
    callers can print the delta.
    Each of the ``rounds`` rounds runs every enabled leg once,
    interleaved; the headline figure per leg is its best round, with
    raw samples preserved in ``samples_seconds``.

    Every leg runs with telemetry collection *disabled* so the
    trajectory stays comparable across PRs; the ``serial_telemetry``
    leg re-enables it to price the subsystem (the overhead guard:
    within :data:`TELEMETRY_OVERHEAD_BUDGET` of the plain serial leg).
    ``metrics_out`` exports that leg's final registry snapshot as a
    ``repro.metrics/v1`` artifact.

    On a single visible CPU the parallel leg is *skipped*, recorded
    with status ``skipped_single_cpu`` and null timings: a process
    pool on one core only adds fork/pickle overhead, and an earlier
    BENCH_sweep.json dutifully recorded the resulting 0.76x "speedup"
    as if it measured the runner rather than the container.
    """
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    config = default_config()
    visible_cpus = default_workers()
    workers = visible_cpus if workers is None else max(1, workers)
    cells = reference_cells(benchmarks, protocols, accesses, seed)

    # Warm what should be warm: interpreter, imports, one materialized
    # trace — so the legs differ only in the strategy under test.
    materialize_trace(cells[0].trace)

    run_parallel = visible_cpus > 1
    legs = []
    if include_uncached:
        legs.append(
            ("serial_uncached", lambda: _time_serial_uncached(cells, config))
        )
    legs.append(("serial", lambda: _time_serial(cells, config)))
    if include_telemetry:
        legs.append(
            (
                "serial_telemetry",
                lambda: _time_serial_telemetry(cells, config),
            )
        )
    if include_replay:
        legs.append(
            ("serial_replay", lambda: _time_serial_replay(cells, config))
        )
    if include_plan:
        legs.append(
            ("serial_plan", lambda: _time_serial_plan(cells, config))
        )
    # The store legs use a throwaway temp directory per round, never a
    # user-facing store: cold must genuinely compute every cell, and
    # warm must replay exactly what that round's cold leg wrote.
    store_holder: Dict[str, object] = {}
    if include_store:
        legs.append(
            (
                "store_cold",
                lambda: _time_store_cold(cells, config, store_holder),
            )
        )
        legs.append(
            (
                "warm_sweep",
                lambda: _time_warm_sweep(cells, config, store_holder),
            )
        )
    if run_parallel:
        legs.append(
            ("parallel", lambda: _time_parallel(cells, config, workers))
        )
    samples: Dict[str, List[float]] = {name: [] for name, _ in legs}
    # The trajectory legs measure the simulator, not the observability
    # layer: collection is off for every leg except serial_telemetry,
    # which re-enables it to price exactly that difference.
    telemetry_was_enabled = telemetry.enabled()
    telemetry.set_enabled(False)
    try:
        for _ in range(rounds):
            for name, leg in legs:
                samples[name].append(leg())
    finally:
        telemetry.set_enabled(telemetry_was_enabled)
        if store_holder.get("dir"):
            import shutil

            shutil.rmtree(store_holder["dir"], ignore_errors=True)

    serial_uncached = (
        min(samples["serial_uncached"]) if include_uncached else None
    )
    serial_seconds = min(samples["serial"])
    serial_telemetry = (
        min(samples["serial_telemetry"]) if include_telemetry else None
    )
    serial_replay = min(samples["serial_replay"]) if include_replay else None
    serial_plan = min(samples["serial_plan"]) if include_plan else None
    store_cold = min(samples["store_cold"]) if include_store else None
    warm_sweep = min(samples["warm_sweep"]) if include_store else None
    parallel_seconds = min(samples["parallel"]) if run_parallel else None

    leg_status = {name: "measured" for name, _ in legs}
    if not run_parallel:
        leg_status["parallel"] = "skipped_single_cpu"

    report: Dict[str, object] = {
        "grid": {
            "benchmarks": list(benchmarks),
            "protocols": list(protocols),
            "accesses_per_trace": accesses,
            "seed": seed,
            "cells": len(cells),
        },
        "environment": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "visible_cpus": visible_cpus,
            "workers": workers,
        },
        "timing_method": {
            "strategy": "interleaved-best-of",
            "rounds": rounds,
        },
        "legs": leg_status,
        "timings_seconds": {
            "serial_uncached": serial_uncached,
            "serial": serial_seconds,
            "serial_telemetry": serial_telemetry,
            "serial_replay": serial_replay,
            "serial_plan": serial_plan,
            "store_cold": store_cold,
            "warm_sweep": warm_sweep,
            "parallel": parallel_seconds,
        },
        "samples_seconds": {
            name: [round(value, 4) for value in values]
            for name, values in samples.items()
        },
        "speedups": {
            "trace_cache": (
                serial_uncached / serial_seconds
                if serial_uncached is not None and serial_seconds > 0
                else None
            ),
            "replay_vs_serial": (
                serial_seconds / serial_replay
                if serial_replay is not None and serial_replay > 0
                else None
            ),
            "plan_vs_serial": (
                serial_seconds / serial_plan
                if serial_plan is not None and serial_plan > 0
                else None
            ),
            "plan_vs_replay": (
                serial_replay / serial_plan
                if serial_replay is not None
                and serial_plan is not None
                and serial_plan > 0
                else None
            ),
            "warm_vs_cold": (
                store_cold / warm_sweep
                if store_cold is not None
                and warm_sweep is not None
                and warm_sweep > 0
                else None
            ),
            "parallel_vs_serial": (
                serial_seconds / parallel_seconds
                if parallel_seconds is not None and parallel_seconds > 0
                else None
            ),
        },
        "throughput": {
            "serial_cells_per_second": (
                len(cells) / serial_seconds if serial_seconds > 0 else None
            ),
            "parallel_cells_per_second": (
                len(cells) / parallel_seconds
                if parallel_seconds is not None and parallel_seconds > 0
                else None
            ),
        },
    }
    if include_store:
        report["store"] = {
            "cold_session": store_holder.get("cold_session"),
            "warm_session": store_holder.get("warm_session"),
        }
    if include_telemetry:
        overhead_ratio = (
            serial_telemetry / serial_seconds
            if serial_telemetry is not None and serial_seconds > 0
            else None
        )
        report["telemetry"] = {
            "overhead_ratio": overhead_ratio,
            "budget_ratio": 1.0 + TELEMETRY_OVERHEAD_BUDGET,
            "within_budget": (
                overhead_ratio is not None
                and overhead_ratio <= 1.0 + TELEMETRY_OVERHEAD_BUDGET
            ),
        }
    if output is not None:
        atomic_write_json(Path(output), report)
    if history is not None:
        previous = append_bench_history(Path(history), report)
        report["history"] = {"path": str(history), "previous": previous}
    if metrics_out is not None and include_telemetry:
        from repro.telemetry import write_metrics_artifact

        write_metrics_artifact(
            Path(metrics_out),
            telemetry.get_registry(),
            run={
                "kind": "reference-bench-serial",
                "grid": report["grid"],
                "environment": report["environment"],
            },
            spans=telemetry.get_tracer().finished(),
        )
    return report


# ----------------------------------------------------------------------
# resilient (journaled, resumable) sweep
# ----------------------------------------------------------------------


def sweep_cell_key(index: int, cell: SweepCell) -> str:
    """Stable journal identity of one reference-grid cell."""
    return (
        f"{index:04d}/{cell.protocol}/{cell.trace.label()}"
        f"/a{cell.trace.accesses}/s{cell.seed}"
    )


def run_resilient_sweep(
    run_dir: Path,
    resume: bool = False,
    workers: Optional[int] = 1,
    benchmarks: Sequence[str] = REFERENCE_BENCHMARKS,
    protocols: Sequence[str] = FIGURE_PROTOCOLS,
    accesses: int = REFERENCE_ACCESSES,
    seed: Seed = REFERENCE_SEED,
    policy: Optional[SupervisionPolicy] = None,
    replay: bool = True,
    plan: bool = True,
    store=None,
) -> Dict[str, object]:
    """Run the reference grid under supervision, journaled in ``run_dir``.

    Unlike :func:`run_reference_bench` (a wall-clock benchmark), this
    entry produces the grid's *results*: every cell's deterministic
    :class:`SimulationResult`, checkpointed to ``run_dir/journal.jsonl``
    as it completes and exported to ``run_dir/SWEEP_results.json`` at
    the end. A run killed at any point and restarted with
    ``resume=True`` skips the journaled cells and produces a final
    artifact bit-identical to an uninterrupted run.

    With ``replay=True`` (the default) cells run through the compiled
    boundary-stream path — the data side is simulated once per
    (benchmark, OS variant) in the supervisor parent and replayed into
    every protocol cell; results are bit-identical to the direct path,
    so journals from either mode resume interchangeably (cell keys do
    not encode the execution strategy). ``replay=False`` is the
    ``--no-replay`` escape hatch; ``plan=False`` keeps replay but
    skips metadata-plan compilation (``--no-plan``).

    With a :class:`~repro.store.ResultStore` as ``store``, the journal
    and the store *compose*: cells already in the store are recorded
    into the journal as done (zero attempts) before the supervised run,
    so only genuinely new cells execute; cells the run computes — and
    cells found done in a resumed journal — are written back to the
    store afterwards. Cold, warm, and resumed runs all export the same
    bit-identical ``SWEEP_results.json``.
    """
    from repro.bench.export import export_experiment

    config = default_config()
    cells = reference_cells(benchmarks, protocols, accesses, seed)
    if replay:
        cells = [replace(cell, replay=True, plan=plan) for cell in cells]
    validate_cells(cells)
    if replay:
        # Compile each distinct data side (and metadata plan) once up
        # front so fork-started supervised workers inherit warm caches.
        precompile_streams(cells, config)
        if plan:
            precompile_plans(cells, config)
    keys = [sweep_cell_key(i, cell) for i, cell in enumerate(cells)]
    parameters = {
        "benchmarks": list(benchmarks),
        "protocols": list(protocols),
        "accesses_per_trace": accesses,
        "seed": seed,
    }
    manifest = build_manifest("resilient-sweep", config, keys, parameters)
    journal = RunJournal.open(run_dir, manifest, resume=resume)
    fingerprints: List[str] = []
    if store is not None:
        from repro.store.fingerprint import cell_fingerprint

        fingerprints = [cell_fingerprint(cell, config) for cell in cells]
        # Pre-seed the journal from the store: a warm cell becomes a
        # "done" journal entry with zero attempts, and the supervised
        # runner then skips it exactly as it skips resumed cells. The
        # store payload is the same codec the journal itself uses, so
        # warm, resumed, and cold runs are indistinguishable downstream.
        seeded = 0
        for key, fingerprint in zip(keys, fingerprints):
            entry = journal.entry(key)
            if entry is not None and entry.get("status") == "done":
                continue
            hit = store.get(fingerprint)
            if hit is not None:
                journal.record_done(key, hit.to_json_dict(), attempts=0)
                seeded += 1
        if seeded:
            journal.flush()
    runner = SupervisedRunner(workers=workers, policy=policy, journal=journal)
    outcomes = runner.map(
        _pool_entry,
        [(cell, config) for cell in cells],
        keys,
        encode=lambda result: result.to_json_dict(),
        decode=SimulationResult.from_json_dict,
    )
    results, failures = split_outcomes(outcomes)
    if store is not None:
        # Write back everything the run now knows: freshly computed
        # cells AND cells recovered from a resumed journal — so a
        # journal-only run backfills the store for the next one.
        for cell, fingerprint, outcome in zip(cells, fingerprints, outcomes):
            if isinstance(outcome, CellFailure):
                continue
            if not store.contains(fingerprint):
                store.put(
                    fingerprint,
                    outcome,
                    meta={
                        "protocol": cell.protocol,
                        "workload": cell.trace.label(),
                    },
                )
    records = []
    for key, outcome in zip(keys, outcomes):
        if isinstance(outcome, CellFailure):
            records.append(
                {"key": key, "status": "failed", "failure": outcome}
            )
        else:
            records.append(
                {"key": key, "status": "done", "result": outcome.to_json_dict()}
            )
    artifact = Path(run_dir) / SWEEP_RESULTS_NAME
    export_experiment(
        "resilient-sweep",
        {"cells": records, "failed_cells": len(failures)},
        artifact,
        parameters=parameters,
    )
    return {
        "cells": len(cells),
        "completed": len(results),
        "failures": failures,
        "outcomes": outcomes,
        "artifact": artifact,
        "journal": journal.path,
    }


# ----------------------------------------------------------------------
# trend log
# ----------------------------------------------------------------------


def history_entry(report: Dict[str, object]) -> Dict[str, object]:
    """The headline slice of a perf report that the trend log keeps:
    grid identity, best-round timings, and derived speedups — enough to
    diff any two runs without storing raw samples."""
    return {
        "recorded_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "grid": report["grid"],
        "timings_seconds": report["timings_seconds"],
        "speedups": report["speedups"],
    }


def append_bench_history(
    path: Path, report: Dict[str, object]
) -> Optional[Dict[str, object]]:
    """Append this run's headline numbers to the JSONL trend log.

    Returns the previous (most recent) entry so the caller can print a
    delta, or ``None`` on the log's first run. The append is the
    durable single-line write of
    :func:`repro.util.atomicio.atomic_append_jsonl`, so a crash can
    never corrupt earlier history.
    """
    entries = read_jsonl(path)
    previous = entries[-1] if entries else None
    atomic_append_jsonl(path, history_entry(report))
    return previous


def format_history_delta(
    report: Dict[str, object], previous: Optional[Dict[str, object]]
) -> str:
    """Human-readable delta of this run against the previous log entry."""
    if previous is None:
        return "history: first recorded run (no previous entry to diff)"
    lines = [f"history: vs previous run ({previous.get('recorded_at')})"]
    timings = report["timings_seconds"]
    prev_timings = previous.get("timings_seconds") or {}
    for leg, value in timings.items():
        before = prev_timings.get(leg)
        if value is None or before is None or before <= 0:
            continue
        change = (value - before) / before * 100.0
        lines.append(
            f"  {leg:16s}: {value:7.2f} s  (was {before:.2f} s, "
            f"{change:+.1f}%)"
        )
    speedups = report["speedups"]
    prev_speedups = previous.get("speedups") or {}
    for name, value in speedups.items():
        before = prev_speedups.get(name)
        if value is None or before is None:
            continue
        lines.append(
            f"  {name:16s}: {value:7.2f}x (was {before:.2f}x)"
        )
    return "\n".join(lines)


def format_report(report: Dict[str, object]) -> str:
    """Human-readable rendering of a perf report."""
    grid = report["grid"]
    env = report["environment"]
    timings = report["timings_seconds"]
    speedups = report["speedups"]
    method = report.get("timing_method") or {}
    samples = report.get("samples_seconds") or {}
    leg_status = report.get("legs") or {}
    lines = [
        f"reference sweep: {grid['cells']} cells "
        f"({len(grid['benchmarks'])} benchmarks x "
        f"{len(grid['protocols'])} protocols, "
        f"{grid['accesses_per_trace']} accesses each)",
        f"python {env['python']} on {env['platform']} "
        f"({env['visible_cpus']} visible cpu(s), {env['workers']} workers)",
    ]
    if method:
        lines.append(
            f"timing: best of {method['rounds']} interleaved round(s)"
        )

    def leg_line(label: str, key: str) -> str:
        line = f"{label}: {timings[key]:8.2f} s"
        raw = samples.get(key)
        if raw and len(raw) > 1:
            line += "  (samples: " + ", ".join(
                f"{value:.2f}" for value in raw
            ) + ")"
        return line

    if timings["serial_uncached"] is not None:
        lines.append(leg_line("serial, no trace cache ", "serial_uncached"))
    lines.append(leg_line("serial, trace cache    ", "serial"))
    if timings.get("serial_telemetry") is not None:
        lines.append(leg_line("serial, telemetry on   ", "serial_telemetry"))
    if timings.get("serial_replay") is not None:
        lines.append(leg_line("serial, boundary replay", "serial_replay"))
    if timings.get("serial_plan") is not None:
        lines.append(leg_line("serial, metadata plan  ", "serial_plan"))
    if timings.get("store_cold") is not None:
        lines.append(leg_line("store, cold (compute)  ", "store_cold"))
    if timings.get("warm_sweep") is not None:
        lines.append(leg_line("store, warm (replay)   ", "warm_sweep"))
    if timings.get("parallel") is not None:
        lines.append(leg_line("parallel               ", "parallel"))
    elif leg_status.get("parallel") == "skipped_single_cpu":
        lines.append(
            "parallel               :  skipped (1 visible cpu — a pool "
            "would only measure fork overhead)"
        )
    if speedups["trace_cache"] is not None:
        lines.append(f"trace-cache speedup    : {speedups['trace_cache']:8.2f}x")
    if speedups.get("replay_vs_serial") is not None:
        lines.append(
            f"replay speedup         : {speedups['replay_vs_serial']:8.2f}x"
        )
    if speedups.get("plan_vs_serial") is not None:
        lines.append(
            f"plan speedup           : {speedups['plan_vs_serial']:8.2f}x"
        )
    if speedups.get("plan_vs_replay") is not None:
        lines.append(
            f"plan vs replay         : {speedups['plan_vs_replay']:8.2f}x"
        )
    if speedups.get("warm_vs_cold") is not None:
        lines.append(
            f"warm-store speedup     : {speedups['warm_vs_cold']:8.2f}x"
        )
    if speedups["parallel_vs_serial"] is not None:
        lines.append(
            f"parallel speedup       : {speedups['parallel_vs_serial']:8.2f}x"
        )
    tele = report.get("telemetry") or {}
    if tele.get("overhead_ratio") is not None:
        verdict = "within" if tele.get("within_budget") else "OVER"
        lines.append(
            f"telemetry overhead     : {tele['overhead_ratio']:8.3f}x "
            f"({verdict} {tele['budget_ratio']:.2f}x budget)"
        )
    return "\n".join(lines)
