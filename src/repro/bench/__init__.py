"""Benchmark experiment definitions and reporting.

One function per table/figure of the paper's evaluation section; the
pytest-benchmark harnesses in ``benchmarks/`` are thin wrappers that
time these and print the regenerated rows/series. Keeping the
experiment logic in the library (rather than in the benchmark files)
means examples and notebooks can regenerate any figure too.
"""

from repro.bench.experiments import (
    fig3_hotness,
    fig4_single_program,
    fig5_multiprogram,
    fig6_fig7_level_sweep,
    fig8_spec,
    table2_os_cost,
    table3_area,
    table4_recovery,
)
from repro.bench.charts import bar_chart, grouped_bar_chart
from repro.bench.export import export_experiment, load_experiment
from repro.bench.reporting import format_series, format_table

__all__ = [
    "bar_chart",
    "grouped_bar_chart",
    "export_experiment",
    "load_experiment",
    "fig3_hotness",
    "fig4_single_program",
    "fig5_multiprogram",
    "fig6_fig7_level_sweep",
    "fig8_spec",
    "table2_os_cost",
    "table3_area",
    "table4_recovery",
    "format_table",
    "format_series",
]
