"""Machine-readable export of experiment outputs.

The harness prints aligned tables for humans; this module serializes
the same structures to JSON so plots and regression dashboards can be
built without re-running simulations. Every exported document carries
the experiment id, the library version, and the parameters used, so a
results file is self-describing.
"""

from __future__ import annotations

import json
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Optional


def _jsonable(value: Any) -> Any:
    if is_dataclass(value) and not isinstance(value, type):
        return {k: _jsonable(v) for k, v in asdict(value).items()}
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def export_experiment(
    experiment_id: str,
    data: Any,
    path: Path,
    parameters: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write one experiment's output as a self-describing JSON file."""
    from repro import __version__

    document = {
        "experiment": experiment_id,
        "library_version": __version__,
        "parameters": _jsonable(parameters or {}),
        "data": _jsonable(data),
    }
    path = Path(path)
    path.write_text(json.dumps(document, indent=2, sort_keys=True))
    return path


def load_experiment(path: Path) -> Dict[str, Any]:
    """Read a document written by :func:`export_experiment`."""
    document = json.loads(Path(path).read_text())
    for key in ("experiment", "library_version", "data"):
        if key not in document:
            raise ValueError(f"not an experiment export: missing {key!r}")
    return document
