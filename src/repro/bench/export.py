"""Machine-readable export of experiment outputs.

The harness prints aligned tables for humans; this module serializes
the same structures to JSON so plots and regression dashboards can be
built without re-running simulations. Every exported document carries
the experiment id, the library version, and the parameters used, so a
results file is self-describing.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional

from repro.util.atomicio import atomic_write_text, jsonable as _jsonable


def export_experiment(
    experiment_id: str,
    data: Any,
    path: Path,
    parameters: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write one experiment's output as a self-describing JSON file."""
    from repro import __version__

    document = {
        "experiment": experiment_id,
        "library_version": __version__,
        "parameters": _jsonable(parameters or {}),
        "data": _jsonable(data),
    }
    # Atomic replace: an interrupted export leaves the previous file
    # intact instead of a torn JSON prefix.
    return atomic_write_text(
        Path(path), json.dumps(document, indent=2, sort_keys=True)
    )


def load_experiment(path: Path) -> Dict[str, Any]:
    """Read a document written by :func:`export_experiment`."""
    document = json.loads(Path(path).read_text())
    for key in ("experiment", "library_version", "data"):
        if key not in document:
            raise ValueError(f"not an experiment export: missing {key!r}")
    return document
