"""The on-chip security-metadata cache.

Holds encryption counter blocks, BMT integrity nodes, and data-HMAC
lines, all competing for the same 64 kB (Table 1). Keys are tagged
tuples so the three metadata kinds share sets without colliding:

* ``("ctr", counter_block_index)``
* ``("node", level, index)``
* ``("hmac", hmac_line_index)``

Beyond the generic cache operations, this class supports the dirty-bit
scan AMNT uses when the fast subtree moves: under AMNT only in-subtree
tree nodes can ever be dirty (everything else is written through), so
scanning the dirty bits yields exactly the nodes to flush (§4.2).
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Tuple

from repro.cache.cache import EvictedLine, SetAssociativeCache, build_cache
from repro.config import MetadataCacheConfig

#: Metadata cache key forms.
CounterKey = Tuple[str, int]
NodeKey = Tuple[str, int, int]
HmacKey = Tuple[str, int]


def counter_key(counter_block_index: int) -> CounterKey:
    return ("ctr", counter_block_index)


def node_key(level: int, index: int) -> NodeKey:
    return ("node", level, index)


def hmac_key(hmac_line_index: int) -> HmacKey:
    return ("hmac", hmac_line_index)


class MetadataCache:
    """Unified security-metadata cache with typed key helpers."""

    def __init__(self, config: MetadataCacheConfig, name: str = "mdcache") -> None:
        self.config = config
        self._cache = build_cache(
            config.capacity_bytes,
            config.line_bytes,
            config.associativity,
            name=name,
        )
        # Delegation — the protocols drive the cache through these. The
        # hot operations are bound straight through to the inner cache
        # (one attribute lookup instead of a wrapper frame per call;
        # several of them run multiple times per simulated access).
        inner = self._cache
        self.lookup = inner.lookup
        self.contains = inner.contains
        self.insert = inner.insert
        self.access_line = inner.access_line
        # Valid because build_cache above uses default placement
        # (set_of=None): the premixed set index is bit-identical to the
        # one access_line derives (see SetAssociativeCache).
        self.access_line_premixed = inner.access_line_premixed
        self.mark_dirty = inner.mark_dirty
        self.clean = inner.clean
        self.is_dirty = inner.is_dirty
        self.invalidate = inner.invalidate

    @property
    def stats(self):
        return self._cache.stats

    @property
    def access_latency_cycles(self) -> int:
        return self.config.access_latency_cycles

    def drop_all(self) -> List[EvictedLine]:
        return self._cache.drop_all()

    def hit_rate(self) -> float:
        return self._cache.hit_rate()

    def occupancy(self) -> int:
        return self._cache.occupancy()

    def capacity_lines(self) -> int:
        return self._cache.capacity_lines

    # -- AMNT support: the subtree-movement dirty scan -------------------

    def dirty_tree_nodes(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(level, index)`` of every dirty BMT node line."""
        for line in self._cache.dirty_lines():
            key = line.key
            if isinstance(key, tuple) and key[0] == "node":
                yield (key[1], key[2])

    def dirty_nodes_matching(
        self, predicate: Callable[[int, int], bool]
    ) -> List[Tuple[int, int]]:
        """Dirty node lines satisfying ``predicate(level, index)``.

        AMNT passes a subtree-membership predicate here on movement.
        """
        return [
            (level, index)
            for level, index in self.dirty_tree_nodes()
            if predicate(level, index)
        ]
