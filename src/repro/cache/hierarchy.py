"""Data-side cache model in front of the memory encryption engine.

The paper's protocols act on *memory traffic* — LLC fills and dirty
writebacks — not on every CPU reference, so the simulator only needs
the filter that turns a reference stream into that traffic. We model
the last-level cache faithfully (set-associative, write-allocate,
write-back) and fold the upper levels into a per-access hit latency;
with the intentionally small caches the paper configures, LLC behaviour
dominates the interesting effects.

:class:`DataCache` converts each CPU read/write into a
:class:`MemoryTraffic` record telling the engine which block fills and
which dirty victims write back this access.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from repro.cache.cache import CacheLine, SetAssociativeCache, build_cache
from repro.config import DataCacheConfig
from repro.mem.address import AddressSpace


class MemoryTraffic(NamedTuple):
    """Memory-side consequences of one CPU reference.

    ``fill_block`` is the block index fetched from memory (``None`` on
    a cache hit); ``writeback_blocks`` are dirty victim block indices
    that must be written to memory this access; ``hit`` records whether
    the reference itself hit in the cache.

    A named tuple rather than a dataclass: one is built per LLC miss,
    and tuple construction and field access run at C speed.
    """

    hit: bool
    fill_block: Optional[int] = None
    writeback_blocks: tuple = ()


#: Hits vastly outnumber misses and carry no per-access state, so every
#: hit returns this one immutable record instead of a fresh allocation.
_HIT = MemoryTraffic(hit=True)


class DataCache:
    """Write-back, write-allocate LLC over physical block indices."""

    def __init__(
        self,
        config: DataCacheConfig,
        address_space: AddressSpace,
        name: str = "llc",
    ) -> None:
        self.config = config
        self.address_space = address_space
        # Block index low bits give natural set interleaving for data.
        self._cache = build_cache(
            config.capacity_bytes,
            config.line_bytes,
            config.associativity,
            name=name,
            set_of=lambda key: key,  # keys are block indices
        )
        # Hot path: per-access bound-method resolution hoisted out, plus
        # the pieces :meth:`access` needs to run the whole reference as
        # straight-line code — address decode (shift + bounds check) and
        # the set array of the underlying cache. Because the LLC's set
        # function is the identity over block indices, the generic
        # per-key index memo is pure overhead here.
        self._block_index = address_space.block_index
        self._block_shift = address_space._block_shift
        self._capacity = address_space.capacity_bytes
        self._sets = self._cache._sets
        self._set_mask = self._cache.num_sets - 1
        self._assoc = self._cache.associativity
        self._hits = self._cache._hits
        self._misses = self._cache._misses
        self._fills = self._cache._fills
        self._evictions = self._cache._evictions
        self._dirty_evictions = self._cache._dirty_evictions

    @property
    def stats(self):
        return self._cache.stats

    def access(self, addr: int, is_write: bool) -> MemoryTraffic:
        """Run one CPU reference; returns resulting memory traffic.

        This is the fused equivalent of ``lookup`` + ``mark_dirty`` /
        ``insert`` on the underlying cache — identical counters, LRU
        transitions, and victim selection — inlined because it runs once
        per trace record.
        """
        if 0 <= addr < self._capacity:
            block = addr >> self._block_shift
        else:
            block = self._block_index(addr)  # raises AddressError
        bucket = self._sets[block & self._set_mask]
        line = bucket.get(block)
        if line is not None:
            if is_write:
                line.dirty = True
            bucket.move_to_end(block)
            self._hits.value += 1
            return _HIT
        self._misses.value += 1
        writebacks = ()
        if len(bucket) >= self._assoc:
            victim_key, victim_line = bucket.popitem(last=False)
            self._evictions.value += 1
            if victim_line.dirty:
                self._dirty_evictions.value += 1
                writebacks = (victim_key,)
        bucket[block] = CacheLine(block, is_write)
        self._fills.value += 1
        return MemoryTraffic(
            hit=False,
            fill_block=block,
            writeback_blocks=writebacks,
        )

    def flush(self) -> List[int]:
        """Write back and drop every line; returns dirty block indices.

        Models a full cache flush (e.g. at region-of-interest end so
        trailing writebacks are attributed to the run that caused them).
        """
        return [line.key for line in self._cache.flush_all() if line.dirty]

    def flush_block(self, addr: int) -> Optional[int]:
        """CLWB-style single-line flush; returns the block if it was
        dirty (and therefore produced a memory write)."""
        block = self._block_index(addr)
        if self._cache.is_dirty(block):
            self._cache.clean(block)
            return block
        return None

    def hit_rate(self) -> float:
        return self._cache.hit_rate()

    def occupancy(self) -> int:
        return self._cache.occupancy()
