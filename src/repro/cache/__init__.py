"""On-chip cache models: generic set-associative cache, the data-side
hierarchy, and the security metadata cache."""

from repro.cache.cache import CacheLine, EvictedLine, SetAssociativeCache
from repro.cache.hierarchy import DataCache, MemoryTraffic
from repro.cache.metadata_cache import MetadataCache

__all__ = [
    "SetAssociativeCache",
    "CacheLine",
    "EvictedLine",
    "DataCache",
    "MemoryTraffic",
    "MetadataCache",
]
