"""A generic set-associative cache with LRU replacement and dirty bits.

Keys are arbitrary hashable line identifiers — physical block indices
for data caches; ``("ctr", i)`` / ``("node", level, i)`` style tuples
for the metadata cache — so one implementation serves every on-chip
structure in the simulator. Set selection uses a deterministic integer
mix of the key (never Python's randomized ``hash``), keeping runs
reproducible across processes.

The cache stores presence and state only, never payload bytes: content
lives in the NVM backend or the protocol's authoritative structures.
This mirrors how the timing simulator treats caches — as hit/miss
filters with eviction side effects.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterator, List, Optional, Tuple

from repro.errors import CacheError
from repro.util.bitops import is_power_of_two
from repro.util.stats import StatRegistry

Key = Hashable


_MASK64 = 0xFFFFFFFFFFFFFFFF


def _avalanche(value: int) -> int:
    """Final mix so low bits depend on high bits."""
    value &= _MASK64
    value ^= value >> 33
    value = (value * 0xFF51AFD7ED558CCD) & _MASK64
    value ^= value >> 33
    return value


#: Mixed values of non-int key *parts* (the ``"ctr"``/``"node"``/
#: ``"hmac"`` tag strings, in practice). The original recursive mixer
#: re-hashed the tag string character by character for every distinct
#: tuple key — 67k calls with 2x primitive-call amplification in
#: PROFILE_run.json. Memoizing the handful of distinct parts turns a
#: tuple mix into pure integer folds.
_PART_MIX_MEMO: dict = {}


def _mix_key(key: Key) -> int:
    """Deterministically fold a key into an integer for set indexing.

    Iterative over tuple parts with memo-backed sub-mixes; produces
    exactly the values the original recursive form did (set placement
    is behaviour — evictions depend on it — so the math must not move).
    """
    if isinstance(key, int):
        return _avalanche(key)
    if isinstance(key, tuple):
        value = 0x9E3779B97F4A7C15
        for part in key:
            if isinstance(part, int):
                piece = part
            else:
                piece = _PART_MIX_MEMO.get(part)
                if piece is None:
                    piece = _mix_key(part)
                    _PART_MIX_MEMO[part] = piece
            value = (value * 0x100000001B3) ^ (piece & _MASK64)
        return _avalanche(value)
    if isinstance(key, str):
        value = 0xCBF29CE484222325
        for char in key:
            value = ((value ^ ord(char)) * 0x100000001B3) & _MASK64
        return _avalanche(value)
    raise CacheError(f"unsupported cache key type: {type(key).__name__}")


#: Process-wide memo of the (pure) key mix. A sweep builds a fresh
#: machine — and therefore fresh caches — per cell, but the metadata
#: key tuples repeat across cells, so sharing the mix means only the
#: first cell pays for hashing each key. Growth is bounded by the
#: distinct metadata keys of the geometries simulated in this process.
_MIX_MEMO: dict = {}


def mix_of(key: Key) -> int:
    """The memoized deterministic mix of ``key``.

    The value callers may pass to
    :meth:`SetAssociativeCache.access_line_premixed` — exactly what the
    default (``set_of=None``) placement derives per access, resolved
    once. The metadata-plan compiler uses this to bake set indices into
    its per-event records.
    """
    mixed = _MIX_MEMO.get(key)
    if mixed is None:
        mixed = _mix_key(key)
        _MIX_MEMO[key] = mixed
    return mixed


@dataclass(slots=True)
class CacheLine:
    """State of one resident line."""

    key: Key
    dirty: bool = False


@dataclass(frozen=True, slots=True)
class EvictedLine:
    """An eviction event handed back to the caller."""

    key: Key
    dirty: bool


class SetAssociativeCache:
    """LRU set-associative cache tracking presence and dirtiness."""

    def __init__(
        self,
        num_sets: int,
        associativity: int,
        name: str = "cache",
        set_of: Optional[Callable[[Key], int]] = None,
    ) -> None:
        if not is_power_of_two(num_sets):
            raise CacheError(f"num_sets must be a power of two, got {num_sets}")
        if associativity <= 0:
            raise CacheError(f"associativity must be positive, got {associativity}")
        self.num_sets = num_sets
        self.associativity = associativity
        self.name = name
        self._set_of = set_of
        self.stats = StatRegistry(name)
        # Each set is an OrderedDict: iteration order == LRU -> MRU.
        self._sets: List["OrderedDict[Key, CacheLine]"] = [
            OrderedDict() for _ in range(num_sets)
        ]
        # Hot-loop counters and a per-key set-index memo (the mixing
        # hash is pure, so memoizing it is sound; the memo is bounded
        # by the workload's metadata footprint).
        self._hits = self.stats.counter("hits")
        self._misses = self.stats.counter("misses")
        self._fills = self.stats.counter("fills")
        self._evictions = self.stats.counter("evictions")
        self._dirty_evictions = self.stats.counter("dirty_evictions")
        self._index_memo: dict = {}
        self._set_mask = num_sets - 1

    # -- placement -------------------------------------------------------

    def _index(self, key: Key) -> int:
        index = self._index_memo.get(key)
        if index is None:
            if self._set_of is not None:
                index = self._set_of(key) & (self.num_sets - 1)
            else:
                mixed = _MIX_MEMO.get(key)
                if mixed is None:
                    mixed = _mix_key(key)
                    _MIX_MEMO[key] = mixed
                index = mixed & (self.num_sets - 1)
            self._index_memo[key] = index
        return index

    @property
    def capacity_lines(self) -> int:
        return self.num_sets * self.associativity

    # -- core operations ---------------------------------------------------

    def lookup(self, key: Key) -> bool:
        """Probe for ``key``; a hit refreshes its recency."""
        bucket = self._sets[self._index(key)]
        line = bucket.get(key)
        if line is None:
            self._misses.value += 1
            return False
        bucket.move_to_end(key)
        self._hits.value += 1
        return True

    def contains(self, key: Key) -> bool:
        """Presence check with no recency or stats side effects."""
        return key in self._sets[self._index(key)]

    def insert(self, key: Key, dirty: bool = False) -> Optional[EvictedLine]:
        """Fill ``key``; returns the victim if one was evicted.

        Inserting a key that is already resident refreshes recency and
        ORs in the dirty bit (it never cleans an already-dirty line).
        """
        bucket = self._sets[self._index(key)]
        line = bucket.get(key)
        if line is not None:
            line.dirty = line.dirty or dirty
            bucket.move_to_end(key)
            return None
        victim: Optional[EvictedLine] = None
        if len(bucket) >= self.associativity:
            victim_key, victim_line = bucket.popitem(last=False)
            victim = EvictedLine(victim_key, victim_line.dirty)
            self._evictions.value += 1
            if victim_line.dirty:
                self._dirty_evictions.value += 1
        bucket[key] = CacheLine(key, dirty)
        self._fills.value += 1
        return victim

    def access_line(self, key: Key, dirty: bool = False):
        """One full reference — probe, and on a miss fill — in a single
        set walk. Equivalent to ``lookup`` followed by ``mark_dirty`` /
        ``insert`` (same counters, same LRU transitions), fused because
        the pair sits on the simulator's innermost loop.

        Returns ``True`` on a hit (recency refreshed, dirty bit OR-ed
        in), ``None`` on a miss that evicted nothing, or the
        :class:`EvictedLine` victim displaced by the fill.
        """
        index = self._index_memo.get(key)
        if index is None:
            index = self._index(key)
        bucket = self._sets[index]
        line = bucket.get(key)
        if line is not None:
            if dirty:
                line.dirty = True
            bucket.move_to_end(key)
            self._hits.value += 1
            return True
        self._misses.value += 1
        victim: Optional[EvictedLine] = None
        if len(bucket) >= self.associativity:
            victim_key, victim_line = bucket.popitem(last=False)
            victim = EvictedLine(victim_key, victim_line.dirty)
            self._evictions.value += 1
            if victim_line.dirty:
                self._dirty_evictions.value += 1
        bucket[key] = CacheLine(key, dirty)
        self._fills.value += 1
        return victim

    def access_line_premixed(self, key: Key, mixed: int, dirty: bool = False):
        """:meth:`access_line` with the key's deterministic mix supplied
        by the caller (see :func:`mix_of`).

        Only valid on a cache using default placement (``set_of=None``),
        where the set index is exactly ``mixed & (num_sets - 1)`` —
        identical to what :meth:`_index` derives, so hits, fills, LRU
        transitions, and victims match :meth:`access_line` bit for bit.
        The plan-driven replay path pre-resolves the mix once per
        metadata key instead of paying a memo-dict probe per reference.
        """
        bucket = self._sets[mixed & self._set_mask]
        line = bucket.get(key)
        if line is not None:
            if dirty:
                line.dirty = True
            bucket.move_to_end(key)
            self._hits.value += 1
            return True
        self._misses.value += 1
        victim: Optional[EvictedLine] = None
        if len(bucket) >= self.associativity:
            victim_key, victim_line = bucket.popitem(last=False)
            victim = EvictedLine(victim_key, victim_line.dirty)
            self._evictions.value += 1
            if victim_line.dirty:
                self._dirty_evictions.value += 1
        bucket[key] = CacheLine(key, dirty)
        self._fills.value += 1
        return victim

    def mark_dirty(self, key: Key) -> None:
        """Set the dirty bit on a resident line."""
        line = self._sets[self._index(key)].get(key)
        if line is None:
            raise CacheError(f"{self.name}: mark_dirty on non-resident key {key!r}")
        line.dirty = True

    def clean(self, key: Key) -> None:
        """Clear the dirty bit (after a writeback) if resident."""
        line = self._sets[self._index(key)].get(key)
        if line is not None:
            line.dirty = False

    def is_dirty(self, key: Key) -> bool:
        line = self._sets[self._index(key)].get(key)
        return bool(line and line.dirty)

    def invalidate(self, key: Key) -> Optional[EvictedLine]:
        """Remove ``key`` if present; returns its final state."""
        bucket = self._sets[self._index(key)]
        line = bucket.pop(key, None)
        if line is None:
            return None
        return EvictedLine(line.key, line.dirty)

    # -- bulk operations ---------------------------------------------------

    def lines(self) -> Iterator[CacheLine]:
        """All resident lines (LRU to MRU within each set)."""
        for bucket in self._sets:
            yield from bucket.values()

    def dirty_lines(self) -> Iterator[CacheLine]:
        for line in self.lines():
            if line.dirty:
                yield line

    def drop_all(self) -> List[EvictedLine]:
        """Volatile loss: discard every line (crash modeling).

        Dirty contents are *not* written back — that is the point.
        """
        dropped = [EvictedLine(line.key, line.dirty) for line in self.lines()]
        for bucket in self._sets:
            bucket.clear()
        return dropped

    def flush_all(self) -> List[EvictedLine]:
        """Writeback-and-invalidate every line; returns them all."""
        flushed = self.drop_all()
        self.stats.add("flushes")
        return flushed

    def occupancy(self) -> int:
        return sum(len(bucket) for bucket in self._sets)

    # -- metrics -------------------------------------------------------------

    def hit_rate(self) -> float:
        hits = self.stats.get("hits")
        misses = self.stats.get("misses")
        total = hits + misses
        return hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"SetAssociativeCache(name={self.name!r}, sets={self.num_sets}, "
            f"ways={self.associativity}, occupancy={self.occupancy()})"
        )


def build_cache(
    capacity_bytes: int,
    line_bytes: int,
    associativity: int,
    name: str,
    set_of: Optional[Callable[[Key], int]] = None,
) -> SetAssociativeCache:
    """Size a cache from capacity/line/ways (the usual datasheet form)."""
    lines = capacity_bytes // line_bytes
    if lines % associativity:
        raise CacheError(
            f"{name}: {lines} lines do not divide into {associativity}-way sets"
        )
    num_sets = lines // associativity
    if not is_power_of_two(num_sets):
        raise CacheError(f"{name}: set count {num_sets} is not a power of two")
    return SetAssociativeCache(num_sets, associativity, name=name, set_of=set_of)
