"""repro — A Midsummer Night's Tree (AMNT) reproduction library.

A pure-Python, trace-driven reproduction of *A Midsummer Night's Tree:
Efficient and High Performance Secure SCM* (ASPLOS 2024): secure-memory
substrates (counter-mode encryption, HMACs, Bonsai Merkle Trees,
metadata caches, a PCM device model, a buddy-allocator OS layer),
the AMNT protocol and AMNT++ OS co-design, the paper's baselines and
comparators (strict/leaf persistence, Osiris, Anubis, Bonsai Merkle
Forest), and the benchmark harnesses regenerating every table and
figure of the paper's evaluation.

Quickstart::

    from repro import default_config, build_machine, simulate
    from repro.workloads.parsec import parsec_profile
    from repro.workloads.synthetic import generate_trace

    config = default_config()
    trace = generate_trace(parsec_profile("fluidanimate"), seed=1)
    machine = build_machine(config, "amnt")
    result = simulate(machine, trace)
    print(result.cycles, result.subtree_hit_rate())
"""

from repro.config import (
    AMNTConfig,
    MetadataCacheConfig,
    PCMConfig,
    SecurityConfig,
    SystemConfig,
    default_config,
)
from repro.core import (
    AMNTProtocol,
    AnubisProtocol,
    BMFProtocol,
    CrashInjector,
    HistoryBuffer,
    LeafPersistenceProtocol,
    MemoryEncryptionEngine,
    MetadataPersistencePolicy,
    OsirisProtocol,
    RecoveryAnalysis,
    StrictPersistenceProtocol,
    VolatileProtocol,
    make_protocol,
    protocol_area_table,
    protocol_names,
)
from repro.errors import (
    ConfigError,
    CrashConsistencyError,
    IntegrityError,
    ReproError,
    SecurityError,
)
from repro.sim import (
    Machine,
    SimulationResult,
    build_machine,
    normalized_cycles,
    run_protocol_sweep,
    simulate,
    sweep_normalized,
)
from repro.workloads import Trace, WorkloadProfile, generate_trace

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration
    "SystemConfig",
    "PCMConfig",
    "SecurityConfig",
    "MetadataCacheConfig",
    "AMNTConfig",
    "default_config",
    # protocols & engine
    "MemoryEncryptionEngine",
    "MetadataPersistencePolicy",
    "make_protocol",
    "protocol_names",
    "VolatileProtocol",
    "StrictPersistenceProtocol",
    "LeafPersistenceProtocol",
    "OsirisProtocol",
    "AnubisProtocol",
    "BMFProtocol",
    "AMNTProtocol",
    "HistoryBuffer",
    "CrashInjector",
    "RecoveryAnalysis",
    "protocol_area_table",
    # simulation
    "Machine",
    "build_machine",
    "simulate",
    "SimulationResult",
    "normalized_cycles",
    "run_protocol_sweep",
    "sweep_normalized",
    # workloads
    "Trace",
    "WorkloadProfile",
    "generate_trace",
    # errors
    "ReproError",
    "ConfigError",
    "SecurityError",
    "IntegrityError",
    "CrashConsistencyError",
]
