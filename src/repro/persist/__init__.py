"""On-chip persistence primitives: non-volatile registers."""

from repro.persist.root_register import NonVolatileRegister, RegisterFile

__all__ = ["NonVolatileRegister", "RegisterFile"]
