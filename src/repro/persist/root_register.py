"""Non-volatile on-chip registers.

The trust anchors of every protocol in the paper live here: the global
BMT root (all protocols), AMNT's fast-subtree root, Anubis's shadow
Merkle tree root, BMF's persistent root set. These are modeled as named
registers that survive :meth:`RegisterFile.crash`, with byte-size
accounting so Table 3's non-volatile on-chip area column can be
reproduced by summing what a protocol actually allocated.

Registers hold small ``bytes`` payloads plus an optional structured tag
(e.g. AMNT stores the subtree's (level, index) beside its hash — in
hardware this is part of the same register).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass
class NonVolatileRegister:
    """One named NV register: value survives power loss."""

    name: str
    size_bytes: int
    value: bytes = b""
    tag: Optional[Tuple[int, ...]] = None

    def write(self, value: bytes, tag: Optional[Tuple[int, ...]] = None) -> None:
        if len(value) > self.size_bytes:
            raise ValueError(
                f"register {self.name!r} holds {self.size_bytes} bytes, "
                f"got {len(value)}"
            )
        self.value = bytes(value)
        if tag is not None:
            self.tag = tag

    def read(self) -> bytes:
        return self.value


@dataclass
class RegisterFile:
    """The chip's non-volatile register allocation."""

    _registers: Dict[str, NonVolatileRegister] = field(default_factory=dict)

    def allocate(self, name: str, size_bytes: int) -> NonVolatileRegister:
        if name in self._registers:
            raise ValueError(f"register {name!r} already allocated")
        if size_bytes <= 0:
            raise ValueError("register size must be positive")
        register = NonVolatileRegister(name, size_bytes)
        self._registers[name] = register
        return register

    def get(self, name: str) -> NonVolatileRegister:
        return self._registers[name]

    def total_bytes(self) -> int:
        """Non-volatile on-chip area consumed (Table 3 accounting)."""
        return sum(register.size_bytes for register in self._registers.values())

    def crash(self) -> None:
        """Power loss is a no-op for NV registers — that is the point.

        Present so crash-injection code can uniformly notify every
        on-chip structure; volatile structures lose state, these keep
        it.
        """

    def names(self):
        return sorted(self._registers)
