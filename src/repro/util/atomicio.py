"""Crash-safe file writes: write-temp, fsync, rename.

Every artifact this repository produces (benchmark reports, campaign
exports, sweep journals) goes through these helpers. A bare
``path.write_text`` interrupted mid-dump leaves a torn file — exactly
the failure mode the simulated persistence protocols exist to prevent,
so the harness holds itself to the same standard: a reader either sees
the complete previous version or the complete new one, never a prefix.

The recipe is the classic POSIX one:

1. write the full payload to a temporary file *in the same directory*
   (so the final rename cannot cross a filesystem boundary),
2. flush and ``fsync`` the temp file so the bytes are durable,
3. ``os.replace`` it over the destination (atomic on POSIX and on
   modern Windows),
4. best-effort ``fsync`` the directory so the rename itself survives
   power loss.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Mapping, Union

PathLike = Union[str, Path]


def fsync_directory(directory: PathLike) -> None:
    """Best-effort fsync of a directory entry (no-op where unsupported)."""
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: PathLike, text: str) -> Path:
    """Atomically replace ``path`` with ``text`` (UTF-8).

    The temp file is created with :func:`tempfile.mkstemp` in the
    destination directory, so concurrent writers cannot collide and a
    crash leaves at worst an orphaned ``.tmp`` sibling, never a torn
    destination.
    """
    path = Path(path)
    # Special destinations (/dev/null, FIFOs) cannot be atomically
    # replaced — renaming over a device node would destroy it. Fall
    # back to a plain write; "atomic" is meaningless there anyway.
    if path.exists() and not path.is_file():
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        return path
    directory = path.parent if str(path.parent) else Path(".")
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=str(directory)
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    fsync_directory(directory)
    return path


def atomic_write_json(
    path: PathLike,
    document: Any,
    indent: int = 2,
    sort_keys: bool = False,
) -> Path:
    """Serialize ``document`` and atomically write it to ``path``."""
    text = json.dumps(document, indent=indent, sort_keys=sort_keys) + "\n"
    return atomic_write_text(path, text)


def atomic_append_jsonl(path: PathLike, record: Any) -> Path:
    """Durably append one JSON record as a line of ``path``.

    Appends cannot use the write-temp-rename recipe without rewriting
    the whole file, so this uses the durable-append one instead: the
    record is serialized to a single line, written with one ``write``
    on an append-mode handle, and fsynced before returning. A crash can
    leave at worst a torn *final* line — never corrupt earlier records
    — which is why :func:`read_jsonl` skips an unparsable tail instead
    of failing. A writer that finds such a tear (file not ending in a
    newline) starts a fresh line first, so one crashed append never
    swallows the record after it.
    """
    path = Path(path)
    line = json.dumps(jsonable(record), separators=(",", ": ")) + "\n"
    created = not path.exists()
    if not created and path.stat().st_size > 0:
        with open(path, "rb") as tail:
            tail.seek(-1, os.SEEK_END)
            if tail.read(1) != b"\n":
                line = "\n" + line
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line)
        handle.flush()
        os.fsync(handle.fileno())
    if created:
        fsync_directory(path.parent if str(path.parent) else Path("."))
    return path


def read_jsonl(path: PathLike) -> list:
    """All parsable records of a JSONL file, in order.

    Tolerates the one corruption :func:`atomic_append_jsonl` can leave
    behind — a torn final line — by skipping unparsable lines rather
    than raising. A missing file reads as empty.
    """
    path = Path(path)
    if not path.exists():
        return []
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return records


def jsonable(value: Any) -> Any:
    """Recursively reduce ``value`` to plain JSON builtins.

    Dataclasses become dicts, mappings get string keys, tuples become
    lists, and anything unrecognized falls back to ``str`` — the same
    convention :mod:`repro.bench.export` has always used for artifact
    payloads.
    """
    if is_dataclass(value) and not isinstance(value, type):
        return {k: jsonable(v) for k, v in asdict(value).items()}
    if isinstance(value, Mapping):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)
