"""Deterministic random number generation.

Every stochastic component in the library (workload generators, fault
injectors) draws from an explicitly seeded generator created here, so
any experiment is exactly reproducible from its configuration. Nothing
in the package may use the global ``random`` module state.
"""

from __future__ import annotations

import random
from typing import Optional, Union

Seed = Union[int, str]


def make_rng(seed: Optional[Seed] = None) -> random.Random:
    """Create an isolated ``random.Random`` from a seed.

    String seeds are accepted so callers can derive stable per-component
    streams, e.g. ``make_rng(f"{base_seed}/trace/lbm")`` — two components
    never share a stream by accident.
    """
    if seed is None:
        seed = 0
    return random.Random(seed)


def derive_seed(base: Seed, *components: Seed) -> str:
    """Combine a base seed with component labels into a child seed.

    The result is a readable string, which ``random.Random`` hashes
    internally. Keeping the derivation textual makes seeds visible in
    logs and results files.
    """
    parts = [str(base)]
    parts.extend(str(component) for component in components)
    return "/".join(parts)
