"""Size and time unit helpers.

The simulator accounts time in CPU cycles. Device datasheets (and the
paper's Table 1) quote latencies in nanoseconds, so conversion helpers
live here. Binary prefixes are used throughout (1 KB = 1024 bytes), in
line with how memory capacities are specified in the paper.
"""

from __future__ import annotations

KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB

#: Default core clock used to convert device nanoseconds into cycles.
#: 2 GHz keeps the arithmetic simple (1 ns == 2 cycles) and is in the
#: range gem5's default out-of-order configurations use.
DEFAULT_CLOCK_GHZ = 2.0


def cycles_from_ns(nanoseconds: float, clock_ghz: float = DEFAULT_CLOCK_GHZ) -> int:
    """Convert a latency in nanoseconds to an integer cycle count.

    Rounds up: a device busy for any fraction of a cycle occupies the
    whole cycle.
    """
    if nanoseconds < 0:
        raise ValueError(f"latency must be non-negative, got {nanoseconds}")
    cycles = nanoseconds * clock_ghz
    whole = int(cycles)
    return whole if cycles == whole else whole + 1


def ns_from_cycles(cycles: int, clock_ghz: float = DEFAULT_CLOCK_GHZ) -> float:
    """Convert a cycle count back to nanoseconds."""
    if cycles < 0:
        raise ValueError(f"cycles must be non-negative, got {cycles}")
    return cycles / clock_ghz


def format_bytes(num_bytes: int) -> str:
    """Render a byte count with a binary-prefix unit, e.g. ``128.0MB``.

    Used by reports and ``__repr__`` methods; not meant for parsing.
    """
    if num_bytes < 0:
        raise ValueError(f"byte count must be non-negative, got {num_bytes}")
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB"):
        if value < 1024.0:
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024.0
    return f"{value:.1f}TB"
