"""Shared utilities: unit helpers, bit math, RNG, and statistics."""

from repro.util.bitops import (
    align_down,
    align_up,
    bit_length_exact,
    ceil_div,
    ilog2,
    is_aligned,
    is_power_of_two,
)
from repro.util.rng import make_rng
from repro.util.stats import StatCounter, StatRegistry
from repro.util.units import (
    GB,
    KB,
    MB,
    TB,
    cycles_from_ns,
    format_bytes,
    ns_from_cycles,
)

__all__ = [
    "KB",
    "MB",
    "GB",
    "TB",
    "cycles_from_ns",
    "ns_from_cycles",
    "format_bytes",
    "align_down",
    "align_up",
    "ceil_div",
    "ilog2",
    "bit_length_exact",
    "is_aligned",
    "is_power_of_two",
    "make_rng",
    "StatCounter",
    "StatRegistry",
]
