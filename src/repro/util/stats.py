"""Lightweight statistics counters for simulator components.

Every component (caches, protocols, the MEE, the OS allocator) owns a
:class:`StatRegistry` and increments named counters as events occur.
The registry is hierarchical by dotted name purely by convention —
``"mee.writes.strict_path"`` — and supports snapshot/diff so a harness
can measure a region of interest without resetting global state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Tuple


@dataclass(slots=True)
class StatCounter:
    """A single named monotonically increasing counter.

    Hot components pre-resolve counters once (``registry.counter(...)``)
    and bump ``.value`` directly; ``__slots__`` keeps each bump a fixed
    offset load instead of an instance-dict probe.
    """

    name: str
    value: int = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount

    def reset(self) -> None:
        self.value = 0


@dataclass
class StatRegistry:
    """A flat collection of named counters with snapshot support."""

    prefix: str = ""
    _counters: Dict[str, StatCounter] = field(default_factory=dict)

    def counter(self, name: str) -> StatCounter:
        """Get (creating if necessary) the counter called ``name``."""
        full = f"{self.prefix}.{name}" if self.prefix else name
        existing = self._counters.get(full)
        if existing is None:
            existing = StatCounter(full)
            self._counters[full] = existing
        return existing

    def add(self, name: str, amount: int = 1) -> None:
        """Increment ``name`` by ``amount`` (creating it at zero first)."""
        self.counter(name).add(amount)

    def get(self, name: str) -> int:
        """Current value of ``name`` (zero if never touched)."""
        full = f"{self.prefix}.{name}" if self.prefix else name
        counter = self._counters.get(full)
        return counter.value if counter is not None else 0

    def snapshot(self) -> Dict[str, int]:
        """An immutable-by-copy view of every counter's value."""
        return {name: counter.value for name, counter in self._counters.items()}

    def diff(self, earlier: Mapping[str, int]) -> Dict[str, int]:
        """Per-counter delta versus an earlier :meth:`snapshot`.

        Counters created after the snapshot diff against zero.
        """
        return {
            name: counter.value - earlier.get(name, 0)
            for name, counter in self._counters.items()
        }

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()

    def merge_from(self, other: "StatRegistry") -> None:
        """Add every counter from ``other`` into this registry."""
        for name, counter in other._counters.items():
            self.counter(name).add(counter.value)

    def items(self) -> Iterator[Tuple[str, int]]:
        for name in sorted(self._counters):
            yield name, self._counters[name].value

    def __len__(self) -> int:
        return len(self._counters)
