"""Bit-level math used by address decoding, cache indexing and the BMT.

Everything here is pure and branch-light; these helpers sit on the
simulator's hot path.
"""

from __future__ import annotations


def is_power_of_two(value: int) -> bool:
    """True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def ilog2(value: int) -> int:
    """Integer log2 of an exact power of two.

    Raises ``ValueError`` for zero, negatives, or non-powers-of-two —
    silent truncation here would corrupt address decoding.
    """
    if not is_power_of_two(value):
        raise ValueError(f"ilog2 requires a positive power of two, got {value}")
    return value.bit_length() - 1


def bit_length_exact(value: int) -> int:
    """Number of bits needed to represent ``value`` distinct states.

    E.g. a 64-entry structure needs 6 index bits.
    """
    if value <= 0:
        raise ValueError(f"need a positive state count, got {value}")
    if value == 1:
        return 0
    return (value - 1).bit_length()


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer division rounding toward positive infinity."""
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    return -(-numerator // denominator)


def is_aligned(value: int, alignment: int) -> bool:
    """True when ``value`` is a multiple of ``alignment`` (a power of two)."""
    if not is_power_of_two(alignment):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return (value & (alignment - 1)) == 0


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to the nearest multiple of ``alignment``."""
    if not is_power_of_two(alignment):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return value & ~(alignment - 1)


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the nearest multiple of ``alignment``."""
    if not is_power_of_two(alignment):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return (value + alignment - 1) & ~(alignment - 1)
