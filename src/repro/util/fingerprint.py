"""One digest implementation for every identity in the repository.

Three subsystems need to answer "is this the same thing I saw before?"
with a hash: run journals (manifest digests gate ``--resume``), the
content-addressed result store (cell fingerprints are object
addresses), and any future artifact that wants a stable identity.
Before this module each grew its own ``hashlib`` call; now they share
one, so a digest computed anywhere in the codebase means the same
thing everywhere.

Two canonical forms cover every use:

* :func:`digest_payload` — the *canonical-JSON* digest of any jsonable
  payload: the payload is reduced to JSON builtins through
  :func:`repro.util.atomicio.jsonable`, serialized with sorted keys and
  fixed separators, and hashed. Key order, whitespace, and container
  flavor (tuple vs list) cannot perturb the digest, which is what makes
  it safe to build store keys from nested dataclasses.
* :func:`sha256_hex` — the raw text/bytes digest the legacy manifest
  formulas are built on. :func:`config_digest` and :func:`grid_digest`
  preserve the exact bytes the run journals have always hashed
  (``repr(config)`` and newline-joined cell keys), so journals written
  by earlier versions still pass the resume manifest check.
"""

from __future__ import annotations

from hashlib import sha256
from typing import Any, Iterable, Union

import json

from repro.util.atomicio import jsonable


def sha256_hex(data: Union[str, bytes]) -> str:
    """Hex sha256 of text (UTF-8) or bytes — the one hash primitive."""
    if isinstance(data, str):
        data = data.encode("utf-8")
    return sha256(data).hexdigest()


def canonical_json(payload: Any) -> str:
    """Deterministic JSON rendering of any jsonable payload.

    Keys are sorted and separators fixed, so two payloads that are
    *semantically* equal (same values, any dict ordering, tuples or
    lists) render to byte-identical strings.
    """
    return json.dumps(
        jsonable(payload), sort_keys=True, separators=(",", ":")
    )


def digest_payload(payload: Any) -> str:
    """Canonical-JSON sha256 of a jsonable payload.

    The identity function of the result store: fingerprints are
    ``digest_payload`` over a cell's full input closure. Also suitable
    for any "has this config/spec/record changed?" check.
    """
    return sha256_hex(canonical_json(payload))


def config_digest(config: Any) -> str:
    """Manifest digest of a config object (legacy-compatible).

    Hashes the ``repr`` — dataclass reprs are deterministic and cover
    every field — exactly as :func:`repro.sim.supervisor.build_manifest`
    always has, so pre-existing journals remain resumable.
    """
    return sha256_hex(repr(config))


def grid_digest(keys: Iterable[str]) -> str:
    """Manifest digest of an ordered cell-key grid (legacy-compatible)."""
    return sha256_hex("\n".join(keys))
