"""Fault-injection campaigns: plan, fan out, aggregate.

A campaign turns "this protocol recovers from a crash" into a swept,
counted property. For every (protocol, workload) pair it first runs a
*probe* replay with an unarmed scheduler — a full functional run that
both sanity-checks the engine (reads are verified against the golden
shadow as they happen) and counts how many of each crash window the
pair exposes. From those counts it plans the crash cells:

* every-Nth-access triggers (``crash_every``),
* seeded random access triggers (``random_crashes``),
* phase-boundary triggers at ordinals spread across each observed
  phase's occurrences (``phase_samples`` per phase),
* tamper cells: access-triggered crashes followed by a seeded bit flip
  in the persisted NVM image, which the recovery/readback must detect.

Cells are picklable :class:`FaultCampaignSpec` values fanned over the
existing :class:`~repro.sim.parallel.ParallelSweepRunner`; every cell
is a pure function of (config, spec), so serial and parallel campaigns
are bit-identical. Results aggregate into a :class:`CampaignReport`
with per-protocol and per-phase verdict breakdowns and a JSON artifact
(written through :mod:`repro.bench.export`).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro import telemetry
from repro.config import MetadataCacheConfig, SystemConfig, default_config
from repro.errors import ConfigValidationError, FaultInjectionError
from repro.faults.crashstates import (
    DEFAULT_MAX_CRASH_STATES,
    explore_crash_states,
    worst_verdict,
)
from repro.faults.oracle import (
    VERDICT_RECOVERED,
    VERDICT_SILENT,
    run_oracle,
)
from repro.faults.triggers import (
    PHASE_AMNTPP_RESTRUCTURE,
    PHASE_PERSIST_WINDOW,
    CrashScheduler,
    CrashTrigger,
)
from repro.mem.backend import MetadataRegion
from repro.sim.engine import drive_memory_boundary
from repro.sim.machine import build_machine
from repro.sim.parallel import ParallelSweepRunner
from repro.sim.supervisor import (
    CellFailure,
    RunJournal,
    SupervisedRunner,
    SupervisionPolicy,
    build_manifest,
    split_outcomes,
)
from repro.util.rng import Seed, make_rng
from repro.util.units import KB, MB
from repro.workloads.registry import (
    TraceSpec,
    materialize_trace,
    validate_trace_spec,
)

#: Verdict label for probe (unarmed) cells.
VERDICT_BASELINE = "baseline"

#: Tamper targets: flip a bit in a persisted data block / counter line.
TAMPER_TARGETS = ("data", "counter")


@dataclass(frozen=True, slots=True)
class FaultCampaignSpec:
    """One picklable campaign cell: who crashes, when, and how.

    ``trigger=None`` is the probe form: replay to completion, verify
    reads, count phase occurrences. ``config`` overrides the campaign
    config per cell (mirrors :class:`~repro.sim.parallel.SweepCell`).
    """

    protocol: str
    trace: TraceSpec
    trigger: Optional[CrashTrigger] = None
    seed: Seed = 0
    #: "" for a clean crash, else a TAMPER_TARGETS entry.
    tamper: str = ""
    churn_interval: int = 1024
    config: Optional[SystemConfig] = None
    #: Crash-state exploration budget (persist_model="wpq" cells):
    #: drain subsets beyond this are sampled, never silently dropped.
    max_crash_states: int = DEFAULT_MAX_CRASH_STATES
    #: Also audit one half-applied (torn) variant per pending line.
    torn_lines: bool = True


@dataclass(frozen=True, slots=True)
class FaultCellOutcome:
    """Flat, picklable result of one campaign cell."""

    protocol: str
    workload: str
    trigger: str
    seed: str
    tamper: str
    verdict: str
    crash_phase: str = ""
    crash_occurrence: int = 0
    crash_access_index: int = -1
    write_committed: bool = False
    accesses_completed: int = 0
    recovery_ok: bool = False
    recovery_detail: str = ""
    nodes_recomputed: int = 0
    blocks_checked: int = 0
    blocks_recovered: int = 0
    blocks_detected: int = 0
    blocks_diverged: int = 0
    pages_verified: int = 0
    pages_inconsistent: int = 0
    in_flight_outcome: str = "none"
    tamper_detail: str = ""
    crash_consistent: bool = True
    #: Phase-occurrence counts observed up to the crash (or the whole
    #: run for probes): (("mdcache_eviction", 12), ...).
    phase_counts: Tuple[Tuple[str, int], ...] = ()
    anomaly: str = ""
    first_divergence: str = ""
    #: The crash fired inside an open persist group (persist-window
    #: triggers): partial fences are expected, so "detected" carries
    #: no anomaly for crash-consistent protocols.
    crash_in_group: bool = False
    #: Crash-state coverage (persist_model="wpq" cells; all zero under
    #: write-through). ``crash_states_total`` counts every reachable
    #: fence-respecting drain subset including the as-crashed image;
    #: explored = audited subsets (+ torn variants + as-crashed pass).
    crash_states_total: int = 0
    crash_states_explored: int = 0
    crash_states_sampled: int = 0
    crash_states_skipped: int = 0
    torn_states: int = 0
    #: "" (no WPQ) | "exhaustive" | "sampled".
    exploration: str = ""
    #: Label of the most severe explored state, when not recovered.
    worst_state: str = ""

    @property
    def phase_label(self) -> str:
        """Reporting key: the crash window this cell landed in."""
        return self.crash_phase or "none"


def default_fault_config(
    capacity_bytes: int = 64 * MB,
    metadata_cache_bytes: int = 8 * KB,
    persist_model: str = "writethrough",
) -> SystemConfig:
    """Campaign default: a small machine under eviction pressure.

    The paper-sized 64 kB metadata cache never evicts on a
    campaign-sized trace, which would leave the ``mdcache_eviction``
    crash window unexercised; an 8 kB cache restores the pressure.
    ``persist_model="wpq"`` additionally stages functional stores in a
    write-pending queue so crashed cells explore every reachable drain
    subset (repro.faults.crashstates).
    """
    config = default_config(capacity_bytes=capacity_bytes)
    return replace(
        config,
        metadata_cache=MetadataCacheConfig(capacity_bytes=metadata_cache_bytes),
        persist_model=persist_model,
    )


# ----------------------------------------------------------------------
# one cell
# ----------------------------------------------------------------------


def run_fault_cell(
    spec: FaultCampaignSpec, config: SystemConfig
) -> FaultCellOutcome:
    """Build, replay, crash, (tamper,) recover, audit — one cell."""
    cell_config = spec.config if spec.config is not None else config
    trace = materialize_trace(spec.trace)
    # Fault campaigns force eager/functional mode unconditionally — no
    # flag reaches here. Crash bit-exactness is the whole point of the
    # oracle, so the hardware-faithful update discipline is not
    # negotiable even though lazy materialization is equivalence-tested.
    # Boundary-stream replay (repro.sim.replay) is likewise bypassed:
    # a crash ordinal counts *accesses*, not boundary events, and the
    # injector must observe the live LLC/OS state at the crash point,
    # so every fault cell keeps the full direct simulate() path.
    machine = build_machine(
        cell_config,
        spec.protocol,
        functional=True,
        seed=spec.seed,
        integrity_mode="eager",
    )
    mee = machine.mee
    if not mee.functional or mee.tree is None or mee.tree.lazy:
        raise FaultInjectionError(
            "fault campaigns require eager functional-mode machines"
        )
    scheduler = CrashScheduler(spec.trigger)
    mee.fault_probe = scheduler
    restructurer = machine.mm.restructurer
    if restructurer is not None:
        restructurer.phase_hook = lambda: scheduler.on_phase(
            PHASE_AMNTPP_RESTRUCTURE
        )
    try:
        record = drive_memory_boundary(
            machine,
            trace,
            seed=spec.seed,
            scheduler=scheduler,
            churn_interval=spec.churn_interval,
        )
    finally:
        # The oracle's own reads must not re-arm the bomb.
        mee.fault_probe = None
        if restructurer is not None:
            restructurer.phase_hook = None

    common = dict(
        protocol=spec.protocol,
        workload=spec.trace.label(),
        trigger=spec.trigger.describe() if spec.trigger else "probe",
        seed=str(spec.seed),
        tamper=spec.tamper,
        accesses_completed=record.accesses_completed,
        crash_consistent=mee.protocol.is_crash_consistent,
        phase_counts=tuple(sorted(scheduler.phase_counts.items())),
    )

    if not record.crashed:
        anomaly = "" if spec.trigger is None else "trigger-not-fired"
        return FaultCellOutcome(
            verdict=VERDICT_BASELINE, anomaly=anomaly, **common
        )

    mee.crash()
    # Freeze the write-pending queue before anything (tamper, recovery,
    # per-state audits) writes through the backend again: the undo log
    # must describe exactly the stores that were volatile at the cut.
    wpq = mee.nvm.wpq
    pending = wpq.freeze() if wpq is not None else []
    tamper_detail = ""
    if spec.tamper:
        tamper_detail = _tamper(mee, record, spec)
    exploration = None
    if pending:
        # Audits every reachable rollback first, then leaves the
        # machine back on the as-crashed (all-drained) image for the
        # ordinary oracle pass below.
        exploration = explore_crash_states(
            mee,
            record,
            pending,
            max_crash_states=spec.max_crash_states,
            torn_lines=spec.torn_lines,
            seed=spec.seed,
        )
    report = run_oracle(mee, record)

    verdict = report.verdict
    first_divergence = report.first_divergence
    worst_state = ""
    if exploration is not None and exploration.outcomes:
        worst = exploration.worst
        verdict = worst_verdict([report.verdict, worst.verdict])
        if worst.verdict != VERDICT_RECOVERED and verdict == worst.verdict:
            worst_state = worst.label
        if not first_divergence:
            for state in exploration.silent_states():
                first_divergence = f"[{state.label}] {state.detail}"
                break

    anomaly = ""
    if spec.tamper and tamper_detail and report.verdict == VERDICT_RECOVERED:
        anomaly = "tamper-missed"
    elif (
        not spec.tamper
        and mee.protocol.is_crash_consistent
        and not record.crash_in_group
        and report.verdict != VERDICT_RECOVERED
    ):
        # Judged on the as-crashed image: a rolled-back drain subset
        # that recovery refuses loudly is correct "detected" behaviour,
        # not an anomaly — only silent divergence (caught above via the
        # cell verdict) ever is. Inside an open persist group the
        # write's fences are partially issued, so even the as-crashed
        # image may legitimately be refused.
        anomaly = "clean-cell-not-recovered"

    if wpq is not None:
        states_total = exploration.total_reachable if exploration else 1
        states_explored = (exploration.explored if exploration else 0) + 1
        states_sampled = exploration.sampled if exploration else 0
        states_skipped = exploration.skipped if exploration else 0
        torn_states = exploration.torn if exploration else 0
        exploration_label = (
            "exhaustive"
            if exploration is None or exploration.exhaustive
            else "sampled"
        )
    else:
        states_total = states_explored = states_sampled = 0
        states_skipped = torn_states = 0
        exploration_label = ""

    return FaultCellOutcome(
        verdict=verdict,
        crash_phase=record.crash_phase,
        crash_occurrence=record.crash_occurrence,
        crash_access_index=record.crash_access_index,
        write_committed=record.crash_write_committed,
        recovery_ok=report.recovery_ok,
        recovery_detail=report.recovery_detail,
        nodes_recomputed=report.nodes_recomputed,
        blocks_checked=report.blocks_checked,
        blocks_recovered=report.blocks_recovered,
        blocks_detected=report.blocks_detected,
        blocks_diverged=report.blocks_diverged,
        pages_verified=report.pages_verified,
        pages_inconsistent=report.pages_inconsistent,
        in_flight_outcome=report.in_flight_outcome,
        tamper_detail=tamper_detail,
        anomaly=anomaly,
        first_divergence=first_divergence,
        crash_in_group=record.crash_in_group,
        crash_states_total=states_total,
        crash_states_explored=states_explored,
        crash_states_sampled=states_sampled,
        crash_states_skipped=states_skipped,
        torn_states=torn_states,
        exploration=exploration_label,
        worst_state=worst_state,
        **common,
    )


def _tamper(mee, record, spec: FaultCampaignSpec) -> str:
    """Flip one seeded bit in the persisted NVM image; returns a
    description, or "" when the image holds nothing to tamper with."""
    rng = make_rng(
        f"{spec.seed}/tamper/{spec.protocol}/{spec.trace.label()}"
        f"/{spec.trigger.describe() if spec.trigger else 'probe'}"
    )
    backend = mee.nvm.backend
    block_bytes = mee.config.security.block_bytes
    if spec.tamper == "counter":
        pages = sorted(
            {mee.address_space.page_index(base) for base in record.golden}
        )
        persisted = [
            index
            for index in pages
            if backend.contains(MetadataRegion.COUNTERS, index)
        ]
        if persisted:
            index = rng.choice(persisted)
            raw = bytearray(
                backend.read(MetadataRegion.COUNTERS, index, block_bytes)
            )
            bit = rng.randrange(len(raw) * 8)
            raw[bit // 8] ^= 1 << (bit % 8)
            backend.write(MetadataRegion.COUNTERS, index, bytes(raw))
            return f"counter[{index}] bit {bit}"
        return ""
    written = sorted(
        base
        for base in record.golden
        if backend.contains(
            MetadataRegion.DATA, mee.address_space.block_index(base)
        )
    )
    if not written:
        return ""
    base = rng.choice(written)
    block = mee.address_space.block_index(base)
    raw = bytearray(backend.read(MetadataRegion.DATA, block, block_bytes))
    bit = rng.randrange(len(raw) * 8)
    raw[bit // 8] ^= 1 << (bit % 8)
    backend.write(MetadataRegion.DATA, block, bytes(raw))
    return f"data[{block:#x}] bit {bit}"


def _fault_pool_entry(
    payload: Tuple[FaultCampaignSpec, SystemConfig]
) -> FaultCellOutcome:
    """Top-level pool target (must be importable for spawn contexts)."""
    spec, config = payload
    return run_fault_cell(spec, config)


# ----------------------------------------------------------------------
# journal codec and keys
# ----------------------------------------------------------------------

_OUTCOME_FIELDS = frozenset(f.name for f in fields(FaultCellOutcome))


def outcome_to_payload(outcome: FaultCellOutcome) -> Dict[str, Any]:
    """JSON-able journal payload of one cell outcome."""
    return asdict(outcome)


def outcome_from_payload(payload: Dict[str, Any]) -> FaultCellOutcome:
    """Inverse of :func:`outcome_to_payload`.

    JSON turns the ``phase_counts`` tuple-of-tuples into lists; restore
    the canonical shape so a journaled outcome compares equal to the
    freshly computed one (the property kill-and-resume tests assert).
    """
    data = {k: v for k, v in payload.items() if k in _OUTCOME_FIELDS}
    data["phase_counts"] = tuple(
        (str(phase), int(count))
        for phase, count in data.get("phase_counts", ())
    )
    return FaultCellOutcome(**data)


def fault_spec_key(stage: str, index: int, spec: FaultCampaignSpec) -> str:
    """Stable journal identity of one campaign cell.

    The ``index`` prefix guarantees uniqueness (planned tamper points
    can collide on tiny traces); it is deterministic because planning
    is a pure function of the probe outcomes and campaign parameters.
    """
    trigger = spec.trigger.describe() if spec.trigger else "probe"
    return (
        f"{stage}/{index:04d}/{spec.protocol}/{spec.trace.label()}"
        f"/a{spec.trace.accesses}/{trigger}/{spec.tamper or 'clean'}"
        f"/s{spec.seed}"
    )


def validate_campaign(
    protocols: Sequence[str], traces: Sequence[TraceSpec]
) -> None:
    """Reject unknown protocols/workloads before any probe runs."""
    from repro.core.protocol import protocol_names

    known = set(protocol_names())
    for protocol in protocols:
        if protocol not in known:
            raise ConfigValidationError(
                "campaign.protocols",
                f"unknown protocol {protocol!r}; known: {sorted(known)}",
            )
    for trace in traces:
        validate_trace_spec(trace)


# ----------------------------------------------------------------------
# planning and aggregation
# ----------------------------------------------------------------------


def spread_ordinals(count: int, samples: int) -> List[int]:
    """Up to ``samples`` 1-based ordinals spread evenly over
    ``count`` occurrences, always including the first and last."""
    if count <= 0 or samples <= 0:
        return []
    if count <= samples:
        return list(range(1, count + 1))
    if samples == 1:
        return [(count + 1) // 2]
    return sorted(
        {round(i * (count - 1) / (samples - 1)) + 1 for i in range(samples)}
    )


@dataclass
class CampaignReport:
    """Aggregated campaign outcome."""

    parameters: Dict[str, Any]
    baselines: List[FaultCellOutcome]
    cells: List[FaultCellOutcome]
    #: Quarantined cells (supervised runs): the run completed without
    #: them, but they must surface in reports and exit codes.
    failures: List[CellFailure] = field(default_factory=list)

    def by_protocol(self) -> Dict[str, Dict[str, int]]:
        return self._matrix(lambda cell: cell.protocol)

    def by_phase(self) -> Dict[str, Dict[str, int]]:
        return self._matrix(lambda cell: cell.phase_label)

    def _matrix(self, key) -> Dict[str, Dict[str, int]]:
        counts: Dict[str, Dict[str, int]] = {}
        for cell in self.cells:
            row = counts.setdefault(key(cell), {})
            row[cell.verdict] = row.get(cell.verdict, 0) + 1
        return counts

    def phase_occurrences(self) -> Dict[str, int]:
        """Total crash-window occurrences observed by the probes."""
        totals: Dict[str, int] = {}
        for probe in self.baselines:
            for phase, count in probe.phase_counts:
                totals[phase] = totals.get(phase, 0) + count
        return totals

    def silent_cells(self) -> List[FaultCellOutcome]:
        return [c for c in self.cells if c.verdict == VERDICT_SILENT]

    def crash_state_coverage(self) -> Dict[str, int]:
        """Aggregate crash-state exploration counts across all cells.

        All zero for write-through campaigns (no WPQ, one reachable
        state per crash, already covered by the ordinary oracle pass).
        """
        coverage = {
            "total_reachable": 0,
            "explored": 0,
            "sampled": 0,
            "skipped": 0,
            "torn": 0,
            "exhaustive_cells": 0,
            "sampled_cells": 0,
        }
        for cell in self.cells:
            coverage["total_reachable"] += cell.crash_states_total
            coverage["explored"] += cell.crash_states_explored
            coverage["sampled"] += cell.crash_states_sampled
            coverage["skipped"] += cell.crash_states_skipped
            coverage["torn"] += cell.torn_states
            if cell.exploration == "exhaustive":
                coverage["exhaustive_cells"] += 1
            elif cell.exploration == "sampled":
                coverage["sampled_cells"] += 1
        return coverage

    def anomalies(self) -> List[FaultCellOutcome]:
        return [
            c for c in self.baselines + self.cells if c.anomaly
        ]

    def summary(self) -> Dict[str, Any]:
        verdicts: Dict[str, int] = {}
        for cell in self.cells:
            verdicts[cell.verdict] = verdicts.get(cell.verdict, 0) + 1
        return {
            "cells": len(self.cells),
            "baselines": len(self.baselines),
            "verdicts": verdicts,
            "by_protocol": self.by_protocol(),
            "by_phase": self.by_phase(),
            "phase_occurrences": self.phase_occurrences(),
            "silent_divergence": len(self.silent_cells()),
            "anomalies": len(self.anomalies()),
            "failed_cells": len(self.failures),
            "crash_states": self.crash_state_coverage(),
        }

    def write_json(self, path) -> None:
        from repro.bench.export import export_experiment

        export_experiment(
            "fault-campaign",
            {
                "summary": self.summary(),
                "baselines": list(self.baselines),
                "cells": list(self.cells),
                "failures": list(self.failures),
            },
            path,
            parameters=self.parameters,
        )


def plan_cells(
    baseline: FaultCellOutcome,
    probe_spec: FaultCampaignSpec,
    crash_every: int = 0,
    random_crashes: int = 0,
    phase_samples: int = 3,
    tamper_crashes: int = 0,
    tamper_target: str = "data",
) -> List[FaultCampaignSpec]:
    """Crash cells for one (protocol, workload), from its probe run."""
    total = baseline.accesses_completed
    specs: List[FaultCampaignSpec] = []
    points = set()
    if crash_every > 0:
        points.update(range(crash_every, total, crash_every))
    if random_crashes > 0:
        rng = make_rng(
            f"{probe_spec.seed}/faults/plan/{probe_spec.protocol}"
            f"/{probe_spec.trace.label()}"
        )
        candidates = range(1, max(2, total))
        picks = min(random_crashes, len(candidates))
        points.update(rng.sample(candidates, picks))
    for at in sorted(points):
        specs.append(replace(probe_spec, trigger=CrashTrigger("access", at)))
    for phase, count in baseline.phase_counts:
        for ordinal in spread_ordinals(count, phase_samples):
            specs.append(
                replace(
                    probe_spec,
                    trigger=CrashTrigger("phase", ordinal, phase),
                )
            )
    # Persist-window cells cut power *inside* the open group (a phase
    # trigger on the same window defers to the group commit instead):
    # together the two kinds cover both edges of every persist group.
    window_count = dict(baseline.phase_counts).get(PHASE_PERSIST_WINDOW, 0)
    for ordinal in spread_ordinals(window_count, phase_samples):
        specs.append(
            replace(
                probe_spec,
                trigger=CrashTrigger("persist-window", ordinal),
            )
        )
    for i in range(tamper_crashes):
        at = max(1, total * (i + 1) // (tamper_crashes + 1))
        specs.append(
            replace(
                probe_spec,
                trigger=CrashTrigger("access", at),
                tamper=tamper_target,
            )
        )
    return specs


def run_campaign(
    protocols: Sequence[str],
    traces: Sequence[TraceSpec],
    config: Optional[SystemConfig] = None,
    crash_every: int = 0,
    random_crashes: int = 0,
    phase_samples: int = 3,
    tamper_crashes: int = 0,
    tamper_target: str = "data",
    seed: Seed = 0,
    churn_interval: int = 1024,
    max_crash_states: int = DEFAULT_MAX_CRASH_STATES,
    torn_lines: bool = True,
    workers: Optional[int] = 1,
    run_dir: Optional[Union[str, Path]] = None,
    resume: bool = False,
    policy: Optional[SupervisionPolicy] = None,
) -> CampaignReport:
    """Probe, plan, and sweep the full campaign grid.

    With ``run_dir`` set the campaign runs under supervision: every
    probe and cell outcome is checkpointed to a crash-safe journal in
    that directory, failed cells are retried and then quarantined
    instead of aborting, and ``resume=True`` continues a killed run —
    producing a report bit-identical to an uninterrupted one (planning
    is a pure function of the journaled probe outcomes). ``policy``
    alone (no ``run_dir``) supervises without journaling.
    """
    if config is None:
        config = default_fault_config()
    protocols = list(protocols)
    traces = list(traces)
    validate_campaign(protocols, traces)
    probe_specs = [
        FaultCampaignSpec(
            protocol=protocol,
            trace=trace,
            trigger=None,
            seed=seed,
            churn_interval=churn_interval,
            max_crash_states=max_crash_states,
            torn_lines=torn_lines,
        )
        for protocol in protocols
        for trace in traces
    ]
    parameters = {
        "protocols": list(protocols),
        "workloads": [trace.label() for trace in traces],
        "crash_every": crash_every,
        "random_crashes": random_crashes,
        "phase_samples": phase_samples,
        "tamper_crashes": tamper_crashes,
        "tamper_target": tamper_target,
        "seed": seed,
        "churn_interval": churn_interval,
        "persist_model": config.persist_model,
        "max_crash_states": max_crash_states,
        "torn_lines": torn_lines,
        "capacity_bytes": config.pcm.capacity_bytes,
        "metadata_cache_bytes": config.metadata_cache.capacity_bytes,
    }

    supervised = run_dir is not None or policy is not None
    if not supervised:
        runner = ParallelSweepRunner(workers=workers)
        baselines = runner.map(
            _fault_pool_entry, [(spec, config) for spec in probe_specs]
        )
        specs = _plan_all(
            baselines,
            probe_specs,
            crash_every=crash_every,
            random_crashes=random_crashes,
            phase_samples=phase_samples,
            tamper_crashes=tamper_crashes,
            tamper_target=tamper_target,
        )
        cells = runner.map(
            _fault_pool_entry, [(spec, config) for spec in specs]
        )
        report = CampaignReport(
            parameters=parameters, baselines=baselines, cells=cells
        )
        _record_campaign_telemetry(report)
        return report

    probe_keys = [
        fault_spec_key("probe", i, spec)
        for i, spec in enumerate(probe_specs)
    ]
    journal = None
    if run_dir is not None:
        manifest = build_manifest(
            "fault-campaign", config, probe_keys, parameters
        )
        journal = RunJournal.open(run_dir, manifest, resume=resume)
    supervisor = SupervisedRunner(
        workers=workers, policy=policy, journal=journal
    )
    probe_outcomes = supervisor.map(
        _fault_pool_entry,
        [(spec, config) for spec in probe_specs],
        probe_keys,
        encode=outcome_to_payload,
        decode=outcome_from_payload,
    )
    # A quarantined probe removes its (protocol, workload) pair from
    # planning — deterministically, since the failure is journaled too.
    planned_baselines = [
        None if isinstance(outcome, CellFailure) else outcome
        for outcome in probe_outcomes
    ]
    specs = _plan_all(
        planned_baselines,
        probe_specs,
        crash_every=crash_every,
        random_crashes=random_crashes,
        phase_samples=phase_samples,
        tamper_crashes=tamper_crashes,
        tamper_target=tamper_target,
    )
    cell_keys = [
        fault_spec_key("cell", i, spec) for i, spec in enumerate(specs)
    ]
    cell_outcomes = supervisor.map(
        _fault_pool_entry,
        [(spec, config) for spec in specs],
        cell_keys,
        encode=outcome_to_payload,
        decode=outcome_from_payload,
    )
    baselines, probe_failures = split_outcomes(probe_outcomes)
    cells, cell_failures = split_outcomes(cell_outcomes)
    report = CampaignReport(
        parameters=parameters,
        baselines=baselines,
        cells=cells,
        failures=probe_failures + cell_failures,
    )
    _record_campaign_telemetry(report)
    return report


def _record_campaign_telemetry(report: "CampaignReport") -> None:
    """Fold campaign verdicts into metrics and the event sink.

    Runs parent-side on the assembled report so counts are complete no
    matter which worker (or the in-process fallback) ran each cell, and
    are never double counted across pool and fallback paths.
    """
    telemetry.record_fault_outcomes(report.cells)
    for cell in report.cells:
        telemetry.emit_event(
            "fault_verdict",
            protocol=cell.protocol,
            workload=cell.workload,
            verdict=cell.verdict,
            phase=cell.phase_label,
        )
    telemetry.get_sink().flush()


def _plan_all(
    baselines: Sequence[Optional[FaultCellOutcome]],
    probe_specs: Sequence[FaultCampaignSpec],
    **plan_kwargs: Any,
) -> List[FaultCampaignSpec]:
    """Crash cells for every successfully probed (protocol, workload)."""
    specs: List[FaultCampaignSpec] = []
    for baseline, probe_spec in zip(baselines, probe_specs):
        if baseline is None:
            continue
        specs.extend(plan_cells(baseline, probe_spec, **plan_kwargs))
    return specs
