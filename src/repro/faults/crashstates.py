"""Crash-state exploration: every NVM image a power cut could leave.

Under ``persist_model="wpq"`` (repro.mem.nvm) a crashed machine's
backend holds every store *applied*, while the write-pending queue's
undo log records which lines were still volatile and in which fence
epoch each value was enqueued. The reachable post-crash images are the
*fence-respecting* rollbacks of that log: a value enqueued in epoch
``e`` may only survive if every value from earlier epochs survives too
(fences order the queue), while values within one epoch drain in any
order (any subset may survive). Formally, each reachable state picks a
boundary epoch ``k`` — epochs below ``k`` fully drained, epochs above
``k`` fully lost — plus an arbitrary subset of the epoch-``k`` lines,
giving::

    reachable = 1 + sum over epochs k of (2^lines_at(k) - 1)

(the ``1`` is the nothing-drained state; the all-drained state is the
full subset at the last epoch — it is the image as crashed, audited by
the campaign's ordinary oracle pass and therefore not re-emitted
here).

When ``reachable`` fits the budget every state is enumerated
(*exhaustive*); beyond it, states are seeded-random *sampled* — always
including the nothing-drained extreme — and the skipped count is
reported so truncation is never silent. *Torn-line* variants add, per
pending line, one image where the line's newest value is half-applied:
``new[:cut] + previous[cut:]`` at a seeded byte offset, modeling a
64-byte line interrupted mid-burst.

Each state is materialized as a patched clone of the crashed image and
judged by the existing recovery + oracle contract
(repro.faults.oracle): ``recovered`` and ``detected`` are acceptable,
``silent-divergence`` never is. The non-volatile registers (and the
tree's root register) are restored from their crash-time snapshot
before every state so one state's recovery cannot leak into the next.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.oracle import (
    VERDICT_DETECTED,
    VERDICT_RECOVERED,
    VERDICT_SILENT,
    run_oracle,
)
from repro.mem.backend import Key, MetadataRegion, SparseMemory
from repro.mem.nvm import PendingLine
from repro.util.rng import Seed, make_rng

#: Default ceiling on enumerated/sampled drain subsets per crash
#: (2^12; the ISSUE's exhaustiveness bound).
DEFAULT_MAX_CRASH_STATES = 4096

#: Verdict severity for worst-across-states aggregation.
_SEVERITY = {VERDICT_RECOVERED: 0, VERDICT_DETECTED: 1, VERDICT_SILENT: 2}


def worst_verdict(verdicts: Sequence[str]) -> str:
    """The most severe verdict of a non-empty sequence."""
    return max(verdicts, key=lambda v: _SEVERITY.get(v, 2))


# ----------------------------------------------------------------------
# state planning (pure — unit-testable without a machine)
# ----------------------------------------------------------------------


#: One line's rollback target: ``None`` erases the line (it did not
#: exist before the first un-drained store), bytes installs that value.
Patch = Tuple[Tuple[MetadataRegion, Key, Optional[bytes]], ...]


@dataclass(frozen=True, slots=True)
class CrashState:
    """One reachable post-crash image, as a patch over the full image."""

    label: str
    patch: Patch
    sampled: bool = False
    torn: bool = False


@dataclass
class CrashStatePlan:
    """Every image the explorer will audit, plus coverage accounting."""

    states: List[CrashState]
    #: All fence-respecting subsets, including the all-drained state
    #: audited by the ordinary oracle pass (not re-emitted here).
    total_reachable: int
    exhaustive: bool
    sampled: int
    skipped: int
    torn: int


def _value_before(line: PendingLine, version_index: int) -> Optional[bytes]:
    """The line's content if versions[version_index] had not drained."""
    if version_index == 0:
        return line.original if line.existed else None
    return line.versions[version_index - 1][1]


def _rollback_to(line: PendingLine, boundary: int, include_at: bool):
    """(changed, value) once epochs above ``boundary`` are lost.

    ``include_at`` keeps the line's epoch-``boundary`` version (the
    free subset choice). ``changed`` is False when every version
    survives, i.e. the image already holds the right bytes.
    """
    applied = -1
    for i, (epoch, _) in enumerate(line.versions):
        if epoch < boundary or (epoch == boundary and include_at):
            applied = i
    if applied == len(line.versions) - 1:
        return False, None
    if applied < 0:
        return True, (line.original if line.existed else None)
    return True, line.versions[applied][1]


def _subset_patch(
    lines: Sequence[PendingLine], boundary: int, chosen: Sequence[PendingLine]
) -> Patch:
    chosen_ids = {id(line) for line in chosen}
    patch = []
    for line in lines:
        changed, value = _rollback_to(
            line, boundary, include_at=id(line) in chosen_ids
        )
        if changed:
            patch.append((line.region, line.key, value))
    return tuple(patch)


def _line_label(line: PendingLine) -> str:
    return f"{line.region.value}:{line.key}"


def plan_crash_states(
    pending: Sequence[PendingLine],
    max_crash_states: int = DEFAULT_MAX_CRASH_STATES,
    torn_lines: bool = True,
    seed: Seed = 0,
) -> CrashStatePlan:
    """Enumerate (or sample) the fence-respecting rollback states.

    Pure function of the frozen pending set: exhaustive when the
    reachable count (minus the all-drained state) fits
    ``max_crash_states``, else seeded-random sampling with exact
    skipped-state accounting. Torn variants ride on top and do not
    consume the subset budget (they are bounded by the pending line
    count).
    """
    lines = list(pending)
    if not lines:
        return CrashStatePlan(
            states=[],
            total_reachable=1,
            exhaustive=True,
            sampled=0,
            skipped=0,
            torn=0,
        )
    epochs = sorted({epoch for line in lines for epoch, _ in line.versions})
    lines_at: Dict[int, List[PendingLine]] = {
        epoch: [
            line
            for line in lines
            if any(e == epoch for e, _ in line.versions)
        ]
        for epoch in epochs
    }
    total_reachable = 1 + sum(
        (1 << len(group)) - 1 for group in lines_at.values()
    )

    states: List[CrashState] = []

    def subset_state(
        boundary: int, mask: int, sampled: bool
    ) -> CrashState:
        group = lines_at[boundary]
        chosen = [line for i, line in enumerate(group) if mask >> i & 1]
        return CrashState(
            label=f"epoch{boundary}:mask{mask:x}",
            patch=_subset_patch(lines, boundary, chosen),
            sampled=sampled,
        )

    base = CrashState(
        label="none-drained", patch=_subset_patch(lines, epochs[0], [])
    )
    candidates = total_reachable - 1  # all-drained audited separately
    if candidates <= max_crash_states:
        exhaustive = True
        sampled_count = 0
        states.append(base)
        last_epoch = epochs[-1]
        for boundary in epochs:
            group = lines_at[boundary]
            full = (1 << len(group)) - 1
            for mask in range(1, full + 1):
                if boundary == last_epoch and mask == full:
                    continue  # the all-drained state (ordinary pass)
                states.append(subset_state(boundary, mask, sampled=False))
    else:
        exhaustive = False
        rng = make_rng(f"{seed}/crashstates/{len(lines)}/{total_reachable}")
        # Boundary epochs weighted by how many subsets they own, so the
        # sample is uniform over reachable states.
        weights = [(1 << len(lines_at[e])) - 1 for e in epochs]
        states.append(base)
        seen = {("", 0)}
        budget = max(1, max_crash_states)
        attempts = 0
        while len(states) < budget and attempts < budget * 32:
            attempts += 1
            boundary = rng.choices(epochs, weights=weights)[0]
            mask = rng.randrange(1, 1 << len(lines_at[boundary]))
            if boundary == epochs[-1] and mask == (
                (1 << len(lines_at[boundary])) - 1
            ):
                continue
            if (boundary, mask) in seen:
                continue
            seen.add((boundary, mask))
            states.append(subset_state(boundary, mask, sampled=True))
        sampled_count = len(states) - 1
    skipped = candidates - len(states)

    torn_count = 0
    if torn_lines:
        rng = make_rng(f"{seed}/crashstates/torn/{len(lines)}")
        for line in lines:
            epoch, new = line.versions[-1][0], line.versions[-1][1]
            if len(new) < 2:
                continue  # nothing to tear in a 1-byte line
            prev = _value_before(line, len(line.versions) - 1)
            prev_bytes = prev if prev is not None else bytes(len(new))
            if len(prev_bytes) < len(new):
                prev_bytes = prev_bytes + bytes(len(new) - len(prev_bytes))
            cut = rng.randrange(1, len(new))
            torn_value = new[:cut] + prev_bytes[cut : len(new)]
            if torn_value == new:
                continue  # tear is invisible; skip the duplicate image
            # Everything below the line's last epoch drained, nothing
            # else at/above it — the state in which this line was the
            # one mid-burst when the power died.
            patch = list(_subset_patch(lines, epoch, []))
            patch = [
                entry for entry in patch if entry[:2] != (line.region, line.key)
            ]
            patch.append((line.region, line.key, torn_value))
            states.append(
                CrashState(
                    label=f"torn:{_line_label(line)}@{cut}",
                    patch=tuple(patch),
                    torn=True,
                )
            )
            torn_count += 1

    return CrashStatePlan(
        states=states,
        total_reachable=total_reachable,
        exhaustive=exhaustive,
        sampled=sampled_count,
        skipped=skipped,
        torn=torn_count,
    )


# ----------------------------------------------------------------------
# state auditing (drives recovery + oracle per image)
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class CrashStateOutcome:
    """Verdict of one explored crash state."""

    label: str
    verdict: str
    in_flight_outcome: str = "none"
    detail: str = ""
    sampled: bool = False
    torn: bool = False


@dataclass
class CrashExploration:
    """Everything the explorer measured for one crashed cell."""

    total_reachable: int
    exhaustive: bool
    explored: int = 0
    sampled: int = 0
    skipped: int = 0
    torn: int = 0
    outcomes: List[CrashStateOutcome] = field(default_factory=list)

    @property
    def worst(self) -> Optional[CrashStateOutcome]:
        if not self.outcomes:
            return None
        return max(
            self.outcomes, key=lambda o: _SEVERITY.get(o.verdict, 2)
        )

    def silent_states(self) -> List[CrashStateOutcome]:
        return [o for o in self.outcomes if o.verdict == VERDICT_SILENT]


def _snapshot_registers(mee) -> Dict[str, Tuple[bytes, object]]:
    return {
        name: (register.value, register.tag)
        for name, register in mee.registers._registers.items()
    }


def _install_state(
    mee,
    image: SparseMemory,
    registers: Dict[str, Tuple[bytes, object]],
    root: bytes,
) -> None:
    """Point the crashed machine at ``image`` with pristine NV state.

    Volatile structures are re-dropped (one state's recovery fills the
    metadata cache and tree overlay; the next state must start from
    the crash) and the NV registers are rolled back to their values at
    the moment of the crash.
    """
    mee.nvm.backend = image
    mee.tree.backend = image
    mee.mdcache.drop_all()
    mee._volatile_hmacs.clear()
    mee.tree._volatile_counters.clear()
    mee.tree._volatile_nodes.clear()
    mee.tree._lazy_slots.clear()
    for name, (value, tag) in registers.items():
        register = mee.registers._registers[name]
        register.value = value
        register.tag = tag
    mee.tree.root_register = root


def explore_crash_states(
    mee,
    record,
    pending: Sequence[PendingLine],
    max_crash_states: int = DEFAULT_MAX_CRASH_STATES,
    torn_lines: bool = True,
    seed: Seed = 0,
) -> CrashExploration:
    """Audit every planned crash state of a crashed, frozen machine.

    Call after ``mee.crash()`` with the WPQ's frozen pending set. The
    machine is left installed on a pristine clone of the as-crashed
    (all-drained) image, so the caller's ordinary oracle pass runs
    unperturbed afterwards; that pass covers the all-drained state the
    plan deliberately omits.
    """
    plan = plan_crash_states(
        pending,
        max_crash_states=max_crash_states,
        torn_lines=torn_lines,
        seed=seed,
    )
    exploration = CrashExploration(
        total_reachable=plan.total_reachable,
        exhaustive=plan.exhaustive,
        sampled=plan.sampled,
        skipped=plan.skipped,
        torn=plan.torn,
    )
    if not plan.states:
        return exploration
    base_image = mee.nvm.backend.snapshot()
    registers = _snapshot_registers(mee)
    root = mee.tree.root_register
    for state in plan.states:
        image = base_image.snapshot()
        for region, key, value in state.patch:
            if value is None:
                image.erase(region, key)
            else:
                image.write(region, key, value)
        _install_state(mee, image, registers, root)
        report = run_oracle(mee, record)
        detail = ""
        if report.verdict != VERDICT_RECOVERED:
            detail = report.first_divergence or report.recovery_detail
        exploration.outcomes.append(
            CrashStateOutcome(
                label=state.label,
                verdict=report.verdict,
                in_flight_outcome=report.in_flight_outcome,
                detail=detail,
                sampled=state.sampled,
                torn=state.torn,
            )
        )
    # ``explored`` counts drain subsets only — comparable against
    # ``total_reachable`` — while torn variants are tallied separately.
    exploration.explored = sum(
        1 for outcome in exploration.outcomes if not outcome.torn
    )
    # Hand the machine back on the unexplored image for the ordinary
    # (all-drained) oracle pass.
    _install_state(mee, base_image.snapshot(), registers, root)
    return exploration
