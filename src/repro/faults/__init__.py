"""Fault-injection campaigns: crash scheduling, integrity oracle,
campaign planning/aggregation (see docs/FAULTS.md)."""

from repro.faults.campaign import (
    VERDICT_BASELINE,
    CampaignReport,
    FaultCampaignSpec,
    FaultCellOutcome,
    default_fault_config,
    plan_cells,
    run_campaign,
    run_fault_cell,
)
from repro.faults.oracle import (
    VERDICT_DETECTED,
    VERDICT_RECOVERED,
    VERDICT_SILENT,
    OracleReport,
    run_oracle,
)
from repro.faults.triggers import (
    KNOWN_PHASES,
    PHASE_ACCESS,
    PHASE_AMNT_MOVEMENT,
    PHASE_AMNTPP_RESTRUCTURE,
    PHASE_MDCACHE_EVICTION,
    PHASE_STRICT_WRITE_THROUGH,
    CrashScheduler,
    CrashTrigger,
)

__all__ = [
    "CampaignReport",
    "CrashScheduler",
    "CrashTrigger",
    "FaultCampaignSpec",
    "FaultCellOutcome",
    "KNOWN_PHASES",
    "OracleReport",
    "PHASE_ACCESS",
    "PHASE_AMNT_MOVEMENT",
    "PHASE_AMNTPP_RESTRUCTURE",
    "PHASE_MDCACHE_EVICTION",
    "PHASE_STRICT_WRITE_THROUGH",
    "VERDICT_BASELINE",
    "VERDICT_DETECTED",
    "VERDICT_RECOVERED",
    "VERDICT_SILENT",
    "default_fault_config",
    "plan_cells",
    "run_campaign",
    "run_fault_cell",
    "run_oracle",
]
