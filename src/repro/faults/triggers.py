"""Crash triggers and the crash scheduler.

The scheduler is the campaign's armed bomb: wired onto a live machine
(``mee.fault_probe`` plus, for modified-OS runs, the restructurer's
``phase_hook``), it watches the replay and raises
:class:`~repro.errors.PowerFailure` when its trigger condition is met.

Two trigger kinds exist:

* ``"access"`` — fire at the start of trace access ``at`` (the
  every-Nth and seeded-random sweeps are built from these);
* ``"phase"`` — fire at the ``at``-th occurrence of a named
  instrumentation phase, landing the crash *inside* a protocol
  operation where torn metadata is actually possible.

Crash-atomicity model. The functional tree updates the NV root register
atomically with every counter bump, so a failure raised between a
write's counter bump and its protocol persists would fabricate torn
states no ADR machine can produce (the write queue drains on power
loss). The engine therefore brackets each data write in a *persist
group*: phase triggers that fire inside an uncommitted group are
deferred and raise at the group's commit point with
``write_committed=True`` (the write is durable; the crash lands at the
access boundary the hardware would expose), while triggers outside any
group — read-path cache evictions, AMNT movement after the early
commit, AMNT++ restructuring, access boundaries — raise immediately
and produce genuinely torn volatile state.

An *unarmed* scheduler (``trigger=None``) never raises; it just counts
phase occurrences, which is how the campaign's probe pass discovers how
many crash windows each (protocol, workload) pair exposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ConfigError, PowerFailure

#: Phase names fired by the instrumented engine and protocols. The
#: hook sites use string literals (core modules must not import this
#: package); these constants are the catalogue the campaign plans from.
PHASE_ACCESS = "access"
PHASE_MDCACHE_EVICTION = "mdcache_eviction"
PHASE_AMNT_MOVEMENT = "amnt_movement"
PHASE_STRICT_WRITE_THROUGH = "strict_write_through"
PHASE_AMNTPP_RESTRUCTURE = "amntpp_restructure"

KNOWN_PHASES: Tuple[str, ...] = (
    PHASE_MDCACHE_EVICTION,
    PHASE_AMNT_MOVEMENT,
    PHASE_STRICT_WRITE_THROUGH,
    PHASE_AMNTPP_RESTRUCTURE,
)


@dataclass(frozen=True, slots=True)
class CrashTrigger:
    """Picklable description of when the power fails.

    ``kind`` is ``"access"`` (``at`` = 0-based trace position) or
    ``"phase"`` (``at`` = 1-based occurrence of ``phase``).
    """

    kind: str
    at: int
    phase: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("access", "phase"):
            raise ConfigError(f"unknown trigger kind {self.kind!r}")
        if self.kind == "phase" and not self.phase:
            raise ConfigError("phase triggers need a phase name")
        if self.kind == "access" and self.at < 0:
            raise ConfigError("access triggers need a position >= 0")
        if self.kind == "phase" and self.at < 1:
            raise ConfigError("phase occurrences are 1-based")

    def describe(self) -> str:
        if self.kind == "access":
            return f"access@{self.at}"
        return f"{self.phase}@{self.at}"


class CrashScheduler:
    """Counts phases, arms a trigger, raises the power failure.

    One scheduler drives one replay; it is not reusable across runs
    (the phase counters are the run's fingerprint and are read by the
    campaign afterwards).
    """

    def __init__(self, trigger: Optional[CrashTrigger] = None) -> None:
        self.trigger = trigger
        self.access_index = -1
        self.phase_counts: Dict[str, int] = {}
        self.fired: Optional[PowerFailure] = None
        self._in_group = False
        self._group_committed = False
        self._pending: Optional[Tuple[str, int]] = None

    # -- driver callbacks ----------------------------------------------

    def on_access(self, index: int) -> None:
        """Called by the replay driver at the start of each access."""
        self.access_index = index
        self._in_group = False
        self._group_committed = False
        trigger = self.trigger
        if (
            trigger is not None
            and trigger.kind == "access"
            and index == trigger.at
        ):
            self._raise(PHASE_ACCESS, index)

    # -- engine/protocol callbacks -------------------------------------

    def on_phase(self, name: str) -> None:
        """Called from instrumentation hooks inside the engine."""
        count = self.phase_counts.get(name, 0) + 1
        self.phase_counts[name] = count
        trigger = self.trigger
        if (
            trigger is not None
            and trigger.kind == "phase"
            and trigger.phase == name
            and count == trigger.at
        ):
            if self._in_group and not self._group_committed:
                self._pending = (name, count)
            else:
                self._raise(name, count)

    def begin_group(self) -> None:
        """A data write's persist group opens (engine write path)."""
        self._in_group = True
        self._group_committed = False

    def commit_group(self) -> None:
        """The in-flight write's persists are durable (ADR drain
        point); a deferred crash raises here."""
        self._group_committed = True
        self._in_group = False
        if self._pending is not None:
            phase, occurrence = self._pending
            self._pending = None
            self._raise(phase, occurrence)

    # -- internals ------------------------------------------------------

    def _raise(self, phase: str, occurrence: int) -> None:
        failure = PowerFailure(
            phase=phase,
            occurrence=occurrence,
            access_index=self.access_index,
            write_committed=self._group_committed,
        )
        self.fired = failure
        raise failure
