"""Crash triggers and the crash scheduler.

The scheduler is the campaign's armed bomb: wired onto a live machine
(``mee.fault_probe`` plus, for modified-OS runs, the restructurer's
``phase_hook``), it watches the replay and raises
:class:`~repro.errors.PowerFailure` when its trigger condition is met.

Three trigger kinds exist:

* ``"access"`` — fire at the start of trace access ``at`` (the
  every-Nth and seeded-random sweeps are built from these);
* ``"phase"`` — fire at the ``at``-th occurrence of a named
  instrumentation phase, landing the crash *inside* a protocol
  operation where torn metadata is actually possible;
* ``"persist-window"`` — fire at the ``at``-th persist write-through,
  *without* the persist-group deferral below: the crash lands between
  two fences of an open group, which is exactly the window the WPQ
  persistence model (repro.mem.nvm) plus the crash-state explorer
  (repro.faults.crashstates) are built to audit.

Crash-atomicity model. The functional tree updates the NV root register
atomically with every counter bump, so a failure raised between a
write's counter bump and its protocol persists would fabricate torn
states no ADR machine can produce (the write queue drains on power
loss). The engine therefore brackets each data write in a *persist
group*: phase triggers that fire inside an uncommitted group are
deferred and raise at the group's commit point with
``write_committed=True`` (the write is durable; the crash lands at the
access boundary the hardware would expose), while triggers outside any
group — read-path cache evictions, AMNT movement after the early
commit, AMNT++ restructuring, access boundaries — raise immediately
and produce genuinely torn volatile state.

An *unarmed* scheduler (``trigger=None``) never raises; it just counts
phase occurrences, which is how the campaign's probe pass discovers how
many crash windows each (protocol, workload) pair exposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ConfigError, PowerFailure

#: Phase names fired by the instrumented engine and protocols. The
#: hook sites use string literals (core modules must not import this
#: package); these constants are the catalogue the campaign plans from.
PHASE_ACCESS = "access"
PHASE_MDCACHE_EVICTION = "mdcache_eviction"
PHASE_AMNT_MOVEMENT = "amnt_movement"
PHASE_STRICT_WRITE_THROUGH = "strict_write_through"
PHASE_AMNTPP_RESTRUCTURE = "amntpp_restructure"
#: Counted by :meth:`CrashScheduler.on_persist` immediately before
#: every persist write-through (the moment the line is *not yet*
#: durable). Phase triggers on this name defer like any other in-group
#: phase; the ``"persist-window"`` trigger kind fires here undeferred.
PHASE_PERSIST_WINDOW = "persist_window"

KNOWN_PHASES: Tuple[str, ...] = (
    PHASE_MDCACHE_EVICTION,
    PHASE_AMNT_MOVEMENT,
    PHASE_STRICT_WRITE_THROUGH,
    PHASE_AMNTPP_RESTRUCTURE,
    PHASE_PERSIST_WINDOW,
)

#: ``--list-triggers`` catalogue: (kind, example, description).
TRIGGER_KINDS: Tuple[Tuple[str, str, str], ...] = (
    (
        "access",
        "access@N",
        "cut power at the start of trace access N (0-based); the "
        "every-Nth, seeded-random, and tamper sweeps are built from "
        "these",
    ),
    (
        "phase",
        "<phase>@N",
        "cut power at the Nth occurrence (1-based) of a named "
        "instrumentation window; fires inside an uncommitted persist "
        "group are deferred to the group's commit (ADR drain) point",
    ),
    (
        "persist-window",
        "persist-window@N",
        "cut power immediately before the Nth persist write-through "
        "(1-based), WITHOUT persist-group deferral: the in-flight "
        "write's fences are only partially issued, and under "
        "persist_model=wpq every fence-respecting drain subset of the "
        "pending lines is explored as its own crash state",
    ),
)


def trigger_catalog() -> Tuple[Tuple[str, str, str], ...]:
    """Every trigger kind with an example ``describe()`` string and a
    one-line explanation (the ``repro faults --list-triggers`` body)."""
    return TRIGGER_KINDS


@dataclass(frozen=True, slots=True)
class CrashTrigger:
    """Picklable description of when the power fails.

    ``kind`` is ``"access"`` (``at`` = 0-based trace position),
    ``"phase"`` (``at`` = 1-based occurrence of ``phase``), or
    ``"persist-window"`` (``at`` = 1-based persist write-through,
    fired inside persist groups without deferral).
    """

    kind: str
    at: int
    phase: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("access", "phase", "persist-window"):
            raise ConfigError(f"unknown trigger kind {self.kind!r}")
        if self.kind == "phase" and not self.phase:
            raise ConfigError("phase triggers need a phase name")
        if self.kind == "access" and self.at < 0:
            raise ConfigError("access triggers need a position >= 0")
        if self.kind in ("phase", "persist-window") and self.at < 1:
            raise ConfigError(f"{self.kind} occurrences are 1-based")

    def describe(self) -> str:
        if self.kind == "access":
            return f"access@{self.at}"
        if self.kind == "persist-window":
            return f"persist-window@{self.at}"
        return f"{self.phase}@{self.at}"


class CrashScheduler:
    """Counts phases, arms a trigger, raises the power failure.

    One scheduler drives one replay; it is not reusable across runs
    (the phase counters are the run's fingerprint and are read by the
    campaign afterwards).
    """

    def __init__(self, trigger: Optional[CrashTrigger] = None) -> None:
        self.trigger = trigger
        self.access_index = -1
        self.phase_counts: Dict[str, int] = {}
        self.fired: Optional[PowerFailure] = None
        self._group_depth = 0
        self._group_committed = False
        self._pending: Optional[Tuple[str, int]] = None

    # -- driver callbacks ----------------------------------------------

    def on_access(self, index: int) -> None:
        """Called by the replay driver at the start of each access."""
        self.access_index = index
        self._group_depth = 0
        self._group_committed = False
        trigger = self.trigger
        if (
            trigger is not None
            and trigger.kind == "access"
            and index == trigger.at
        ):
            self._raise(PHASE_ACCESS, index)

    # -- engine/protocol callbacks -------------------------------------

    def on_phase(self, name: str) -> None:
        """Called from instrumentation hooks inside the engine."""
        count = self.phase_counts.get(name, 0) + 1
        self.phase_counts[name] = count
        trigger = self.trigger
        if (
            trigger is not None
            and trigger.kind == "phase"
            and trigger.phase == name
            and count == trigger.at
        ):
            if self._group_depth > 0 and not self._group_committed:
                self._pending = (name, count)
            else:
                self._raise(name, count)

    def on_persist(self) -> None:
        """Called by the MEE immediately *before* each persist
        write-through: the window where the fence's line is not yet
        durable. Counts as the ``persist_window`` phase; the
        ``"persist-window"`` trigger kind fires here with no group
        deferral (that un-deferred torn state is the one the WPQ
        crash-state explorer exists to audit)."""
        count = self.phase_counts.get(PHASE_PERSIST_WINDOW, 0) + 1
        self.phase_counts[PHASE_PERSIST_WINDOW] = count
        trigger = self.trigger
        if trigger is None or count != trigger.at:
            return
        if trigger.kind == "persist-window":
            self._raise(PHASE_PERSIST_WINDOW, count)
        elif trigger.kind == "phase" and trigger.phase == PHASE_PERSIST_WINDOW:
            if self._group_depth > 0 and not self._group_committed:
                self._pending = (PHASE_PERSIST_WINDOW, count)
            else:
                self._raise(PHASE_PERSIST_WINDOW, count)

    def begin_group(self) -> None:
        """A data write's persist group opens (engine write path).

        Groups nest (an LLC victim writeback inside another write's
        group, a re-entrant engine call): depth is tracked so an inner
        ``begin``/``commit`` pair cannot silently reset the outer
        group's deferral state — deferred crashes release only when the
        outermost group commits.
        """
        self._group_depth += 1
        if self._group_depth == 1:
            self._group_committed = False

    def commit_group(self) -> None:
        """The in-flight write's persists are durable (ADR drain
        point); a deferred crash raises here. Inner commits of a nested
        group only pop depth."""
        if self._group_depth > 0:
            self._group_depth -= 1
            if self._group_depth > 0:
                return
        self._group_committed = True
        if self._pending is not None:
            phase, occurrence = self._pending
            self._pending = None
            self._raise(phase, occurrence)

    # -- internals ------------------------------------------------------

    def _raise(self, phase: str, occurrence: int) -> None:
        failure = PowerFailure(
            phase=phase,
            occurrence=occurrence,
            access_index=self.access_index,
            write_committed=self._group_committed,
            in_group=self._group_depth > 0 and not self._group_committed,
        )
        self.fired = failure
        raise failure
