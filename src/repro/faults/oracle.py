"""The integrity oracle: judge a crashed machine's recovery.

After the campaign cuts power (and optionally tampers with the NVM
image) the oracle runs the bound protocol's recovery and audits the
result against the replay's golden shadow copy:

1. **recovery** — ``protocol.recover(tree)``; a raised
   :class:`~repro.errors.SecurityError` or a not-ok outcome means the
   system *detected* an unrecoverable/tampered state (which is correct
   behaviour under tamper, and a failure of the protocol's
   crash-consistency claim otherwise);
2. **full-tree verify** — every page the replay wrote is re-verified
   against the persisted tree image;
3. **data readback** — every golden block is read back through the
   normal authenticated read path and compared to the shadow payload.

Verdicts, strongest claim last:

* ``"recovered"`` — recovery succeeded and every golden block read
  back bit-identical;
* ``"detected"`` — the system refused: recovery failed loudly, or
  reads raised integrity errors. Data may be lost but nothing lied;
* ``"silent-divergence"`` — a read *succeeded* and returned bytes
  different from the golden copy. The one outcome a secure-memory
  system must never produce.

An interrupted write whose persist group had not drained may read back
as the old value, the new value, or raise — all acceptable for a torn
write; silent third values are not.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SecurityError
from repro.sim.engine import ReplayRecord

VERDICT_RECOVERED = "recovered"
VERDICT_DETECTED = "detected"
VERDICT_SILENT = "silent-divergence"


@dataclass
class OracleReport:
    """Everything the oracle measured for one cell."""

    verdict: str
    recovery_ok: bool
    recovery_detail: str
    nodes_recomputed: int
    blocks_checked: int = 0
    blocks_recovered: int = 0
    blocks_detected: int = 0
    blocks_diverged: int = 0
    pages_verified: int = 0
    pages_inconsistent: int = 0
    #: "none" | "old" | "new" | "detected" | "diverged"
    in_flight_outcome: str = "none"
    first_divergence: str = ""


def run_oracle(mee, record: ReplayRecord) -> OracleReport:
    """Recover the crashed engine and audit it against the shadow."""
    # Campaigns force eager machines, but the oracle is also invoked
    # directly by tests against lazy trees: make every deferred digest
    # real before recovery compares anything against the root register.
    mee.tree.materialize_all()
    try:
        outcome = mee.protocol.recover(mee.tree)
        recovery_ok = bool(outcome.ok)
        detail = outcome.detail
        nodes = outcome.nodes_recomputed
    except SecurityError as error:
        recovery_ok = False
        detail = f"{type(error).__name__}: {error}"
        nodes = 0
    if not recovery_ok:
        return OracleReport(
            verdict=VERDICT_DETECTED,
            recovery_ok=False,
            recovery_detail=detail,
            nodes_recomputed=nodes,
        )

    report = OracleReport(
        verdict=VERDICT_RECOVERED,
        recovery_ok=True,
        recovery_detail=detail,
        nodes_recomputed=nodes,
    )
    page_index = mee.address_space.page_index
    pages = sorted({page_index(base) for base in record.golden})
    for index in pages:
        report.pages_verified += 1
        if not mee.tree.verify_counter(index, persisted_only=True).ok:
            report.pages_inconsistent += 1

    # The in-flight block is judged by the old/new/detected contract
    # below, not by byte equality: its golden entry still holds the
    # pre-crash payload, and a legitimately applied new value must not
    # be miscounted as divergence.
    in_flight_base = record.in_flight[0] if record.in_flight else None
    for base, payload in sorted(record.golden.items()):
        if base == in_flight_base:
            continue
        report.blocks_checked += 1
        try:
            data = mee.read_block_data(base)
        except SecurityError:
            report.blocks_detected += 1
            continue
        if data == payload:
            report.blocks_recovered += 1
        else:
            report.blocks_diverged += 1
            if not report.first_divergence:
                report.first_divergence = (
                    f"block {base:#x}: read {data[:8].hex()}.., "
                    f"golden {payload[:8].hex()}.."
                )

    if record.in_flight is not None:
        base, old, new = record.in_flight
        block_bytes = len(new)
        try:
            data = mee.read_block_data(base)
        except SecurityError:
            report.in_flight_outcome = "detected"
        else:
            if data == new:
                report.in_flight_outcome = "new"
            elif data == (old if old is not None else bytes(block_bytes)):
                report.in_flight_outcome = "old"
            else:
                report.in_flight_outcome = "diverged"
                if not report.first_divergence:
                    report.first_divergence = (
                        f"in-flight block {base:#x} read back a third value"
                    )

    if report.blocks_diverged or report.in_flight_outcome == "diverged":
        report.verdict = VERDICT_SILENT
    elif report.blocks_detected or report.pages_inconsistent:
        report.verdict = VERDICT_DETECTED
    return report
