"""Multi-subtree AMNT: the "per-core subtrees" alternative (§5).

The paper considers giving each core its own fast subtree to handle
multiprogram interference, and rejects it: "such a solution would
result in complex and large hardware requirements for devices with
hundreds of cores", choosing the AMNT++ software fix instead. This
module implements the rejected design so the trade-off can be measured
rather than asserted (see ``benchmarks/test_ablation_multi_subtree.py``).

``AMNTMultiProtocol`` maintains ``S = config.amnt.multi_subtrees``
non-volatile subtree registers. The history buffer is shared; at each
selection interval the top-``S`` regions by count become the fast set
(the incumbent set wins ties, subsets move incrementally). A write
inside *any* fast subtree gets leaf persistence; everything else is
strict. Recovery must rebuild all ``S`` regions — both the NV area and
the recovery bound scale linearly with ``S``, which is exactly the
hardware-cost objection quantified by ``area_overhead``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.amnt import AMNTProtocol
from repro.core.protocol import register_protocol
from repro.integrity.geometry import NodeId


class AMNTMultiProtocol(AMNTProtocol):
    """AMNT with ``S`` concurrent fast subtrees (hardware-heavy)."""

    name = "amnt-multi"
    benefits_from_modified_os = False  # the point: no OS change needed

    def _on_bind(self) -> None:
        super()._on_bind()
        self.num_subtrees = self.config.amnt.multi_subtrees
        #: region index -> NV register name; the single base-class
        #: register serves slot 0, extras are allocated here.
        self._active_regions: List[int] = []
        self._extra_registers = [
            self.mee.registers.allocate(f"amnt_subtree_root_{slot}", 64)
            for slot in range(1, self.num_subtrees)
        ]

    # ------------------------------------------------------------------
    # fast-set membership
    # ------------------------------------------------------------------

    @property
    def active_regions(self) -> List[int]:
        return list(self._active_regions)

    def in_subtree(self, counter_index: int) -> bool:
        return self.region_of_counter(counter_index) in self._active_regions

    def subtree_node(self) -> Optional[NodeId]:
        """The base-class hook: used for register updates on in-subtree
        writes; resolved per-write via the current counter's region in
        :meth:`path_update_extent`/:meth:`on_data_write`, so here we
        report the most recent region only (slot 0)."""
        if not self._active_regions:
            return None
        return (self.subtree_level, self._active_regions[0])

    def path_update_extent(
        self, counter_index: int, path: List[NodeId]
    ) -> List[NodeId]:
        if not self.in_subtree(counter_index):
            return path
        return [node for node in path if node[0] > self.subtree_level]

    def trusted_register_node(self, node: NodeId, counter_index: int) -> bool:
        level, index = node
        return level == self.subtree_level and index in self._active_regions

    # ------------------------------------------------------------------
    # write path (region-aware register updates)
    # ------------------------------------------------------------------

    def on_data_write(
        self,
        counter_index: int,
        block_index: int,
        path: List[NodeId],
        fenced: bool = False,
    ) -> int:
        mee = self.mee
        region = self.region_of_counter(counter_index)
        if region in self._active_regions:
            cycles = mee.persist_counter_line(counter_index)
            mee.persist_hmac_line(block_index // 8)
            cycles += mee.posted_write_cycles
            if mee.functional:
                node = (self.subtree_level, region)
                self._register_for(region).write(
                    mee.engine.hash8(mee.tree.current_node_bytes(node)),
                    tag=node,
                )
            self._ctr_subtree_hits.value += 1
        else:
            cycles = mee.persist_counter_line(counter_index)
            mee.persist_hmac_line(block_index // 8)
            cycles += mee.posted_write_cycles
            for node in path:
                cycles += mee.persist_tree_node(node)
            self._ctr_subtree_misses.value += 1

        self.history.record(region)
        self._writes_since_selection += 1
        if self._writes_since_selection >= self._movement_interval:
            self._writes_since_selection = 0
            cycles += self._select_fast_set()
        return cycles

    def _register_for(self, region: int):
        slot = self._active_regions.index(region)
        if slot == 0:
            return self._register
        return self._extra_registers[slot - 1]

    # ------------------------------------------------------------------
    # selection: top-S regions, incumbents win ties
    # ------------------------------------------------------------------

    def _select_fast_set(self) -> int:
        counts: Dict[int, int] = {}
        for region, count in self.history.contents():
            counts[region] = counts.get(region, 0) + count
        head = self.history.head_region()
        self.history.reset_interval(keep_region=head)
        self.stats.add("selection_intervals")
        if not counts:
            return 0
        # Incumbents get a tie-break bonus so a stable fast set never
        # churns on noise.
        ranked = sorted(
            counts,
            key=lambda region: (
                -counts[region],
                region not in self._active_regions,
                region,
            ),
        )
        target = ranked[: self.num_subtrees]
        cycles = 0
        for region in list(self._active_regions):
            if region not in target:
                cycles += self._retire_region(region)
        for region in target:
            if region not in self._active_regions:
                if len(self._active_regions) >= self.num_subtrees:
                    break
                self._adopt_region(region)
        return cycles

    def _retire_region(self, region: int) -> int:
        """Old fast region becomes strict again: flush its interior and
        reconcile its path upward (same procedure as a base-class
        movement)."""
        mee = self.mee
        subtree = (self.subtree_level, region)
        cycles = 0
        dirty = mee.mdcache.dirty_nodes_matching(
            lambda level, index: self._node_in_subtree(level, index, subtree)
        )
        for level, index in dirty:
            cycles += mee.persist_tree_node((level, index))
            self.stats.add("movement_flushes")
        node = subtree
        cycles += mee.persist_tree_node(node)
        while node[0] > 1:
            node = mee.geometry.parent(node)
            cycles += mee.persist_tree_node(node)
        self._active_regions.remove(region)
        self.stats.add("movements")
        return cycles

    def _adopt_region(self, region: int) -> None:
        self._active_regions.append(region)
        node = (self.subtree_level, region)
        register = self._register_for(region)
        if self.mee.functional:
            register.write(
                self.mee.engine.hash8(self.mee.tree.current_node_bytes(node)),
                tag=node,
            )
        else:
            register.write(b"", tag=node)
        self.stats.add("adoptions")

    # ------------------------------------------------------------------
    # recovery: S regions are stale
    # ------------------------------------------------------------------

    def stale_data_bytes(self, memory_bytes: int) -> float:
        level = self.config.amnt.subtree_level
        regions = self.config.security.tree_arity ** (level - 1)
        count = min(self.config.amnt.multi_subtrees, regions)
        return memory_bytes * count / regions

    def recover(self, tree):
        from repro.core.recovery import RecoveryOutcome

        nodes = 0
        registers = [self._register] + self._extra_registers
        for register in registers:
            if register.tag is None:
                continue
            subtree = tuple(register.tag)
            rebuilt, count = tree.subtree_value_from_persisted(subtree)
            nodes += count
            if tree.engine.hash8(rebuilt) != register.read():
                return RecoveryOutcome(
                    protocol=self.name,
                    ok=False,
                    nodes_recomputed=nodes,
                    detail=f"subtree {subtree} contradicts its NV register",
                )
            node = subtree
            while node[0] > 1:
                node = tree.geometry.parent(node)
                tree.recompute_and_persist(node)
                nodes += 1
        root_bytes = tree.persisted_node_bytes((1, 0))
        ok = tree.engine.hash8(root_bytes) == tree.root_register
        return RecoveryOutcome(
            protocol=self.name,
            ok=ok,
            nodes_recomputed=nodes,
            detail="" if ok else "global root mismatch after repair",
        )

    # ------------------------------------------------------------------
    # the hardware-cost objection, quantified
    # ------------------------------------------------------------------

    def area_overhead(self):
        from repro.core.area import AreaOverhead

        return AreaOverhead(
            protocol=self.name,
            # One 64 B NV register per concurrent subtree.
            nonvolatile_on_chip_bytes=64 * self.num_subtrees,
            volatile_on_chip_bytes=self.history.area_bits // 8,
            in_memory_bytes=0,
        )


register_protocol(AMNTMultiProtocol)
