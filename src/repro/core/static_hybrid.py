"""Static comparators: Triad-NVM and Persist-Level Parallelism (§7.3).

The paper positions AMNT against two *static* designs:

* **Triad-NVM** (Awad et al.): "entire levels of the tree conform to a
  particular persistence protocol" — the counters, HMACs, and the
  deepest ``persist_levels`` integrity levels are written through on
  every data write; levels above stay lazy. Recovery rebuilds only the
  upper (lazy) levels from the persisted level — a static middle point
  between leaf and strict, applied to *all* addresses equally. The
  paper's critique: "these approaches miss out on potential performance
  benefits by treating all addresses the same" — measured head-to-head
  against AMNT in ``benchmarks/test_ablation_static_vs_dynamic.py``.

* **Persist-Level Parallelism** (Freij et al., MICRO'20): strict
  persistence whose path write-throughs are issued *in parallel* under
  conditions that preserve recoverability, instead of serially with
  barriers. Same persists, same (instant) recovery, much less critical
  path: one full write latency plus queue occupancy for the rest.
"""

from __future__ import annotations

from typing import List

from repro.core.protocol import MetadataPersistencePolicy, register_protocol
from repro.integrity.geometry import NodeId


@register_protocol
class TriadNVMProtocol(MetadataPersistencePolicy):
    """Static level-partitioned persistence (Triad-NVM)."""

    name = "triad"

    def _on_bind(self) -> None:
        geometry = self.mee.geometry
        persist_levels = self.config.triad.persist_levels
        #: Nodes at level >= this are written through; above is lazy.
        self.strict_above_level = max(
            2, geometry.num_node_levels - persist_levels + 1
        )

    def _is_strict_level(self, level: int) -> bool:
        return level >= self.strict_above_level

    def on_data_write(
        self,
        counter_index: int,
        block_index: int,
        path: List[NodeId],
        fenced: bool = False,
    ) -> int:
        mee = self.mee
        cycles = mee.persist_counter_line(counter_index)
        mee.persist_hmac_line(block_index // 8)
        cycles += mee.posted_write_cycles
        # Ordered write-through of the deepest persist_levels levels.
        for node in path:
            if not self._is_strict_level(node[0]):
                break
            cycles += mee.persist_tree_node(node)
        self.stats.add("level_persists")
        return cycles

    # ------------------------------------------------------------------
    # recovery: the lazy upper levels are stale
    # ------------------------------------------------------------------

    def stale_data_bytes(self, memory_bytes: int) -> float:
        """All data is *covered* by stale upper levels, but rebuilding
        them only needs the persisted boundary level re-read: traffic
        is memory / arity**persist_levels of the leaf-persistence case.
        Expressed as equivalent stale data bytes for the bandwidth
        model."""
        shrink = self.config.security.tree_arity ** self.config.triad.persist_levels
        return memory_bytes / shrink

    def recover(self, tree):
        from repro.core.recovery import RecoveryOutcome

        # Rebuild every level above the persisted boundary, bottom-up,
        # from the (consistent) persisted boundary level.
        geometry = tree.geometry
        rebuilt = 0
        for level in range(self.strict_above_level - 1, 0, -1):
            for index in range(geometry.nodes_at_level(level)):
                tree.recompute_and_persist((level, index))
                rebuilt += 1
        root_bytes = tree.persisted_node_bytes((1, 0))
        ok = tree.engine.hash8(root_bytes) == tree.root_register
        return RecoveryOutcome(
            protocol=self.name,
            ok=ok,
            nodes_recomputed=rebuilt,
            detail="" if ok else "upper-level rebuild contradicts the root",
        )


@register_protocol
class PLPProtocol(MetadataPersistencePolicy):
    """Persist-Level Parallelism: strict persists, parallel issue."""

    name = "plp"

    def on_data_write(
        self,
        counter_index: int,
        block_index: int,
        path: List[NodeId],
        fenced: bool = False,
    ) -> int:
        mee = self.mee
        # All lines persist (same traffic and recovery as strict)...
        mee.persist_counter_line(counter_index)
        mee.persist_hmac_line(block_index // 8)
        for node in path:
            mee.persist_tree_node(node)
        # ...but issued in parallel: the critical path sees one full
        # write plus queue occupancy per extra line.
        extra_lines = 1 + len(path)  # hmac + nodes overlap the counter
        cycles = mee.nvm.write_latency_cycles
        cycles += extra_lines * mee.posted_write_cycles
        self.stats.add("parallel_persists")
        return cycles

    def stale_data_bytes(self, memory_bytes: int) -> float:
        return 0.0  # everything persisted, as strict

    def recover(self, tree):
        from repro.core.recovery import RecoveryOutcome

        return RecoveryOutcome(protocol=self.name, ok=True, nodes_recomputed=0)
