"""Osiris: stop-loss counter persistence (Ye et al., and §2.3/§7.3).

Osiris relaxes leaf persistence further: a counter line is written
through only every *n*-th update (the stop-loss interval), so a
persisted counter is never more than ``n-1`` bumps stale. The data MAC
is co-located with the data's ECC bits and persists with every data
write, which is what makes recovery possible: for each block, recovery
probes candidate counters ``persisted .. persisted + n - 1`` until the
stored MAC verifies, restoring the exact pre-crash counter.

The price is recovery time — the probing pass touches data blocks, not
just counters, which is why Osiris's Table 4 row dwarfs even plain leaf
persistence.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.protocol import MetadataPersistencePolicy, register_protocol
from repro.crypto.hmac import data_mac
from repro.errors import CrashConsistencyError
from repro.integrity.geometry import NodeId
from repro.mem.backend import MetadataRegion


@register_protocol
class OsirisProtocol(MetadataPersistencePolicy):
    """Stop-loss metadata persistence."""

    name = "osiris"

    def _on_bind(self) -> None:
        self._updates_since_persist: Dict[int, int] = {}
        self._interval = self.config.osiris.stop_loss_interval

    def on_data_write(
        self,
        counter_index: int,
        block_index: int,
        path: List[NodeId],
        fenced: bool = False,
    ) -> int:
        mee = self.mee
        # The MAC rides the data write's ECC bits: persistent, no extra
        # NVM transaction (Osiris's key trick) — model as a dedicated
        # persist of the HMAC line only in functional mode, charged 0
        # timing cycles.
        cycles = 0
        if mee.functional:
            mee.persist_hmac_line(block_index // 8)
        pending = self._updates_since_persist.get(counter_index, 0) + 1
        if pending >= self._interval:
            cycles += mee.persist_counter_line(counter_index)
            pending = 0
            self.stats.add("stop_loss_persists")
        self._updates_since_persist[counter_index] = pending
        return cycles

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def stale_data_bytes(self, memory_bytes: int) -> float:
        return float(memory_bytes)

    def recovery_ms(self, model, memory_bytes: int) -> float:
        """Full-tree rebuild plus the counter-probing pass.

        Probing reads data blocks to test candidate counters against
        their stored MACs. With a stop-loss of *n*, on average
        ``blocks_per_page / n`` data-block reads per page are needed to
        pin each page's minors down, plus one line of slack — counter
        recovery traffic is roughly ``counters * (blocks_per_page/n + 1)``
        lines. This reproduces the ~8x-leaf scaling of Table 4.
        """
        rebuild = model.rebuild_milliseconds(float(memory_bytes))
        blocks_per_page = self.config.security.counters_per_block
        interval = self.config.osiris.stop_loss_interval
        probe_lines_per_counter = blocks_per_page / interval + 1
        probe_bytes = model.counter_bytes(float(memory_bytes)) * probe_lines_per_counter
        probe_ms = probe_bytes / model.read_bandwidth_bytes_per_s * 1e3
        return rebuild + probe_ms

    def recover(self, tree):
        """Probe each touched page's counters back to their pre-crash
        values using the persisted MACs, then rebuild the tree."""
        from repro.core.recovery import RecoveryOutcome

        mee = self.mee
        backend = mee.nvm.backend
        blocks_per_page = self.config.security.counters_per_block
        probes = 0
        # Probe every page that holds data: pages written fewer than n
        # times never had their counter line persisted at all (their
        # persisted counter is the zero genesis value), and pages with
        # a persisted line may still be up to n-1 bumps stale.
        touched = sorted(
            {
                block // blocks_per_page
                for block in backend.keys(MetadataRegion.DATA)
            }
            | set(backend.keys(MetadataRegion.COUNTERS))
        )
        for counter_index in touched:
            counter = tree.persisted_counter(counter_index)
            recovered = counter.copy()
            changed = False
            first_block = counter_index * blocks_per_page
            for offset in range(blocks_per_page):
                block_index = first_block + offset
                if not backend.contains(MetadataRegion.DATA, block_index):
                    continue
                if not backend.contains(MetadataRegion.HMACS, block_index):
                    continue
                ciphertext = backend.read(
                    MetadataRegion.DATA,
                    block_index,
                    self.config.security.block_bytes,
                )
                stored_mac = backend.read(
                    MetadataRegion.HMACS, block_index, mee.engine.mac_bytes
                )
                block_base = mee.address_space.addr_of_block(block_index)
                found = False
                base_minor = recovered.minors[offset]
                for trial in range(self._interval):
                    candidate = base_minor + trial
                    if candidate > 127:  # minor overflow inside the
                        break            # window: handled by major probe
                    probes += 1
                    mac = data_mac(
                        mee.engine,
                        ciphertext,
                        block_base,
                        recovered.major,
                        candidate,
                    )
                    if mac == stored_mac:
                        if candidate != recovered.minors[offset]:
                            recovered.minors[offset] = candidate
                            changed = True
                        found = True
                        break
                if not found:
                    raise CrashConsistencyError(
                        f"Osiris probing failed for block {block_index}: "
                        f"counter drifted beyond the stop-loss window"
                    )
            if changed:
                backend.write(
                    MetadataRegion.COUNTERS, counter_index, recovered.encode()
                )
        nodes = tree.rebuild_all_from_persisted()
        return RecoveryOutcome(
            protocol=self.name,
            ok=True,
            nodes_recomputed=nodes,
            detail=f"{probes} MAC probes",
        )
