"""Crash injection and recovery (the paper's §6.7 and Table 4).

Two complementary tools live here:

* :class:`CrashInjector` — functional crash testing. Given a live
  engine, it cuts power (volatile state vanishes, NV registers and the
  NVM image survive), runs the bound protocol's recovery procedure over
  the persisted image, and reports a :class:`RecoveryOutcome`. This is
  how the test suite proves each protocol's crash-consistency claim
  rather than asserting it.

* :class:`RecoveryAnalysis` — the analytic recovery-time model behind
  Table 4. Recovery is memory-bandwidth bound (the hash units are fast
  and pipelined); each protocol contributes its stale coverage and the
  bandwidth model converts bytes to milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config import SystemConfig
from repro.core.mee import MemoryEncryptionEngine
from repro.core.protocol import MetadataPersistencePolicy, make_protocol
from repro.errors import FaultInjectionError
from repro.mem.bandwidth import RecoveryBandwidthModel
from repro.util.units import TB


@dataclass
class RecoveryOutcome:
    """Result of one functional recovery run."""

    protocol: str
    ok: bool
    nodes_recomputed: int
    detail: str = ""

    def __bool__(self) -> bool:
        return self.ok


class CrashInjector:
    """Cuts power on a live engine and drives recovery."""

    def __init__(self, mee: MemoryEncryptionEngine) -> None:
        if not mee.functional:
            raise FaultInjectionError(
                "crash injection requires a functional-mode engine "
                "(there is no persisted image to recover otherwise); "
                "build it with functional=True"
            )
        self.mee = mee

    def crash_and_recover(self) -> RecoveryOutcome:
        """Power-fail now, then run the protocol's recovery."""
        self.mee.crash()
        return self.mee.protocol.recover(self.mee.tree)

    def crash_only(self) -> None:
        """Power-fail without recovering (for tamper-then-recover
        scenarios where the test mutates the NVM image in between)."""
        self.mee.crash()

    def recover(self) -> RecoveryOutcome:
        return self.mee.protocol.recover(self.mee.tree)


#: Memory sizes of the paper's Table 4 columns.
TABLE4_MEMORY_SIZES = (2 * TB, 16 * TB, 128 * TB)

#: Rows of Table 4: protocol name plus, for AMNT, the subtree level.
TABLE4_ROWS = (
    ("leaf", None),
    ("strict", None),
    ("anubis", None),
    ("osiris", None),
    ("bmf", None),
    ("amnt", 2),
    ("amnt", 3),
    ("amnt", 4),
)


@dataclass
class RecoveryAnalysis:
    """Analytic Table 4 generator."""

    config: SystemConfig
    model: RecoveryBandwidthModel = field(init=False)

    def __post_init__(self) -> None:
        self.model = RecoveryBandwidthModel(
            self.config.pcm,
            arity=self.config.security.tree_arity,
            counter_ratio=(
                self.config.security.node_bytes / self.config.security.page_bytes
            ),
        )

    def _protocol_for(
        self, name: str, subtree_level: Optional[int]
    ) -> MetadataPersistencePolicy:
        config = self.config
        if subtree_level is not None:
            config = config.with_amnt(subtree_level=subtree_level)
        # Recovery-time formulas need only the configuration, not a
        # bound engine, except AMNT's level which comes from config.
        return make_protocol(name, config)

    def recovery_ms(
        self,
        protocol_name: str,
        memory_bytes: int,
        subtree_level: Optional[int] = None,
    ) -> float:
        protocol = self._protocol_for(protocol_name, subtree_level)
        return protocol.recovery_ms(self.model, memory_bytes)

    def stale_fraction(
        self, protocol_name: str, subtree_level: Optional[int] = None
    ) -> float:
        protocol = self._protocol_for(protocol_name, subtree_level)
        memory = self.config.pcm.capacity_bytes
        return protocol.stale_data_bytes(memory) / memory

    def table4(
        self,
        memory_sizes: Sequence[int] = TABLE4_MEMORY_SIZES,
        rows: Sequence[tuple] = TABLE4_ROWS,
    ) -> List[Dict[str, object]]:
        """Rows of Table 4: recovery ms per memory size + stale share."""
        table = []
        for name, level in rows:
            label = name if level is None else f"AMNT L{level}"
            row: Dict[str, object] = {"protocol": label}
            for memory in memory_sizes:
                row[_size_label(memory)] = self.recovery_ms(name, memory, level)
            row["stale_fraction"] = self.stale_fraction(name, level)
            table.append(row)
        return table


def _size_label(memory_bytes: int) -> str:
    return f"{memory_bytes / TB:.2f}TB"
