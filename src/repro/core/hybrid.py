"""Hybrid SCM + DRAM secure memory (the paper's §7.3 OMT discussion).

The paper argues AMNT "abstracts well to a hybrid SCM-DRAM machine":
AMNT protects the SCM partition, a traditional (volatile) BMT protects
DRAM, and the only additions are one *volatile* root register for the
DRAM tree and the memory controller knowing the physical partition.

This module realizes that design as two independently rooted secure
memories behind one facade:

* the **DRAM partition** runs ordinary writeback secure memory (the
  ``volatile`` protocol) — crash consistency is meaningless there
  because the *data* does not survive power loss either. Its root
  register is volatile: on a crash the whole partition (data, counters,
  tree) resets to the zeroed boot state, which is exactly what real
  DRAM does.
* the **SCM partition** runs AMNT unchanged: counters and HMACs persist
  with writes, the fast subtree gives hot data leaf persistence, and
  recovery rebuilds one subtree region against the NV register.

Addresses below ``dram_bytes`` are DRAM; the rest are SCM. The facade
routes reads/writes, aggregates statistics, and implements the hybrid
crash semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.config import SystemConfig
from repro.core.mee import MemoryEncryptionEngine
from repro.core.protocol import make_protocol
from repro.core.recovery import RecoveryOutcome
from repro.errors import AddressError, ConfigError
from repro.util.bitops import is_power_of_two


@dataclass(frozen=True)
class HybridLayout:
    """Physical partition of a hybrid machine."""

    dram_bytes: int
    scm_bytes: int

    def __post_init__(self) -> None:
        for name in ("dram_bytes", "scm_bytes"):
            value = getattr(self, name)
            if not is_power_of_two(value):
                raise ConfigError(f"{name} must be a power of two, got {value}")

    @property
    def total_bytes(self) -> int:
        return self.dram_bytes + self.scm_bytes

    def partition_of(self, addr: int) -> Tuple[str, int]:
        """(device, device-local address) for a global address."""
        if addr < 0 or addr >= self.total_bytes:
            raise AddressError(
                f"address {addr:#x} outside hybrid space "
                f"[0, {self.total_bytes:#x})"
            )
        if addr < self.dram_bytes:
            return ("dram", addr)
        return ("scm", addr - self.dram_bytes)


class HybridSCMDRAMSystem:
    """Two secure memories, one controller: volatile BMT over DRAM,
    AMNT over SCM."""

    def __init__(
        self,
        config: SystemConfig,
        layout: HybridLayout,
        functional: bool = False,
        scm_protocol: str = "amnt",
    ) -> None:
        self.layout = layout
        dram_config = config.with_pcm(capacity_bytes=layout.dram_bytes)
        scm_config = config.with_pcm(capacity_bytes=layout.scm_bytes)
        self.dram = MemoryEncryptionEngine(
            dram_config,
            make_protocol("volatile", dram_config),
            functional=functional,
        )
        self.scm = MemoryEncryptionEngine(
            scm_config,
            make_protocol(scm_protocol, scm_config),
            functional=functional,
        )

    # ------------------------------------------------------------------
    # datapath
    # ------------------------------------------------------------------

    def _route(self, addr: int) -> Tuple[MemoryEncryptionEngine, int]:
        device, local = self.layout.partition_of(addr)
        return (self.dram if device == "dram" else self.scm), local

    def read_block(self, addr: int) -> int:
        engine, local = self._route(addr)
        return engine.read_block(local)

    def read_block_data(self, addr: int) -> bytes:
        engine, local = self._route(addr)
        return engine.read_block_data(local)

    def write_block(self, addr: int, data: Optional[bytes] = None) -> int:
        engine, local = self._route(addr)
        return engine.write_block(local, data=data)

    def is_scm(self, addr: int) -> bool:
        return self.layout.partition_of(addr)[0] == "scm"

    # ------------------------------------------------------------------
    # crash semantics
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Power loss: the SCM side loses its volatile state; the DRAM
        side loses *everything* — data, counters, tree, and its
        (volatile) root register — returning to the zeroed boot state."""
        self.scm.crash()
        self.dram.crash()
        self._reset_dram_to_boot_state()

    def _reset_dram_to_boot_state(self) -> None:
        if self.dram.functional:
            from repro.crypto.engine import RealCryptoEngine  # noqa: F401
            from repro.integrity.bmt import BonsaiMerkleTree
            from repro.mem.backend import SparseMemory

            self.dram.nvm.backend = SparseMemory()
            self.dram.tree = BonsaiMerkleTree(
                self.dram.geometry, self.dram.engine, self.dram.nvm.backend
            )
            self.dram._volatile_hmacs.clear()
        self.dram.stats.add("boot_resets")

    def recover(self) -> RecoveryOutcome:
        """Hybrid recovery: only the SCM partition has anything to
        recover; DRAM restarted empty."""
        outcome = self.scm.protocol.recover(self.scm.tree)
        return RecoveryOutcome(
            protocol=f"hybrid({outcome.protocol}+volatile-dram)",
            ok=outcome.ok,
            nodes_recomputed=outcome.nodes_recomputed,
            detail=outcome.detail,
        )

    def crash_and_recover(self) -> RecoveryOutcome:
        self.crash()
        return self.recover()

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def persist_traffic(self) -> int:
        """All persists come from the SCM side — the design's point."""
        return self.scm.nvm.persists() + self.dram.nvm.persists()

    def extra_register_bytes(self) -> Tuple[int, int]:
        """(non-volatile, volatile) on-chip register bytes.

        The DRAM tree's root register is the paper's "additional
        (volatile) register"; all NV registers belong to the SCM side.
        """
        nonvolatile = self.scm.registers.total_bytes()
        volatile = self.dram.registers.total_bytes()
        return nonvolatile, volatile
