"""Bonsai Merkle Forest (Freij et al., and §2.3/§7.3).

BMF extends the single NV root register into a small non-volatile
on-chip cache holding a *persistent root set*: an antichain of BMT
nodes that together cover every leaf. A data write persists its
counter, HMAC, and the tree nodes up to (but excluding) the nearest
persistent root — that root's value lives on-chip in NV storage and is
updated for free. Recovery is instant: nothing below a persistent root
can be stale.

The set adapts on an access-count interval: the hottest root is
**pruned** into its children (shortening persist paths under it, at the
cost of ``arity - 1`` extra NV entries), and cold full-sibling groups
are **merged** back into their parent to reclaim space. Because the set
must always cover *all* leaves, BMF cannot give any region true leaf
persistence — every write still write-throughs part of its path. That
full-coverage obligation is exactly why the paper finds BMF tracking
strict persistence on write-intensive workloads.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.protocol import MetadataPersistencePolicy, register_protocol
from repro.errors import CrashConsistencyError, SimulationError
from repro.integrity.geometry import NodeId


@register_protocol
class BMFProtocol(MetadataPersistencePolicy):
    """Persistent-root-set persistence with prune/merge adaptation."""

    name = "bmf"
    has_trusted_registers = True

    def _on_bind(self) -> None:
        geometry = self.mee.geometry
        self._capacity = self.config.bmf.root_set_entries
        self._adjust_interval = self.config.bmf.adjust_interval
        self._writes_since_adjust = 0
        #: The persistent root set: node -> access count this interval.
        self._root_counts: Dict[NodeId, int] = {(1, 0): 0}
        #: NV-cached node values (functional mode only).
        self._root_values: Dict[NodeId, bytes] = {}
        if self.mee.functional:
            self._root_values[(1, 0)] = self.mee.tree.current_node_bytes((1, 0))
        self._deepest_prunable = geometry.num_node_levels

    # ------------------------------------------------------------------
    # root set queries
    # ------------------------------------------------------------------

    def persistent_roots(self) -> List[NodeId]:
        return sorted(self._root_counts)

    def nearest_persistent_root(self, path: List[NodeId]) -> NodeId:
        """First ancestor (bottom-up) in the root set.

        The coverage invariant guarantees one exists on every path.
        """
        for node in path:
            if node in self._root_counts:
                return node
        raise SimulationError(
            "BMF coverage invariant violated: no persistent root on path"
        )

    def covers_all_leaves(self) -> bool:
        """Invariant check used by tests: the root set covers every
        counter block exactly once (it is an antichain cut)."""
        geometry = self.mee.geometry
        covered = 0
        spans = []
        for node in self._root_counts:
            first, last = geometry.counter_range_of(node)
            spans.append((first, last))
            covered += last - first
        spans.sort()
        previous_end = 0
        for first, last in spans:
            if first != previous_end:
                return False
            previous_end = last
        return previous_end == geometry.num_counter_blocks

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def path_update_extent(
        self, counter_index: int, path: List[NodeId]
    ) -> List[NodeId]:
        root = self.nearest_persistent_root(path)
        return path[: path.index(root)]

    def on_data_write(
        self,
        counter_index: int,
        block_index: int,
        path: List[NodeId],
        fenced: bool = False,
    ) -> int:
        mee = self.mee
        root = self.nearest_persistent_root(path)
        cycles = mee.persist_counter_line(counter_index)
        mee.persist_hmac_line(block_index // 8)
        cycles += mee.posted_write_cycles
        for node in path:
            if node == root:
                break
            cycles += mee.persist_tree_node(node)
        self._root_counts[root] += 1
        if mee.functional:
            # The on-chip NV entry absorbs the root's new value.
            self._root_values[root] = mee.tree.current_node_bytes(root)
        self.stats.add("covered_persists")
        self._writes_since_adjust += 1
        if self._writes_since_adjust >= self._adjust_interval:
            self._writes_since_adjust = 0
            self._adjust()
        return cycles

    def trusted_register_node(self, node: NodeId, counter_index: int) -> bool:
        return node in self._root_counts

    # ------------------------------------------------------------------
    # prune / merge
    # ------------------------------------------------------------------

    def _adjust(self) -> None:
        """Interval maintenance: prune the hottest root (making space by
        merging the coldest full-sibling group if needed), then decay
        every counter."""
        hottest = max(self._root_counts, key=self._root_counts.get)
        total = sum(self._root_counts.values())
        # Only prune a root that is both meaningfully hot and prunable
        # (its children must be tree nodes, not counter blocks).
        if (
            self._root_counts[hottest] * 2 >= total > 0
            and hottest[0] < self._deepest_prunable
        ):
            needed = self.mee.geometry.arity - 1
            if len(self._root_counts) + needed > self._capacity:
                self._merge_coldest(exclude=hottest)
            if len(self._root_counts) + needed <= self._capacity:
                self._prune(hottest)
        for node in self._root_counts:
            self._root_counts[node] //= 2
        self.stats.add("adjust_intervals")

    def _prune(self, root: NodeId) -> None:
        """Replace ``root`` with its children in the set."""
        geometry = self.mee.geometry
        count = self._root_counts.pop(root)
        self._root_values.pop(root, None)
        children = list(geometry.children(root))
        share = count // max(1, len(children))
        for child in children:
            self._root_counts[child] = share
            if self.mee.functional:
                self._root_values[child] = self.mee.tree.current_node_bytes(child)
        # The nodes between the old root and its children (none — they
        # are direct children) need no fixing, but the old root's value
        # must now live in memory: persist it so the tree above stays
        # connected for verification walks that miss the register.
        self.mee.persist_tree_node(root)
        self.stats.add("prunes")

    def _merge_coldest(self, exclude: NodeId) -> None:
        """Merge the coldest full-sibling group into its parent."""
        geometry = self.mee.geometry
        by_parent: Dict[NodeId, List[NodeId]] = {}
        for node in self._root_counts:
            if node == (1, 0):
                continue
            by_parent.setdefault(geometry.parent(node), []).append(node)
        candidate: Optional[NodeId] = None
        candidate_heat = None
        for parent, members in by_parent.items():
            expected = sum(1 for _ in geometry.children(parent))
            if len(members) != expected or exclude in members:
                continue
            heat = sum(self._root_counts[m] for m in members)
            if candidate_heat is None or heat < candidate_heat:
                candidate, candidate_heat = parent, heat
        if candidate is None:
            return
        members = by_parent[candidate]
        merged_count = 0
        for member in members:
            merged_count += self._root_counts.pop(member)
            self._root_values.pop(member, None)
            # Children values move from NV cache into memory.
            self.mee.persist_tree_node(member)
        self._root_counts[candidate] = merged_count
        if self.mee.functional:
            self._root_values[candidate] = self.mee.tree.current_node_bytes(
                candidate
            )
        self.stats.add("merges")

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def stale_data_bytes(self, memory_bytes: int) -> float:
        return 0.0  # full coverage: nothing below a persistent root is stale

    def recover(self, tree):
        """Restore root values from NV storage, fix the levels above."""
        from repro.core.recovery import RecoveryOutcome

        from repro.mem.backend import MetadataRegion

        geometry = self.mee.geometry
        fixed = 0
        for node, value in self._root_values.items():
            tree.backend.write(MetadataRegion.TREE, node, value)
            fixed += 1
        # Recompute every strict ancestor of every persistent root,
        # deepest levels first.
        ancestors = set()
        for node in self._root_counts:
            level, index = node
            while level > 1:
                level, index = geometry.parent((level, index))
                ancestors.add((level, index))
        for node in sorted(ancestors, key=lambda n: -n[0]):
            tree.recompute_and_persist(node)
            fixed += 1
        root_bytes = tree.persisted_node_bytes((1, 0))
        if tree.engine.hash8(root_bytes) != tree.root_register:
            raise CrashConsistencyError(
                "BMF recovery: reconstructed root contradicts the register"
            )
        return RecoveryOutcome(
            protocol=self.name, ok=True, nodes_recomputed=fixed
        )

    # ------------------------------------------------------------------
    # area
    # ------------------------------------------------------------------

    def area_overhead(self):
        from repro.core.area import AreaOverhead

        frequency_bits = (
            self.config.metadata_cache.num_lines
            * self.config.bmf.frequency_counter_bits
        )
        return AreaOverhead(
            protocol=self.name,
            nonvolatile_on_chip_bytes=self.config.bmf.root_set_bytes,
            volatile_on_chip_bytes=frequency_bits // 8,
            in_memory_bytes=0,
        )
