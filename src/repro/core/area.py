"""Hardware area accounting (the paper's Table 3 and §6.6).

Each protocol reports its *additional* hardware beyond the baseline
secure-memory engine (which all schemes share: the metadata cache and
the global BMT root register), split the way the paper splits it —
non-volatile on-chip (Flash-class), volatile on-chip (SRAM-class), and
in-memory — because the three are built from different technologies
with very different costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.config import SystemConfig
from repro.util.units import format_bytes


@dataclass(frozen=True)
class AreaOverhead:
    """Additional hardware of one protocol, in bytes by domain."""

    protocol: str
    nonvolatile_on_chip_bytes: int = 0
    volatile_on_chip_bytes: int = 0
    in_memory_bytes: int = 0

    def row(self) -> Dict[str, str]:
        """Human-readable Table 3 row."""
        return {
            "protocol": self.protocol,
            "nv_on_chip": _fmt(self.nonvolatile_on_chip_bytes),
            "vol_on_chip": _fmt(self.volatile_on_chip_bytes),
            "in_memory": _fmt(self.in_memory_bytes),
        }


def _fmt(num_bytes: int) -> str:
    return "-" if num_bytes == 0 else format_bytes(num_bytes)


def protocol_area_table(
    config: SystemConfig,
    protocol_names: Optional[Sequence[str]] = None,
) -> List[AreaOverhead]:
    """Build Table 3: instantiate each protocol on a throwaway engine
    and collect its area report."""
    from repro.core.mee import MemoryEncryptionEngine
    from repro.core.protocol import make_protocol

    names = list(protocol_names) if protocol_names else ["bmf", "anubis", "amnt"]
    rows = []
    for name in names:
        protocol = make_protocol(name, config)
        MemoryEncryptionEngine(config, protocol)  # binds, allocates registers
        rows.append(protocol.area_overhead())
    return rows
