"""Full-image integrity audit (an ``fsck`` for the persisted tree).

Recovery procedures repair what their protocol *expects* to be stale.
An operator facing unexplained corruption wants something stronger: a
complete walk of the persisted NVM image that checks every written
counter against its ancestor chain and the root register, and every
data block against its stored MAC — reporting *where* the image
disagrees with itself rather than failing on first mismatch.

``audit_persisted_image`` does exactly that over a functional engine's
NVM image. It is diagnostic, not security-critical: runtime reads and
recovery still fail closed on their own checks; the audit exists so
tests, examples, and operators can localize damage (e.g. distinguish
"one spliced data block" from "a stale subtree").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core.mee import MemoryEncryptionEngine
from repro.crypto.hmac import data_mac
from repro.mem.backend import MetadataRegion


@dataclass
class AuditReport:
    """Outcome of a full persisted-image audit."""

    counters_checked: int = 0
    blocks_checked: int = 0
    #: Counter indices whose ancestor chain mismatches somewhere.
    broken_counter_chains: List[int] = field(default_factory=list)
    #: Block indices whose stored MAC does not match their ciphertext.
    broken_macs: List[int] = field(default_factory=list)
    #: True when the persisted root hash equals the NV root register.
    root_consistent: bool = True

    @property
    def clean(self) -> bool:
        return (
            not self.broken_counter_chains
            and not self.broken_macs
            and self.root_consistent
        )

    def summary(self) -> str:
        if self.clean:
            return (
                f"clean: {self.counters_checked} counter chains, "
                f"{self.blocks_checked} MACs, root consistent"
            )
        return (
            f"DAMAGED: {len(self.broken_counter_chains)} broken counter "
            f"chains {self.broken_counter_chains[:8]}, "
            f"{len(self.broken_macs)} broken MACs {self.broken_macs[:8]}, "
            f"root {'consistent' if self.root_consistent else 'MISMATCH'}"
        )


def audit_persisted_image(mee: MemoryEncryptionEngine) -> AuditReport:
    """Audit the NVM image of a functional engine.

    Checks, for every written line:

    * each counter block's hash against its parent's slot, recursively
      to the root, and the root's hash against the NV register
      (``persisted_only`` verification — the post-crash view);
    * each data block's stored MAC against a recomputation from the
      persisted ciphertext and counter.

    Lines never written are skipped: the genesis image is consistent by
    construction and auditing terabytes of zeros tells nothing.
    """
    if not mee.functional:
        raise RuntimeError("auditing requires a functional-mode engine")
    tree = mee.tree
    backend = mee.nvm.backend
    report = AuditReport()

    touched_counters = set(backend.keys(MetadataRegion.COUNTERS))
    touched_blocks = list(backend.keys(MetadataRegion.DATA))
    blocks_per_page = mee.config.security.counters_per_block
    touched_counters |= {
        block // blocks_per_page for block in touched_blocks
    }

    for counter_index in sorted(touched_counters):
        result = tree.verify_counter(counter_index, persisted_only=True)
        report.counters_checked += 1
        if result.mismatched_levels:
            report.broken_counter_chains.append(counter_index)
        if not result.root_matches:
            report.root_consistent = False

    for block_index in sorted(touched_blocks):
        report.blocks_checked += 1
        if not backend.contains(MetadataRegion.HMACS, block_index):
            # MAC never persisted (lazy protocol, lost at crash):
            # unverifiable is broken for audit purposes.
            report.broken_macs.append(block_index)
            continue
        ciphertext = backend.read(
            MetadataRegion.DATA, block_index, mee.config.security.block_bytes
        )
        stored_mac = backend.read(
            MetadataRegion.HMACS, block_index, mee.engine.mac_bytes
        )
        block_base = mee.address_space.addr_of_block(block_index)
        counter = tree.persisted_counter(block_index // blocks_per_page)
        major, minor = counter.counter_for(block_index % blocks_per_page)
        expected = data_mac(mee.engine, ciphertext, block_base, major, minor)
        if expected != stored_mac:
            report.broken_macs.append(block_index)
    return report


def localize_damage(
    mee: MemoryEncryptionEngine, report: AuditReport
) -> List[Tuple[int, int]]:
    """Map broken counter chains to their level-3 subtree regions.

    Returns sorted ``(region, count)`` pairs — the operator's view of
    *where* damage clusters, matching AMNT's recovery granularity.
    """
    level = mee.config.amnt.subtree_level
    regions: dict = {}
    for counter_index in report.broken_counter_chains:
        region = mee.geometry.ancestor_at_level(counter_index, level)
        regions[region] = regions.get(region, 0) + 1
    return sorted(regions.items())
