"""The Memory Encryption Engine (MEE): the shared secure-memory datapath.

Every data block that crosses the trusted chip boundary passes through
this engine. The mechanics are identical for every protocol in the
paper — what differs is *which metadata writes are forced through to
NVM and when*, which is delegated to the bound
:class:`~repro.core.protocol.MetadataPersistencePolicy`.

Read path (authentication):
  1. fetch the data block from NVM;
  2. fetch its counter block through the metadata cache;
  3. walk the BMT ancestor path until the first *trusted* anchor — a
     cached node (on-chip means trusted), a protocol NV register (the
     AMNT subtree root, a BMF persistent root), or the global root
     register — fetching missing nodes from NVM along the way;
  4. fetch the block's HMAC line;
  5. in functional mode, actually verify hashes and the MAC, decrypt,
     and raise :class:`~repro.errors.IntegrityError` on any mismatch.

Write path (a dirty block leaving the LLC, or an explicit persist):
  1. read-modify-write the counter (fetch, bump, mark dirty);
  2. update the HMAC line (fetch, mark dirty);
  3. update every BMT node on the ancestor path in the cache (fetch,
     mark dirty) — the tree must reflect the new counter;
  4. write the (encrypted) data block to NVM;
  5. hand control to the protocol, which persists whichever of the
     dirty lines its crash-consistency model requires and charges the
     extra cycles.

Dirty metadata evicted from the cache is lazily written back to NVM by
the engine (the volatile baseline's only metadata traffic); protocols
hook fills and writebacks for their own bookkeeping (Anubis's shadow
table lives entirely in those hooks).

Timing and function are separable: built with ``functional=False`` the
engine tracks cache/NVM events and cycles only; with
``functional=True`` it additionally maintains real encrypted bytes,
counters, MACs, and tree hashes, so tamper and crash-recovery tests
exercise the same code path the timing runs measure.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cache.cache import CacheLine
from repro.cache.metadata_cache import (
    MetadataCache,
    counter_key,
    hmac_key,
    node_key,
)
from repro.config import SystemConfig
from repro.core.protocol import MetadataPersistencePolicy
from repro.crypto.engine import CryptoEngine, RealCryptoEngine
from repro.crypto.hmac import data_mac
from repro.errors import IntegrityError
from repro.integrity.bmt import BonsaiMerkleTree
from repro.integrity.geometry import NodeId, TreeGeometry
from repro.mem.address import AddressSpace
from repro.mem.backend import MetadataRegion, SparseMemory
from repro.mem.nvm import NVMDevice
from repro.persist.root_register import RegisterFile
from repro.util.stats import StatRegistry

#: MACs per 64 B HMAC line (8 x 8 B).
MACS_PER_LINE = 8

# Region enum members resolved once; the read/write paths name their
# region statically instead of re-deriving it from the key tag.
_DATA = MetadataRegion.DATA
_COUNTERS = MetadataRegion.COUNTERS
_TREE = MetadataRegion.TREE
_HMACS = MetadataRegion.HMACS


# Process-wide memos shared by every engine instance. A sweep builds a
# fresh machine per cell, but the key tuples and ancestor paths depend
# only on the address/tree geometry, so sharing them means only the
# first cell of a given geometry pays to build each entry. All values
# are immutable once built (tuples, and lists that are never mutated);
# growth is bounded by the metadata footprint per distinct geometry.
_COUNTER_KEY_CACHE: Dict[int, tuple] = {}
_HMAC_KEY_CACHE: Dict[int, tuple] = {}
_NODE_KEY_CACHE: Dict[NodeId, tuple] = {}
_PATH_CACHE: Dict[tuple, Dict[int, List[NodeId]]] = {}
_PATH_KEY_CACHE: Dict[tuple, Dict[int, List[Tuple[NodeId, tuple]]]] = {}


def _shape_of(geometry: TreeGeometry) -> tuple:
    """The path-memo shape key (what distinguishes ancestor paths)."""
    return (geometry.num_counter_blocks, geometry.arity, geometry.page_bytes)


def shared_counter_key(counter_index: int) -> tuple:
    """The process-wide interned ``("ctr", i)`` key tuple."""
    key = _COUNTER_KEY_CACHE.get(counter_index)
    if key is None:
        key = counter_key(counter_index)
        _COUNTER_KEY_CACHE[counter_index] = key
    return key


def shared_hmac_key(hmac_line: int) -> tuple:
    """The process-wide interned ``("hmac", line)`` key tuple."""
    key = _HMAC_KEY_CACHE.get(hmac_line)
    if key is None:
        key = hmac_key(hmac_line)
        _HMAC_KEY_CACHE[hmac_line] = key
    return key


def shared_node_key(node: NodeId) -> tuple:
    """The process-wide interned ``("node", level, i)`` key tuple."""
    key = _NODE_KEY_CACHE.get(node)
    if key is None:
        key = node_key(node[0], node[1])
        _NODE_KEY_CACHE[node] = key
    return key


def shared_ancestor_path(geometry: TreeGeometry, counter_index: int):
    """The memoized ancestor chain — the *same list object* every
    engine of this geometry shape resolves, so a plan built from it
    hands protocols identical path data to the direct path's."""
    memo = _PATH_CACHE.setdefault(_shape_of(geometry), {})
    path = memo.get(counter_index)
    if path is None:
        path = geometry.ancestors_of_counter(counter_index)
        memo[counter_index] = path
    return path


def shared_path_keys(geometry: TreeGeometry, counter_index: int):
    """The memoized ``(node, key)`` ancestor pairs (see above)."""
    memo = _PATH_KEY_CACHE.setdefault(_shape_of(geometry), {})
    pairs = memo.get(counter_index)
    if pairs is None:
        pairs = [
            (node, shared_node_key(node))
            for node in shared_ancestor_path(geometry, counter_index)
        ]
        memo[counter_index] = pairs
    return pairs


def _region_of_key(key: tuple) -> MetadataRegion:
    kind = key[0]
    if kind == "ctr":
        return MetadataRegion.COUNTERS
    if kind == "node":
        return MetadataRegion.TREE
    if kind == "hmac":
        return MetadataRegion.HMACS
    raise ValueError(f"unknown metadata key kind {kind!r}")


class MemoryEncryptionEngine:
    """Secure-memory controller: caches, tree, protocol, and timing."""

    def __init__(
        self,
        config: SystemConfig,
        protocol: MetadataPersistencePolicy,
        nvm: Optional[NVMDevice] = None,
        functional: bool = False,
        engine: Optional[CryptoEngine] = None,
        integrity_mode: str = "eager",
    ) -> None:
        from repro.config import validate_integrity_mode

        validate_integrity_mode(integrity_mode)
        self.integrity_mode = integrity_mode
        self.config = config
        self.geometry = TreeGeometry.from_config(config)
        self.address_space = AddressSpace(
            config.pcm.capacity_bytes,
            block_bytes=config.security.block_bytes,
            page_bytes=config.security.page_bytes,
        )
        self.functional = functional
        backend = SparseMemory() if functional else None
        self.nvm = nvm if nvm is not None else NVMDevice(config.pcm, backend=backend)
        if functional and self.nvm.backend is None:
            self.nvm.backend = SparseMemory()
        if functional and config.persist_model == "wpq":
            # Stage functional stores in a write-pending queue (undo
            # log). Must happen before the tree is built so tree,
            # protocols, and engine all share the journaling backend.
            self.nvm.attach_wpq()
        #: Pre-resolved WPQ handle (None under write-through): the
        #: persist helpers fence it and the group commits drain it.
        self._wpq = self.nvm.wpq
        self.mdcache = MetadataCache(config.metadata_cache)
        self.registers = RegisterFile()
        self.stats = StatRegistry("mee")
        # Pre-resolved counters for the per-access paths: bumping
        # ``.value`` directly skips the string-keyed registry lookup on
        # every data read/write (see NVMDevice for the same idiom).
        self._ctr_data_reads = self.stats.counter("data_reads")
        self._ctr_data_writes = self.stats.counter("data_writes")
        self._ctr_walk_register = self.stats.counter("walk_stopped_at_register")
        self._ctr_walk_cache = self.stats.counter("walk_stopped_at_cache")
        self._ctr_md_writebacks = self.stats.counter("metadata_writebacks")
        # Metadata-key memos: every read/write builds ("ctr", i) /
        # ("hmac", line) / ("node", level, i) tuples for the cache; the
        # key space is bounded by the metadata footprint, so memoizing
        # them removes a tuple allocation per metadata touch. The node
        # memo stores each counter's (node, key) pairs alongside the
        # ancestor path so the walk loops allocate nothing. The memos
        # are the process-wide caches above, shared across engines so
        # repeated sweep cells reuse each other's work.
        self._counter_keys = _COUNTER_KEY_CACHE
        self._hmac_keys = _HMAC_KEY_CACHE
        self._node_keys = _NODE_KEY_CACHE
        shape = (
            self.geometry.num_counter_blocks,
            self.geometry.arity,
            self.geometry.page_bytes,
        )
        self._path_memo = _PATH_CACHE.setdefault(shape, {})
        self._path_key_memo = _PATH_KEY_CACHE.setdefault(shape, {})
        # Hot bound methods resolved once, plus address decode pieces:
        # the read/write paths inline the block/page split (a bounds
        # check and two shifts) instead of paying two method calls per
        # access.
        self._block_index = self.address_space.block_index
        self._page_index = self.address_space.page_index
        self._as_capacity = self.address_space.capacity_bytes
        self._block_shift = self.address_space._block_shift
        self._page_shift = self.address_space._page_shift
        self._md_latency = self.mdcache.access_latency_cycles
        self._md_access = self.mdcache.access_line
        self._md_clean = self.mdcache.clean
        # Per-region NVM access closures (see NVMDevice.reader/writer):
        # each call site names its region statically.
        self._read_data = self.nvm.reader(_DATA)
        self._read_ctr = self.nvm.reader(_COUNTERS)
        self._read_tree = self.nvm.reader(_TREE)
        self._read_hmac = self.nvm.reader(_HMACS)
        self._write_data = self.nvm.writer(_DATA)
        self._persist_ctr_write = self.nvm.writer(_COUNTERS, persist=True)
        self._persist_tree_write = self.nvm.writer(_TREE, persist=True)
        self._persist_hmac_write = self.nvm.writer(_HMACS, persist=True)
        self._readers_by_kind = {
            "ctr": self._read_ctr,
            "node": self._read_tree,
            "hmac": self._read_hmac,
        }
        self._wb_writers_by_kind = {
            "ctr": self.nvm.writer(_COUNTERS),
            "node": self.nvm.writer(_TREE),
            "hmac": self.nvm.writer(_HMACS),
        }
        # Posted (queued) writes expose only part of the device latency
        # to the critical path; persists always pay it all.
        self._posted_write_cycles = max(
            1,
            int(
                self.nvm.write_latency_cycles
                * config.pcm.posted_write_latency_fraction
            ),
        )

        self.engine: Optional[CryptoEngine] = None
        self.tree: Optional[BonsaiMerkleTree] = None
        self._volatile_hmacs: Dict[int, bytes] = {}
        #: Optional wear instrumentation (repro.mem.wear). When set,
        #: protocols report their private-region writes (e.g. Anubis's
        #: shadow table) here; the engine's own write paths are wrapped
        #: by attach_wear_tracking.
        self.wear_tracker = None
        #: Optional crash scheduler (repro.faults.triggers). When set,
        #: the engine announces phase boundaries to it and brackets each
        #: data write in a persist group so injected power failures land
        #: only at points real ADR hardware could expose.
        self.fault_probe = None
        if functional:
            self.engine = engine if engine is not None else RealCryptoEngine()
            self.tree = BonsaiMerkleTree(
                self.geometry, self.engine, self.nvm.backend,
                mode=integrity_mode,
            )
        # The global BMT root register exists in every protocol.
        root = self.registers.allocate("bmt_root", 64)
        if self.tree is not None:
            root.write(self.tree.root_register)

        self.protocol = protocol
        # Hook elision: the per-access paths call a protocol hook only
        # when its class actually overrides it. Most of the lineup keeps
        # the no-op defaults, so the common case pays an attribute test
        # instead of a method call (several per simulated access). The
        # checks are against the class, so monkeypatched instances of an
        # overriding protocol still work.
        base = MetadataPersistencePolicy
        proto_cls = type(protocol)
        self._fill_hook = (
            protocol.on_metadata_fill
            if proto_cls.on_metadata_fill is not base.on_metadata_fill
            else None
        )
        self._writeback_hook = (
            protocol.on_metadata_writeback
            if proto_cls.on_metadata_writeback is not base.on_metadata_writeback
            else None
        )
        self._read_auth_hook = (
            protocol.on_read_authentication
            if proto_cls.on_read_authentication is not base.on_read_authentication
            else None
        )
        self._default_extent = (
            proto_cls.path_update_extent is base.path_update_extent
        )
        self._check_trusted = proto_cls.has_trusted_registers
        protocol.bind(self)

    # ------------------------------------------------------------------
    # path helpers
    # ------------------------------------------------------------------

    def ancestor_path(self, counter_index: int) -> List[NodeId]:
        """Memoized ancestor chain (leaf-parent .. root) for a counter."""
        path = self._path_memo.get(counter_index)
        if path is None:
            path = self.geometry.ancestors_of_counter(counter_index)
            self._path_memo[counter_index] = path
        return path

    def _ancestor_path_keys(
        self, counter_index: int
    ) -> List[Tuple[NodeId, tuple]]:
        """The ancestor chain paired with ready-made cache keys."""
        pairs = self._path_key_memo.get(counter_index)
        if pairs is None:
            pairs = [
                (node, self._node_key(node))
                for node in self.ancestor_path(counter_index)
            ]
            self._path_key_memo[counter_index] = pairs
        return pairs

    def _node_key(self, node: NodeId) -> tuple:
        key = self._node_keys.get(node)
        if key is None:
            key = node_key(node[0], node[1])
            self._node_keys[node] = key
        return key

    def _counter_key(self, counter_index: int) -> tuple:
        key = self._counter_keys.get(counter_index)
        if key is None:
            key = counter_key(counter_index)
            self._counter_keys[counter_index] = key
        return key

    def _hmac_key(self, hmac_line: int) -> tuple:
        key = self._hmac_keys.get(hmac_line)
        if key is None:
            key = hmac_key(hmac_line)
            self._hmac_keys[hmac_line] = key
        return key

    def _hmac_line_of_block(self, block_index: int) -> int:
        return block_index // MACS_PER_LINE

    # ------------------------------------------------------------------
    # metadata cache plumbing
    # ------------------------------------------------------------------

    def _fetch_metadata(self, key: tuple) -> Tuple[int, bool]:
        """Bring a metadata line on-chip; returns (cycles, was_hit)."""
        result = self._md_access(key)
        if result is True:
            return self._md_latency, True
        return (
            self._md_latency
            + self._fill_miss(key, self._readers_by_kind[key[0]], result),
            False,
        )

    def _fetch(self, key: tuple, nvm_read, dirty: bool = False) -> int:
        """One metadata reference through the cache; returns cycles.

        Fused probe+fill (+dirty-mark) with the region's pre-bound NVM
        read closure passed by the caller — the per-access form of
        :meth:`_fetch_metadata`.
        """
        result = self._md_access(key, dirty)
        if result is True:
            return self._md_latency
        return self._md_latency + self._fill_miss(key, nvm_read, result)

    def _fill_miss(self, key: tuple, nvm_read, victim) -> int:
        """Miss tail after :meth:`SetAssociativeCache.access_line` has
        filled ``key``: NVM fetch latency, the protocol's fill hook, and
        the lazy writeback of a displaced dirty victim."""
        cycles = nvm_read()
        hook = self._fill_hook
        if hook is not None:
            cycles += hook(key)
        if victim is not None and victim.dirty:
            cycles += self._writeback_metadata(victim.key)
        return cycles

    def _writeback_metadata(self, key: tuple) -> int:
        """Lazy writeback of a dirty metadata line on eviction (posted:
        it drains from the write queue off the critical path)."""
        probe = self.fault_probe
        if probe is not None:
            # Posted writebacks can be lost to a power cut: outside a
            # persist group the failure raises here, before the backend
            # sync below runs, so the evicted line's value dies with the
            # write queue — a genuinely torn eviction.
            probe.on_phase("mdcache_eviction")
        self._wb_writers_by_kind[key[0]]()
        cycles = self._posted_write_cycles
        self._ctr_md_writebacks.value += 1
        if self.functional:
            self._sync_line_to_backend(key)
        hook = self._writeback_hook
        if hook is not None:
            cycles += hook(key)
        return cycles

    def _sync_line_to_backend(self, key: tuple) -> None:
        """Functional mode: make NVM reflect the evicted line's value."""
        kind = key[0]
        assert self.tree is not None
        if kind == "ctr":
            self.tree.persist_counter(key[1])
        elif kind == "node":
            self.tree.persist_node((key[1], key[2]))
        elif kind == "hmac":
            line = key[1]
            for block in range(line * MACS_PER_LINE, (line + 1) * MACS_PER_LINE):
                mac = self._volatile_hmacs.pop(block, None)
                if mac is not None:
                    self.nvm.backend.write(MetadataRegion.HMACS, block, mac)

    # ------------------------------------------------------------------
    # persist helpers (called by protocols)
    # ------------------------------------------------------------------

    @property
    def posted_write_cycles(self) -> int:
        """Critical-path cost of a write that overlaps another in-flight
        write (different NVM banks). Protocols charge this for the
        second and later persists of an *unordered* group — e.g. leaf
        persistence's HMAC line, which issues concurrently with its
        counter line. Ordered (tree-walk) persists pay full latency."""
        return self._posted_write_cycles

    def persist_counter_line(self, counter_index: int) -> int:
        """Write-through the counter line (crash-consistency persist)."""
        probe = self.fault_probe
        if probe is not None:
            # The persist window: this line is not yet durable, and
            # neither is anything enqueued since the last fence.
            probe.on_persist()
        cycles = self._persist_ctr_write()
        self._md_clean(self._counter_key(counter_index))
        if self.functional:
            self.tree.persist_counter(counter_index)
        if self._wpq is not None:
            self._wpq.fence()
        return cycles

    def persist_hmac_line(self, hmac_line: int) -> int:
        probe = self.fault_probe
        if probe is not None:
            probe.on_persist()
        cycles = self._persist_hmac_write()
        self._md_clean(self._hmac_key(hmac_line))
        if self.functional:
            first = hmac_line * MACS_PER_LINE
            for block in range(first, first + MACS_PER_LINE):
                mac = self._volatile_hmacs.pop(block, None)
                if mac is not None:
                    self.nvm.backend.write(MetadataRegion.HMACS, block, mac)
        if self._wpq is not None:
            self._wpq.fence()
        return cycles

    def persist_tree_node(self, node: NodeId) -> int:
        probe = self.fault_probe
        if probe is not None:
            probe.on_persist()
        cycles = self._persist_tree_write()
        self._md_clean(self._node_key(node))
        if self.functional:
            self.tree.persist_node(node)
        if self._wpq is not None:
            self._wpq.fence()
        return cycles

    # ------------------------------------------------------------------
    # fault-injection instrumentation
    # ------------------------------------------------------------------

    def fire_phase(self, name: str) -> None:
        """Announce a protocol-phase boundary to an attached fault
        probe (no-op when none is attached)."""
        probe = self.fault_probe
        if probe is not None:
            probe.on_phase(name)

    def commit_persist_group(self) -> None:
        """Mark the in-flight write's persist group durable early.

        The engine commits the group itself at the end of
        :meth:`write_block`; protocols whose ``on_data_write`` continues
        with separately crashable maintenance after the write's own
        persists are complete (AMNT's movement) call this first, so
        crashes injected into that tail find the write already durable.
        """
        if self._wpq is not None:
            # Drain before the commit callback: a crash deferred to
            # this point must observe an empty pending set (the ADR
            # drain is what makes the write durable).
            self._wpq.drain()
        probe = self.fault_probe
        if probe is not None:
            probe.commit_group()

    # ------------------------------------------------------------------
    # functional content helpers
    # ------------------------------------------------------------------

    def _stored_mac(self, block_index: int, paddr: int) -> bytes:
        mac = self._volatile_hmacs.get(block_index)
        if mac is not None:
            return mac
        if self.nvm.backend.contains(MetadataRegion.HMACS, block_index):
            return self.nvm.backend.read(
                MetadataRegion.HMACS, block_index, self.engine.mac_bytes
            )
        # Genesis MAC: zero ciphertext under a zero counter.
        zero_cipher = bytes(self.config.security.block_bytes)
        return data_mac(self.engine, zero_cipher, paddr, 0, 0)

    # ------------------------------------------------------------------
    # the read path
    # ------------------------------------------------------------------

    def read_block(self, paddr: int) -> int:
        """Authenticate-and-fetch one block; returns cycles.

        In functional mode the plaintext is available afterwards via
        :meth:`read_block_data`, which shares this code path.
        """
        cycles, _ = self._read_block_common(paddr)
        return cycles

    def read_block_data(self, paddr: int) -> bytes:
        """Functional read: authenticate, decrypt, return plaintext."""
        if not self.functional:
            raise RuntimeError("read_block_data requires functional mode")
        _, plaintext = self._read_block_common(paddr)
        return plaintext

    def _read_block_common(self, paddr: int) -> Tuple[int, bytes]:
        # Address decode and key lookup, inlined (bounds check + two
        # shifts + memo probes); the slow helpers run only on the first
        # touch of an index or for an out-of-range address.
        if 0 <= paddr < self._as_capacity:
            block_index = paddr >> self._block_shift
            counter_index = paddr >> self._page_shift
        else:
            block_index = self._block_index(paddr)  # raises AddressError
            counter_index = self._page_index(paddr)
        ctr_key = self._counter_keys.get(counter_index)
        if ctr_key is None:
            ctr_key = self._counter_key(counter_index)
        pairs = self._path_key_memo.get(counter_index)
        if pairs is None:
            pairs = self._ancestor_path_keys(counter_index)
        hmac_line = block_index // MACS_PER_LINE
        hkey = self._hmac_keys.get(hmac_line)
        if hkey is None:
            hkey = self._hmac_key(hmac_line)

        cycles = self._read_data()
        self._ctr_data_reads.value += 1

        md_access = self._md_access
        md_latency = self._md_latency
        result = md_access(ctr_key)
        cycles += md_latency
        if result is not True:
            cycles += self._fill_miss(ctr_key, self._read_ctr, result)

        # Verification walk: stop at the first trusted anchor. The
        # per-node register test only matters for protocols with NV
        # anchors (AMNT's subtree root, BMF's root set); the rest of
        # the lineup walks a branch-free loop.
        if self._check_trusted:
            trusted = self.protocol.trusted_register_node
            for node, key in pairs:
                if trusted(node, counter_index):
                    self._ctr_walk_register.value += 1
                    break
                result = md_access(key)
                if result is True:
                    cycles += md_latency
                    self._ctr_walk_cache.value += 1
                    break
                cycles += md_latency + self._fill_miss(
                    key, self._read_tree, result
                )
        else:
            for node, key in pairs:
                result = md_access(key)
                if result is True:
                    cycles += md_latency
                    self._ctr_walk_cache.value += 1
                    break
                cycles += md_latency + self._fill_miss(
                    key, self._read_tree, result
                )

        result = md_access(hkey)
        cycles += md_latency
        if result is not True:
            cycles += self._fill_miss(hkey, self._read_hmac, result)
        hook = self._read_auth_hook
        if hook is not None:
            cycles += hook(counter_index)

        plaintext = b""
        if self.functional:
            plaintext = self._verify_and_decrypt(
                paddr, block_index, counter_index
            )
        return cycles, plaintext

    def _verify_and_decrypt(
        self, paddr: int, block_index: int, counter_index: int
    ) -> bytes:
        block_base = self.address_space.block_base(paddr)
        if not self.nvm.backend.contains(MetadataRegion.DATA, block_index):
            # Never-written memory is not yet under counter-mode
            # encryption: it reads as zeros (still authenticated — the
            # genesis MAC covers exactly this state).
            self.tree.authenticate_or_raise(counter_index)
            return bytes(self.config.security.block_bytes)
        ciphertext = self.nvm.backend.read(
            MetadataRegion.DATA, block_index, self.config.security.block_bytes
        )
        counter = self.tree.current_counter(counter_index)
        offset = self.address_space.block_offset_in_page(paddr)
        major, minor = counter.counter_for(offset)
        expected_mac = data_mac(self.engine, ciphertext, block_base, major, minor)
        if expected_mac != self._stored_mac(block_index, block_base):
            raise IntegrityError(
                f"HMAC mismatch for block {block_index} (addr {paddr:#x})"
            )
        self.tree.authenticate_or_raise(counter_index)
        return self.engine.decrypt(ciphertext, block_base, major, minor)

    # ------------------------------------------------------------------
    # the write path
    # ------------------------------------------------------------------

    def write_block(
        self,
        paddr: int,
        data: Optional[bytes] = None,
        fenced: bool = False,
    ) -> int:
        """One data write reaching memory; returns cycles.

        ``fenced`` marks an application persistence fence (CLWB +
        sfence): the data write itself is synchronous rather than
        posted, and the protocol's fence-ordered bookkeeping is charged
        on the critical path.
        """
        if 0 <= paddr < self._as_capacity:
            block_index = paddr >> self._block_shift
            counter_index = paddr >> self._page_shift
        else:
            block_index = self._block_index(paddr)  # raises AddressError
            counter_index = self._page_index(paddr)
        ctr_key = self._counter_keys.get(counter_index)
        if ctr_key is None:
            ctr_key = self._counter_key(counter_index)
        pairs = self._path_key_memo.get(counter_index)
        if pairs is None:
            pairs = self._ancestor_path_keys(counter_index)
        path = self._path_memo[counter_index]
        hmac_line = block_index // MACS_PER_LINE
        line_key = self._hmac_keys.get(hmac_line)
        if line_key is None:
            line_key = self._hmac_key(hmac_line)
        self._ctr_data_writes.value += 1
        probe = self.fault_probe
        if probe is not None:
            # The functional tree updates the NV root register atomically
            # with the counter bump, so a crash landing between that bump
            # and the protocol's persists would fabricate a torn state no
            # ADR machine can produce. Phase triggers inside the group are
            # therefore deferred to the commit below (the write completes
            # durably); triggers outside any group raise immediately.
            probe.begin_group()

        md_access = self._md_access
        md_latency = self._md_latency

        # 1. read-modify-write the counter.
        result = md_access(ctr_key, True)
        cycles = md_latency
        if result is not True:
            cycles += self._fill_miss(ctr_key, self._read_ctr, result)
        if self.functional:
            self._functional_counter_bump_and_store(
                paddr,
                self.address_space.block_base(paddr),
                block_index,
                counter_index,
                data,
            )

        # 2. update the HMAC line in cache.
        result = md_access(line_key, True)
        cycles += md_latency
        if result is not True:
            cycles += self._fill_miss(line_key, self._read_hmac, result)

        # 3. update the ancestor path in cache (protocols with an NV
        #    trust anchor stop the update below it).
        read_tree = self._read_tree
        if self._default_extent:
            for node, key in pairs:
                result = md_access(key, True)
                cycles += md_latency
                if result is not True:
                    cycles += self._fill_miss(key, read_tree, result)
        else:
            extent = self.protocol.path_update_extent(counter_index, path)
            node_key_of = self._node_key
            for node in extent:
                key = node_key_of(node)
                result = md_access(key, True)
                cycles += md_latency
                if result is not True:
                    cycles += self._fill_miss(key, read_tree, result)

        # 4. the data write itself (posted, unless under a fence).
        self._write_data()
        cycles += (
            self.nvm.write_latency_cycles if fenced else self._posted_write_cycles
        )

        # 5. protocol-specific persistence.
        cycles += self.protocol.on_data_write(
            counter_index, block_index, path, fenced=fenced
        )
        if self._wpq is not None:
            # ADR drain at the group's commit point (before the commit
            # callback, so a deferred crash finds the queue empty and
            # the write durable — matching write_committed=True).
            self._wpq.drain()
        if probe is not None:
            probe.commit_group()
        return cycles

    def _functional_counter_bump_and_store(
        self,
        paddr: int,
        block_base: int,
        block_index: int,
        counter_index: int,
        data: Optional[bytes],
        path: Optional[List[NodeId]] = None,
    ) -> None:
        block_bytes = self.config.security.block_bytes
        plaintext = data if data is not None else bytes(block_bytes)
        if len(plaintext) != block_bytes:
            raise ValueError(f"data must be exactly {block_bytes} bytes")
        offset = self.address_space.block_offset_in_page(paddr)
        old_counter = self.tree.current_counter(counter_index).copy()
        counter = old_counter.copy()
        overflowed = counter.bump(offset)
        if overflowed:
            self.stats.add("minor_overflows")
            self._reencrypt_page(counter_index, old_counter, counter)
        self.tree.set_counter(counter_index, counter, persist=False, path=path)
        major, minor = counter.counter_for(offset)
        ciphertext = self.engine.encrypt(plaintext, block_base, major, minor)
        self.nvm.backend.write(MetadataRegion.DATA, block_index, ciphertext)
        self._volatile_hmacs[block_index] = data_mac(
            self.engine, ciphertext, block_base, major, minor
        )

    # ------------------------------------------------------------------
    # plan-driven replay (the sweep fast path, see repro.sim.plan)
    # ------------------------------------------------------------------

    def replay_plan_events(self, kinds, addrs, event_records) -> int:
        """Drive the full read/write datapath from pre-resolved metadata
        records; returns total cycles.

        ``event_records[i]`` is the :mod:`repro.sim.plan` runtime record
        for event ``i``: the interned counter/HMAC cache keys with their
        premixed set indices, the ``(node, key, mix)`` ancestor triples,
        and the shared ancestor-path list. Each iteration performs the
        same cache transitions, NVM accesses, stat bumps, hooks, and
        functional crypto as :meth:`read_block` / :meth:`write_block` in
        the same order — only the per-event address decode, key-memo
        probes, and set-index hashing are gone, because the plan
        compiler resolved them once per (trace, geometry). Bit identity
        with the direct path is enforced by ``tests/test_plan.py``
        across the protocol lineup and both integrity modes.

        The metadata-cache probe itself is inlined here rather than
        going through :meth:`SetAssociativeCache.access_line_premixed`
        — it is the single hottest operation of a sweep (several probes
        per event, ~1M per reference grid), and the method-call frame
        plus per-call attribute lookups dominate what remains after
        planning. The inline body is a transcription of
        ``access_line_premixed`` (same counters, same LRU transitions,
        same victim semantics), valid because ``build_cache`` gives the
        metadata cache default placement. A popped :class:`CacheLine`
        doubles as the victim record — ``_fill_miss`` reads only
        ``.key`` and ``.dirty``, which both classes carry.
        """
        # Hoists: everything the loop body touches, resolved once.
        inner = self.mdcache._cache
        sets = inner._sets
        set_mask = inner._set_mask
        assoc = inner.associativity
        md_hits = inner._hits
        md_misses = inner._misses
        md_fills = inner._fills
        md_evictions = inner._evictions
        md_dirty_evictions = inner._dirty_evictions
        line_cls = CacheLine
        md_access = self._md_access
        md_latency = self._md_latency
        fill_miss = self._fill_miss
        read_ctr = self._read_ctr
        read_tree = self._read_tree
        read_hmac = self._read_hmac
        read_data = self._read_data
        write_data = self._write_data
        data_reads = self._ctr_data_reads
        data_writes = self._ctr_data_writes
        walk_cache = self._ctr_walk_cache
        walk_register = self._ctr_walk_register
        trusted = (
            self.protocol.trusted_register_node if self._check_trusted else None
        )
        read_auth_hook = self._read_auth_hook
        default_extent = self._default_extent
        extent_of = self.protocol.path_update_extent
        node_key_of = self._node_key
        on_data_write = self.protocol.on_data_write
        wpq = self._wpq
        functional = self.functional
        block_shift = self._block_shift
        block_base_of = self.address_space.block_base
        bump_and_store = self._functional_counter_bump_and_store
        verify_and_decrypt = self._verify_and_decrypt
        posted_cycles = self._posted_write_cycles
        fenced_cycles = self.nvm.write_latency_cycles
        probe = self.fault_probe

        cycles = 0
        for kind, addr, rec in zip(kinds, addrs, event_records):
            ctr_key, ctr_mix, hkey, hmac_mix, triples, path, counter_index = rec
            if kind == 0:  # EVENT_FILL: the read path
                cycles += read_data()
                data_reads.value += 1
                # Counter line (clean reference).
                bucket = sets[ctr_mix & set_mask]
                line = bucket.get(ctr_key)
                cycles += md_latency
                if line is not None:
                    bucket.move_to_end(ctr_key)
                    md_hits.value += 1
                else:
                    md_misses.value += 1
                    victim = None
                    if len(bucket) >= assoc:
                        victim = bucket.popitem(last=False)[1]
                        md_evictions.value += 1
                        if victim.dirty:
                            md_dirty_evictions.value += 1
                    bucket[ctr_key] = line_cls(ctr_key)
                    md_fills.value += 1
                    cycles += fill_miss(ctr_key, read_ctr, victim)
                # BMT walk: climb until the first cached / trusted node.
                for node, key, mix in triples:
                    if trusted is not None and trusted(node, counter_index):
                        walk_register.value += 1
                        break
                    bucket = sets[mix & set_mask]
                    line = bucket.get(key)
                    if line is not None:
                        bucket.move_to_end(key)
                        md_hits.value += 1
                        cycles += md_latency
                        walk_cache.value += 1
                        break
                    md_misses.value += 1
                    victim = None
                    if len(bucket) >= assoc:
                        victim = bucket.popitem(last=False)[1]
                        md_evictions.value += 1
                        if victim.dirty:
                            md_dirty_evictions.value += 1
                    bucket[key] = line_cls(key)
                    md_fills.value += 1
                    cycles += md_latency + fill_miss(key, read_tree, victim)
                # HMAC line (clean reference).
                bucket = sets[hmac_mix & set_mask]
                line = bucket.get(hkey)
                cycles += md_latency
                if line is not None:
                    bucket.move_to_end(hkey)
                    md_hits.value += 1
                else:
                    md_misses.value += 1
                    victim = None
                    if len(bucket) >= assoc:
                        victim = bucket.popitem(last=False)[1]
                        md_evictions.value += 1
                        if victim.dirty:
                            md_dirty_evictions.value += 1
                    bucket[hkey] = line_cls(hkey)
                    md_fills.value += 1
                    cycles += fill_miss(hkey, read_hmac, victim)
                if read_auth_hook is not None:
                    cycles += read_auth_hook(counter_index)
                if functional:
                    verify_and_decrypt(addr, addr >> block_shift, counter_index)
            else:  # EVENT_WRITEBACK (posted) / EVENT_PERSIST (fenced)
                data_writes.value += 1
                if probe is not None:
                    probe.begin_group()
                # Counter line (dirtying reference).
                bucket = sets[ctr_mix & set_mask]
                line = bucket.get(ctr_key)
                cycles += md_latency
                if line is not None:
                    line.dirty = True
                    bucket.move_to_end(ctr_key)
                    md_hits.value += 1
                else:
                    md_misses.value += 1
                    victim = None
                    if len(bucket) >= assoc:
                        victim = bucket.popitem(last=False)[1]
                        md_evictions.value += 1
                        if victim.dirty:
                            md_dirty_evictions.value += 1
                    bucket[ctr_key] = line_cls(ctr_key, True)
                    md_fills.value += 1
                    cycles += fill_miss(ctr_key, read_ctr, victim)
                if functional:
                    bump_and_store(
                        addr,
                        block_base_of(addr),
                        addr >> block_shift,
                        counter_index,
                        None,
                        path=path,
                    )
                # HMAC line (dirtying reference).
                bucket = sets[hmac_mix & set_mask]
                line = bucket.get(hkey)
                cycles += md_latency
                if line is not None:
                    line.dirty = True
                    bucket.move_to_end(hkey)
                    md_hits.value += 1
                else:
                    md_misses.value += 1
                    victim = None
                    if len(bucket) >= assoc:
                        victim = bucket.popitem(last=False)[1]
                        md_evictions.value += 1
                        if victim.dirty:
                            md_dirty_evictions.value += 1
                    bucket[hkey] = line_cls(hkey, True)
                    md_fills.value += 1
                    cycles += fill_miss(hkey, read_hmac, victim)
                if default_extent:
                    for node, key, mix in triples:
                        bucket = sets[mix & set_mask]
                        line = bucket.get(key)
                        cycles += md_latency
                        if line is not None:
                            line.dirty = True
                            bucket.move_to_end(key)
                            md_hits.value += 1
                            continue
                        md_misses.value += 1
                        victim = None
                        if len(bucket) >= assoc:
                            victim = bucket.popitem(last=False)[1]
                            md_evictions.value += 1
                            if victim.dirty:
                                md_dirty_evictions.value += 1
                        bucket[key] = line_cls(key, True)
                        md_fills.value += 1
                        cycles += fill_miss(key, read_tree, victim)
                else:
                    for node in extent_of(counter_index, path):
                        key = node_key_of(node)
                        result = md_access(key, True)
                        cycles += md_latency
                        if result is not True:
                            cycles += fill_miss(key, read_tree, result)
                write_data()
                if kind == 2:
                    cycles += fenced_cycles
                    cycles += on_data_write(
                        counter_index, addr >> block_shift, path, fenced=True
                    )
                else:
                    cycles += posted_cycles
                    cycles += on_data_write(
                        counter_index, addr >> block_shift, path, fenced=False
                    )
                if wpq is not None:
                    wpq.drain()
                if probe is not None:
                    probe.commit_group()
        return cycles

    def _reencrypt_page(self, counter_index, old_counter, new_counter) -> None:
        """Minor-counter overflow: re-encrypt every stored block of the
        page under the new major counter."""
        blocks_per_page = self.config.security.counters_per_block
        first_block = counter_index * blocks_per_page
        for offset in range(blocks_per_page):
            block_index = first_block + offset
            if not self.nvm.backend.contains(MetadataRegion.DATA, block_index):
                continue
            block_base = self.address_space.addr_of_block(block_index)
            old_major, old_minor = old_counter.counter_for(offset)
            ciphertext = self.nvm.backend.read(
                MetadataRegion.DATA, block_index, self.config.security.block_bytes
            )
            plaintext = self.engine.decrypt(
                ciphertext, block_base, old_major, old_minor
            )
            new_major, new_minor = new_counter.counter_for(offset)
            recrypted = self.engine.encrypt(
                plaintext, block_base, new_major, new_minor
            )
            self.nvm.backend.write(MetadataRegion.DATA, block_index, recrypted)
            self._volatile_hmacs[block_index] = data_mac(
                self.engine, recrypted, block_base, new_major, new_minor
            )

    # ------------------------------------------------------------------
    # crash modeling
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Power loss: every volatile structure loses its contents."""
        self.mdcache.drop_all()
        self._volatile_hmacs.clear()
        if self.tree is not None:
            self.tree.crash()
        self.registers.crash()  # no-op by design; NV registers survive
        self.stats.add("crashes")
