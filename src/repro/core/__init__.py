"""The paper's core: metadata persistence protocols over a shared MEE.

``repro.core`` contains the memory encryption engine (the shared read
and write datapath), the protocol interface, the two classical
baselines (strict and leaf persistence, plus the volatile normalization
baseline), the three comparators the paper implements (Osiris, Anubis,
Bonsai Merkle Forest), AMNT itself, the crash/recovery engine, and the
hardware-area accounting behind Table 3.
"""

from repro.core.amnt import AMNTProtocol
from repro.core.amnt_multi import AMNTMultiProtocol
from repro.core.anubis import AnubisProtocol
from repro.core.area import AreaOverhead, protocol_area_table
from repro.core.baselines import (
    LeafPersistenceProtocol,
    StrictPersistenceProtocol,
    VolatileProtocol,
)
from repro.core.bmf import BMFProtocol
from repro.core.history_buffer import HistoryBuffer
from repro.core.mee import MemoryEncryptionEngine
from repro.core.osiris import OsirisProtocol
from repro.core.protocol import (
    PROTOCOL_REGISTRY,
    MetadataPersistencePolicy,
    make_protocol,
    protocol_names,
)
from repro.core.recovery import CrashInjector, RecoveryAnalysis, RecoveryOutcome
from repro.core.static_hybrid import PLPProtocol, TriadNVMProtocol

__all__ = [
    "MemoryEncryptionEngine",
    "MetadataPersistencePolicy",
    "PROTOCOL_REGISTRY",
    "make_protocol",
    "protocol_names",
    "VolatileProtocol",
    "StrictPersistenceProtocol",
    "LeafPersistenceProtocol",
    "OsirisProtocol",
    "AnubisProtocol",
    "BMFProtocol",
    "AMNTProtocol",
    "AMNTMultiProtocol",
    "TriadNVMProtocol",
    "PLPProtocol",
    "HistoryBuffer",
    "AreaOverhead",
    "protocol_area_table",
    "CrashInjector",
    "RecoveryAnalysis",
    "RecoveryOutcome",
]
