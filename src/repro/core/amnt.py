"""A Midsummer Night's Tree (AMNT): the paper's contribution (§4).

AMNT splits the BMT into a *main tree* under strict persistence and one
dynamically chosen *fast subtree* under leaf persistence — a "tree
within a tree". The subtree root sits at a BIOS-configured level
(level 3 by default: 64 candidate regions of 128 MB each for 8 GB) and
its node value lives in a 64 B non-volatile on-chip register, making it
a second root of trust:

* **in-subtree writes** persist only the counter and HMAC; path nodes
  below the subtree root stay dirty in the metadata cache and the
  register absorbs the new subtree hash on-chip — leaf-persistence
  cost;
* **out-of-subtree writes** write the whole ancestral path through to
  NVM — strict-persistence cost, incurred rarely if the hot-region
  assumption holds;
* **reads** of in-subtree data verify only up to the subtree register,
  a shorter walk.

A 96-byte history buffer tracks which region receives the most writes;
every ``movement_interval`` writes the head region is adopted as the
new subtree. Movement first makes the old subtree strict-consistent:
the metadata cache's dirty bits identify exactly the in-subtree nodes
to flush (nothing else can be dirty under AMNT), and the path from the
old subtree root to the global root is recomputed and persisted.

After a crash only the current subtree region is stale; recovery
rebuilds it from the (always persisted) counters, checks the rebuilt
value against the NV subtree register, then repairs the levels above
and checks the global root — time bounded by the region size, i.e. by
the configured level (Table 4's AMNT rows).

Fidelity note: the functional tree overlay keeps *all* ancestors
current, so a strict write that persists a node above the live subtree
stores a value already reflecting in-subtree updates, which real AMNT
hardware would not compute until movement. This only makes persisted
state fresher than strictly required; recovery and timing behaviour
are unaffected (recovery recomputes those levels regardless).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.history_buffer import HistoryBuffer
from repro.core.protocol import MetadataPersistencePolicy, register_protocol
from repro.integrity.geometry import NodeId


class AMNTProtocol(MetadataPersistencePolicy):
    """Dynamic hybrid metadata persistence with hot-region tracking."""

    name = "amnt"
    benefits_from_modified_os = True
    has_trusted_registers = True

    def _on_bind(self) -> None:
        geometry = self.mee.geometry
        self.subtree_level = self.config.amnt.subtree_level
        self.num_regions = geometry.nodes_at_level(self.subtree_level)
        self.history = HistoryBuffer(self.config.amnt.history_buffer_entries)
        self._movement_interval = self.config.amnt.movement_interval_writes
        self._writes_since_selection = 0
        self._current_region: Optional[int] = None
        self._register = self.mee.registers.allocate("amnt_subtree_root", 64)
        # Per-memory-write counters, pre-resolved off the hot path.
        self._ctr_subtree_hits = self.stats.counter("subtree_hits")
        self._ctr_subtree_misses = self.stats.counter("subtree_misses")

    # ------------------------------------------------------------------
    # region arithmetic
    # ------------------------------------------------------------------

    def region_of_counter(self, counter_index: int) -> int:
        return self.mee.geometry.ancestor_at_level(
            counter_index, self.subtree_level
        )

    def region_of_frame(self, frame: int, page_bytes: int = 4096) -> int:
        """Subtree region of a physical frame — the mapping AMNT++'s
        allocator bias is expressed in."""
        region_bytes = self.mee.geometry.region_bytes(self.subtree_level)
        return (frame * page_bytes) // region_bytes

    @property
    def current_region(self) -> Optional[int]:
        return self._current_region

    def subtree_node(self) -> Optional[NodeId]:
        if self._current_region is None:
            return None
        return (self.subtree_level, self._current_region)

    def in_subtree(self, counter_index: int) -> bool:
        return (
            self._current_region is not None
            and self.region_of_counter(counter_index) == self._current_region
        )

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def path_update_extent(
        self, counter_index: int, path: List[NodeId]
    ) -> List[NodeId]:
        if not self.in_subtree(counter_index):
            return path
        # Strictly below the subtree root: the register holds the
        # subtree root itself, and levels above are reconciled only on
        # movement.
        subtree = self.subtree_node()
        return [node for node in path if node[0] > subtree[0]]

    def on_data_write(
        self,
        counter_index: int,
        block_index: int,
        path: List[NodeId],
        fenced: bool = False,
    ) -> int:
        mee = self.mee
        region = self.region_of_counter(counter_index)
        if self.in_subtree(counter_index):
            # Leaf persistence inside the fast subtree: counter + HMAC
            # issue concurrently (unordered pair).
            cycles = mee.persist_counter_line(counter_index)
            mee.persist_hmac_line(block_index // 8)
            cycles += mee.posted_write_cycles
            if mee.functional:
                subtree = self.subtree_node()
                self._register.write(
                    mee.engine.hash8(mee.tree.current_node_bytes(subtree)),
                    tag=subtree,
                )
            self._ctr_subtree_hits.value += 1
        else:
            # Strict persistence outside it (ordered tree walk).
            cycles = mee.persist_counter_line(counter_index)
            mee.persist_hmac_line(block_index // 8)
            cycles += mee.posted_write_cycles
            for node in path:
                cycles += mee.persist_tree_node(node)
            self._ctr_subtree_misses.value += 1

        # The write's own persists are complete here; everything below
        # (history tracking, possible subtree movement) is separately
        # crashable maintenance, so injected failures in that tail must
        # find the write already durable.
        mee.commit_persist_group()

        # Hot-region tracking runs off the critical path (§4.2); its
        # buffer update costs no cycles here, only the rare movement
        # traffic does.
        self.history.record(region)
        self._writes_since_selection += 1
        if self._writes_since_selection >= self._movement_interval:
            self._writes_since_selection = 0
            cycles += self._select_subtree()
        return cycles

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def trusted_register_node(self, node: NodeId, counter_index: int) -> bool:
        return node == self.subtree_node()

    # ------------------------------------------------------------------
    # subtree selection and movement
    # ------------------------------------------------------------------

    def _select_subtree(self) -> int:
        candidate = self.history.head_region()
        self.history.reset_interval(keep_region=candidate)
        self.stats.add("selection_intervals")
        if candidate is None or candidate == self._current_region:
            return 0
        return self._move_to(candidate)

    def _move_to(self, new_region: int) -> int:
        """Transition T -> T': persist T's interior and upper path,
        then retarget the register (§4.2)."""
        mee = self.mee
        cycles = 0
        old = self.subtree_node()
        self.fire_phase("amnt_movement")  # relocation begins
        if old is not None:
            # 1. Dirty-bit scan: under AMNT only in-subtree nodes can be
            #    dirty, so the scan yields exactly the lines to flush.
            dirty = mee.mdcache.dirty_nodes_matching(
                lambda level, index: self._node_in_subtree(level, index, old)
            )
            for level, index in dirty:
                self.fire_phase("amnt_movement")  # mid-flush window
                cycles += mee.persist_tree_node((level, index))
                self.stats.add("movement_flushes")
            # 2. Persist the old subtree root's value and the path from
            #    it to the global root.
            node = old
            cycles += mee.persist_tree_node(node)
            while node[0] > 1:
                node = mee.geometry.parent(node)
                # In functional mode the volatile overlay already holds
                # the up-to-date upper-path values (the tree propagates
                # every counter update), so persisting the line is the
                # whole reconciliation.
                cycles += mee.persist_tree_node(node)
        # Last crash window before the (atomic) register retarget: the
        # old subtree and its upper path are fully persisted, but the NV
        # register still anchors the old region.
        self.fire_phase("amnt_movement")
        self._current_region = new_region
        new_node = self.subtree_node()
        if mee.functional:
            self._register.write(
                mee.engine.hash8(mee.tree.current_node_bytes(new_node)),
                tag=new_node,
            )
        else:
            self._register.write(b"", tag=new_node)
        self.stats.add("movements")
        return cycles

    def _node_in_subtree(self, level: int, index: int, subtree: NodeId) -> bool:
        subtree_level, subtree_index = subtree
        if level <= subtree_level:
            return False
        if level == self.mee.geometry.counter_level:
            span = self.mee.geometry.counters_covered_by(subtree_level)
        else:
            span = self.mee.geometry.arity ** (level - subtree_level)
        return index // span == subtree_index

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def stale_data_bytes(self, memory_bytes: int) -> float:
        """One subtree region: memory / arity**(level-1).

        Reads the level from the configuration (not the bound engine)
        so the analytic Table 4 model can query unbound protocols.
        """
        level = self.config.amnt.subtree_level
        regions = self.config.security.tree_arity ** (level - 1)
        return memory_bytes / regions

    def recover(self, tree):
        from repro.core.recovery import RecoveryOutcome

        subtree = self._register.tag
        if subtree is None:
            return RecoveryOutcome(
                protocol=self.name, ok=True, nodes_recomputed=0,
                detail="no subtree selected; nothing stale",
            )
        subtree = tuple(subtree)
        rebuilt_bytes, nodes = tree.subtree_value_from_persisted(subtree)
        if tree.engine.hash8(rebuilt_bytes) != self._register.read():
            return RecoveryOutcome(
                protocol=self.name,
                ok=False,
                nodes_recomputed=nodes,
                detail="rebuilt subtree contradicts the NV subtree register",
            )
        node = subtree
        while node[0] > 1:
            node = tree.geometry.parent(node)
            tree.recompute_and_persist(node)
            nodes += 1
        root_bytes = tree.persisted_node_bytes((1, 0))
        ok = tree.engine.hash8(root_bytes) == tree.root_register
        return RecoveryOutcome(
            protocol=self.name,
            ok=ok,
            nodes_recomputed=nodes,
            detail="" if ok else "global root mismatch after subtree repair",
        )

    # ------------------------------------------------------------------
    # area
    # ------------------------------------------------------------------

    def area_overhead(self):
        from repro.core.area import AreaOverhead

        return AreaOverhead(
            protocol=self.name,
            nonvolatile_on_chip_bytes=64,  # the subtree root register
            volatile_on_chip_bytes=self.history.area_bits // 8,
            in_memory_bytes=0,
        )


register_protocol(AMNTProtocol)
register_protocol(AMNTProtocol, alias="amnt++", modified_os=True)
