"""AMNT's hot-region history buffer (the paper's Section 4.2).

A small on-chip structure tracking which subtree region receives the
most data writes. It holds up to ``n`` entries of (region index,
counter); on each data write the matching entry's counter increments
(or a new entry displaces the least-counted non-head entry). The buffer
is *not* kept fully sorted — hardware only guarantees the invariant the
paper states: **the head entry always holds the maximum counter**,
maintained by a single compare-and-swap against the head on each
increment. Ties keep the incumbent at the head, avoiding gratuitous
subtree movement.

After ``n`` recorded writes the protocol reads the head as the next
subtree region and calls :meth:`reset_interval`, zeroing every counter.

Area: each entry needs ``log2(n)`` bits of region index plus
``log2(n)`` bits of counter — ``n * 2 * log2(n)`` bits total, 768 bits
(96 bytes) for the default ``n = 64``, as reported in Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.util.bitops import ilog2


@dataclass
class _Entry:
    region: int
    count: int


@dataclass
class HistoryBuffer:
    """Bounded most-frequent-region tracker with a guaranteed-max head."""

    capacity: int = 64
    _entries: List[_Entry] = field(default_factory=list)
    _recorded: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 2:
            raise ValueError("history buffer needs at least two entries")

    # -- recording ---------------------------------------------------------

    def record(self, region: int) -> None:
        """Account one data write to ``region``.

        Mirrors the hardware's two steps: (1) scan for the region and
        increment (allocating, possibly displacing the least-counted
        non-head entry, when absent); (2) compare against the head and
        swap if strictly greater — ties leave the incumbent in place.
        """
        if region < 0:
            raise ValueError(f"region index must be non-negative, got {region}")
        position = self._find(region)
        if position is None:
            position = self._allocate(region)
        entry = self._entries[position]
        entry.count += 1
        self._recorded += 1
        if position != 0 and entry.count > self._entries[0].count:
            self._entries[0], self._entries[position] = (
                self._entries[position],
                self._entries[0],
            )

    def _find(self, region: int) -> Optional[int]:
        for position, entry in enumerate(self._entries):
            if entry.region == region:
                return position
        return None

    def _allocate(self, region: int) -> int:
        if len(self._entries) < self.capacity:
            self._entries.append(_Entry(region, 0))
            return len(self._entries) - 1
        # Displace the least-counted entry, never the head.
        victim = min(
            range(1, len(self._entries)),
            key=lambda position: self._entries[position].count,
        )
        self._entries[victim] = _Entry(region, 0)
        return victim

    # -- interval protocol -------------------------------------------------

    @property
    def recorded_writes(self) -> int:
        """Writes recorded since the last interval reset."""
        return self._recorded

    def interval_complete(self) -> bool:
        """True after ``capacity`` writes — time to (re)select."""
        return self._recorded >= self.capacity

    def head_region(self) -> Optional[int]:
        """The current most-written region (None when empty)."""
        return self._entries[0].region if self._entries else None

    def head_count(self) -> int:
        return self._entries[0].count if self._entries else 0

    def reset_interval(self, keep_region: Optional[int] = None) -> None:
        """Zero all counters and start the next tracking interval.

        ``keep_region`` (the newly selected subtree) stays as the head
        entry so ties in the next interval favour the incumbent.
        """
        self._recorded = 0
        self._entries.clear()
        if keep_region is not None:
            self._entries.append(_Entry(keep_region, 0))

    # -- introspection -------------------------------------------------------

    def contents(self) -> List[Tuple[int, int]]:
        """(region, count) pairs, head first — for tests and debugging."""
        return [(entry.region, entry.count) for entry in self._entries]

    def check_head_invariant(self) -> bool:
        """The property hardware maintains: head count is the maximum."""
        if not self._entries:
            return True
        head = self._entries[0].count
        return all(entry.count <= head for entry in self._entries)

    @property
    def area_bits(self) -> int:
        index_bits = ilog2(self.capacity)
        return self.capacity * 2 * index_bits
