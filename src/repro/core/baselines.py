"""The three reference protocols: volatile, strict, and leaf.

* **volatile** — ordinary writeback secure memory with no persistence
  obligations. It is *not crash consistent* (dirty metadata dies with
  the caches) and exists as the normalization baseline every figure in
  the paper divides by.
* **strict** — every metadata line touched by a write (counter, HMAC,
  whole BMT ancestor path) is written through to NVM immediately.
  Trivial recovery, brutal runtime (the paper measures ~2.4x single-
  program average).
* **leaf** — only the counter and HMAC persist with the data; tree
  nodes stay lazy in the metadata cache. Near-baseline runtime, but on
  a crash *every* inner node is presumed stale, so recovery rebuilds
  the whole tree (Table 4's linear-in-memory-size row).
"""

from __future__ import annotations

from typing import List

from repro.core.protocol import (
    MetadataPersistencePolicy,
    register_protocol,
)
from repro.errors import CrashConsistencyError
from repro.integrity.geometry import NodeId


@register_protocol
class VolatileProtocol(MetadataPersistencePolicy):
    """Writeback secure memory: the normalization baseline."""

    name = "volatile"
    is_crash_consistent = False

    def on_data_write(
        self,
        counter_index: int,
        block_index: int,
        path: List[NodeId],
        fenced: bool = False,
    ) -> int:
        # Nothing persists; dirty lines drain lazily on eviction.
        return 0

    def stale_data_bytes(self, memory_bytes: int) -> float:
        # Meaningless for an unrecoverable scheme; report everything.
        return float(memory_bytes)

    def recover(self, tree):
        """A volatile scheme cannot recover: dirty counters died in the
        cache, so the persisted image contradicts the root register."""
        from repro.core.recovery import RecoveryOutcome

        try:
            nodes = tree.rebuild_all_from_persisted()
        except CrashConsistencyError as error:
            return RecoveryOutcome(
                protocol=self.name, ok=False, nodes_recomputed=0,
                detail=str(error),
            )
        # Only consistent if no metadata happened to be dirty at the
        # crash (e.g. nothing was ever written).
        return RecoveryOutcome(
            protocol=self.name, ok=True, nodes_recomputed=nodes
        )


@register_protocol
class StrictPersistenceProtocol(MetadataPersistencePolicy):
    """Write-through everything: zero recovery, maximal write cost."""

    name = "strict"

    def _on_bind(self) -> None:
        self._ctr_paths = self.stats.counter("write_through_paths")

    def on_data_write(
        self,
        counter_index: int,
        block_index: int,
        path: List[NodeId],
        fenced: bool = False,
    ) -> int:
        mee = self.mee
        # Counter and HMAC issue concurrently (unordered pair)...
        cycles = mee.persist_counter_line(counter_index)
        mee.persist_hmac_line(block_index // 8)
        cycles += mee.posted_write_cycles
        # ...but the tree walk is ordered: each level's write-through
        # must be durable before its parent's (persist barriers), which
        # is what puts strict persistence on the critical path.
        probe = mee.fault_probe
        for node in path:
            if probe is not None:
                # Inside the write's persist group, so injected crashes
                # defer to the group commit: ADR drains the queued
                # write-throughs, making the walk all-or-nothing.
                probe.on_phase("strict_write_through")
            cycles += mee.persist_tree_node(node)
        self._ctr_paths.value += 1
        return cycles

    def stale_data_bytes(self, memory_bytes: int) -> float:
        return 0.0

    def recover(self, tree):
        from repro.core.recovery import RecoveryOutcome

        # Nothing is stale; the persisted image already matches the
        # root register.
        return RecoveryOutcome(protocol=self.name, ok=True, nodes_recomputed=0)


@register_protocol
class LeafPersistenceProtocol(MetadataPersistencePolicy):
    """Persist counter + HMAC with the data; tree nodes stay lazy."""

    name = "leaf"

    def _on_bind(self) -> None:
        self._ctr_leaf_persists = self.stats.counter("leaf_persists")

    def on_data_write(
        self,
        counter_index: int,
        block_index: int,
        path: List[NodeId],
        fenced: bool = False,
    ) -> int:
        mee = self.mee
        # Counter and HMAC persist atomically with the data write and
        # target independent lines, so the pair overlaps: one full
        # latency plus queue occupancy for the second.
        cycles = mee.persist_counter_line(counter_index)
        mee.persist_hmac_line(block_index // 8)
        cycles += mee.posted_write_cycles
        self._ctr_leaf_persists.value += 1
        return cycles

    def stale_data_bytes(self, memory_bytes: int) -> float:
        return float(memory_bytes)

    # recover(): base-class behaviour — full rebuild against the root
    # register — is exactly leaf persistence's recovery procedure.
