"""The metadata persistence protocol interface and registry.

A protocol decides, for every data write reaching memory, which pieces
of security metadata (counter line, HMAC line, BMT path nodes) are
written through to NVM immediately versus left dirty in the volatile
metadata cache — the crash-consistency/performance trade-off at the
heart of the paper. Protocols also hook the read path (extra trust
anchors shorten verification) and metadata cache events (Anubis's
shadow-table slow path lives there), and describe their recovery
behaviour for Table 4 and the functional crash tests.

Shared mechanics — fetching metadata through the cache, charging NVM
latencies, lazy writeback of dirty evictions, functional tree updates —
live in :class:`repro.core.mee.MemoryEncryptionEngine`; protocols call
back into it through the ``mee`` attribute set by :meth:`bind`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Type

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.integrity.geometry import NodeId
from repro.util.stats import StatRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.area import AreaOverhead
    from repro.core.mee import MemoryEncryptionEngine
    from repro.core.recovery import RecoveryOutcome
    from repro.integrity.bmt import BonsaiMerkleTree
    from repro.mem.bandwidth import RecoveryBandwidthModel


class MetadataPersistencePolicy(ABC):
    """Base class for every persistence protocol in the study."""

    #: Registry key and display name, e.g. ``"amnt"``.
    name: str = "abstract"
    #: False only for the volatile baseline, which sacrifices crash
    #: consistency entirely (it is the normalization reference).
    is_crash_consistent: bool = True
    #: True when the protocol benefits from the AMNT++ modified OS
    #: (the harness pairs ``amnt`` with the modified allocator to form
    #: the paper's ``amnt++`` configuration).
    benefits_from_modified_os: bool = False
    #: True when :meth:`trusted_register_node` can ever return True
    #: (AMNT's subtree root register, BMF's persistent root set). The
    #: engine's verification walk skips the per-node callback entirely
    #: for the protocols without NV anchors — most of the lineup — so
    #: the class flag must be set by any subclass overriding the hook.
    has_trusted_registers: bool = False

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.stats = StatRegistry(f"protocol.{self.name}")
        self.mee: Optional["MemoryEncryptionEngine"] = None
        #: Harness label; differs from ``name`` only for ``amnt++``,
        #: which is the same hardware run on the modified OS.
        self.display_name = self.name

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def bind(self, mee: "MemoryEncryptionEngine") -> None:
        """Attach to an engine; allocates NV registers, etc."""
        self.mee = mee
        self._on_bind()

    def _on_bind(self) -> None:
        """Subclass hook run after ``self.mee`` is available."""

    def fire_phase(self, name: str) -> None:
        """Report a crash-window boundary inside this protocol to the
        engine's fault probe (no-op when none is attached)."""
        self.mee.fire_phase(name)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    @abstractmethod
    def on_data_write(
        self,
        counter_index: int,
        block_index: int,
        path: List[NodeId],
        fenced: bool = False,
    ) -> int:
        """Persistence work for one data write reaching memory.

        Called by the engine *after* the counter, HMAC line, and path
        nodes have been updated (dirty) in the metadata cache. Returns
        extra cycles charged to this write. Implementations persist
        lines via ``self.mee.persist_*`` helpers, which also clean the
        corresponding cache lines.

        ``fenced`` marks writes issued under an application persistence
        fence (CLWB + sfence): any bookkeeping the protocol would
        normally coalesce off the critical path must complete before
        the fence retires and is charged synchronously.
        """

    def path_update_extent(
        self, counter_index: int, path: List[NodeId]
    ) -> List[NodeId]:
        """The ancestor nodes the engine fetches and updates (dirties)
        in the metadata cache on a data write.

        Default: the whole path to the root — the tree must reflect the
        new counter everywhere. Protocols with an intermediate NV trust
        anchor stop below it: AMNT's in-subtree writes update nothing
        above the subtree-root register (that register *is* the trusted
        summary), and BMF stops below the nearest persistent root.
        """
        return path

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def trusted_register_node(self, node: NodeId, counter_index: int) -> bool:
        """True when ``node`` is held in an on-chip NV register and can
        terminate a verification walk (AMNT's subtree root, BMF's
        persistent root set)."""
        return False

    def on_read_authentication(self, counter_index: int) -> int:
        """Extra read-path cycles (protocol bookkeeping)."""
        return 0

    # ------------------------------------------------------------------
    # metadata cache events
    # ------------------------------------------------------------------

    def on_metadata_fill(self, key: tuple) -> int:
        """Called on every metadata cache miss/fill. Returns extra
        cycles (Anubis's shadow-table persist happens here)."""
        return 0

    def on_metadata_writeback(self, key: tuple) -> int:
        """Called when a dirty metadata line is written back on
        eviction (the lazy path). Returns extra cycles."""
        return 0

    # ------------------------------------------------------------------
    # recovery characterization
    # ------------------------------------------------------------------

    def stale_data_bytes(self, memory_bytes: int) -> float:
        """Protected-data coverage of BMT state that may be stale at a
        crash — the input to the Table 4 bandwidth model. Default:
        everything (full-tree rebuild, i.e. leaf persistence)."""
        return float(memory_bytes)

    def recovery_ms(
        self, model: "RecoveryBandwidthModel", memory_bytes: int
    ) -> float:
        """Analytic recovery time (Table 4)."""
        return model.rebuild_milliseconds(self.stale_data_bytes(memory_bytes))

    def recover(self, tree: "BonsaiMerkleTree") -> "RecoveryOutcome":
        """Functional post-crash recovery over the persisted image.

        Default behaviour is the leaf-persistence procedure: rebuild
        the whole tree from persisted counters and verify against the
        on-chip root register. Subclasses override with their own
        mechanism.
        """
        from repro.core.recovery import RecoveryOutcome

        nodes = tree.rebuild_all_from_persisted()
        return RecoveryOutcome(
            protocol=self.name, ok=True, nodes_recomputed=nodes
        )

    # ------------------------------------------------------------------
    # area accounting (Table 3)
    # ------------------------------------------------------------------

    def area_overhead(self) -> "AreaOverhead":
        """Additional hardware beyond the baseline secure-memory MEE."""
        from repro.core.area import AreaOverhead

        return AreaOverhead(protocol=self.name)

    def __repr__(self) -> str:
        return f"<protocol {self.name}>"


#: name -> (protocol class, use modified OS). ``amnt++`` is AMNT run on
#: the AMNT++-modified operating system; the protocol hardware is
#: identical, which is the paper's point.
PROTOCOL_REGISTRY: Dict[str, tuple] = {}


def register_protocol(
    cls: Type[MetadataPersistencePolicy],
    alias: Optional[str] = None,
    modified_os: bool = False,
) -> Type[MetadataPersistencePolicy]:
    key = alias or cls.name
    if key in PROTOCOL_REGISTRY:
        raise ConfigError(f"protocol {key!r} registered twice")
    PROTOCOL_REGISTRY[key] = (cls, modified_os)
    return cls


def make_protocol(name: str, config: SystemConfig) -> MetadataPersistencePolicy:
    """Instantiate a registered protocol by name (``amnt++`` included)."""
    _ensure_registry_populated()
    try:
        cls, _ = PROTOCOL_REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown protocol {name!r}; known: {sorted(PROTOCOL_REGISTRY)}"
        ) from None
    protocol = cls(config)
    protocol.display_name = name
    return protocol


def protocol_uses_modified_os(name: str) -> bool:
    _ensure_registry_populated()
    try:
        _, modified = PROTOCOL_REGISTRY[name]
    except KeyError:
        raise ConfigError(f"unknown protocol {name!r}") from None
    return modified


def protocol_names() -> List[str]:
    _ensure_registry_populated()
    return sorted(PROTOCOL_REGISTRY)


def _ensure_registry_populated() -> None:
    """Import the protocol modules so their classes self-register."""
    if PROTOCOL_REGISTRY:
        return
    # Imports are for their registration side effects.
    from repro.core import (  # noqa: F401
        amnt,
        amnt_multi,
        anubis,
        baselines,
        bmf,
        osiris,
        static_hybrid,
    )
