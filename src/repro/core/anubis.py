"""Anubis: shadow-table metadata tracking (Zubair & Awad, and §7.3).

Anubis leaves all metadata lazy in the volatile cache but mirrors the
cache's contents in an in-memory *shadow table*: one entry per metadata
cache line, holding the line's address and up-to-date value. After a
crash, only the (bounded, cache-sized) set of shadowed lines must be
repaired — recovery time is fixed at ~1.3 ms regardless of memory size
(Table 4).

The costs, as this paper characterizes them (§6.1, §7.3):

* every metadata cache **miss/fill** updates the shadow table — an NVM
  persist on the authentication critical path (the "slow path" that
  hurts low-locality workloads like *canneal*);
* every **update** to a cached metadata line (i.e. every data write's
  counter bump) must be reflected in its shadow entry atomically with
  the tree update — traffic that is issued on every write, though
  back-to-back updates of one line rewrite the same shadow entry and
  coalesce off the critical path;
* the shadow table itself lives in untrusted memory, so it is guarded
  by a shadow Merkle tree whose root needs one more NV on-chip register
  and which is cached *entirely on-chip* (37 kB of volatile area for
  the 64 kB metadata cache, Table 3) to avoid yet more traffic.
"""

from __future__ import annotations

from typing import List

from repro.core.protocol import MetadataPersistencePolicy, register_protocol
from repro.integrity.geometry import NodeId
from repro.mem.backend import MetadataRegion


@register_protocol
class AnubisProtocol(MetadataPersistencePolicy):
    """Shadow-table crash consistency."""

    name = "anubis"

    def _on_bind(self) -> None:
        # The extra NV register anchoring the shadow Merkle tree.
        self._shadow_root = self.mee.registers.allocate("anubis_shadow_root", 64)

    # ------------------------------------------------------------------
    # runtime costs
    # ------------------------------------------------------------------

    def on_data_write(
        self,
        counter_index: int,
        block_index: int,
        path: List[NodeId],
        fenced: bool = False,
    ) -> int:
        """Reflect the counter update in its shadow entry.

        Back-to-back updates to a cached line rewrite the *same* shadow
        entry, so they coalesce in the memory controller's write queue
        and stay off the authentication critical path — Anubis's cost
        lives in the miss-driven events (:meth:`on_metadata_fill` /
        :meth:`on_metadata_writeback`), as §6.1 characterizes. The
        shadow write is still issued (it appears in NVM write counters)
        but contributes no critical-path cycles — *except* under an
        application persistence fence, where the shadow entry must be
        durable before the fence retires (coalescing across the fence
        would leave an acknowledged write unrecoverable), so a fenced
        write pays the shadow persist synchronously.
        """
        mee = self.mee
        mee.nvm.write_access(MetadataRegion.SHADOW_TABLE, persist=True)
        fence_cycles = mee.nvm.write_latency_cycles if fenced else 0
        if mee.wear_tracker is not None:
            mee.wear_tracker.record(
                MetadataRegion.SHADOW_TABLE, ("ctr", counter_index)
            )
        self.stats.add("shadow_updates")
        if mee.functional:
            # Shadow entries carry the up-to-date values of the cached
            # lines (counter and HMAC), so recovery can restore them
            # even though the lines themselves stay dirty in the
            # volatile cache.
            block = mee.tree.current_counter(counter_index)
            mee.nvm.backend.write(
                MetadataRegion.SHADOW_TABLE,
                ("ctr", counter_index),
                block.encode(),
            )
            mac = mee._volatile_hmacs.get(block_index)
            if mac is not None:
                mee.nvm.backend.write(
                    MetadataRegion.SHADOW_TABLE, ("hmac", block_index), mac
                )
        return fence_cycles

    def on_metadata_fill(self, key: tuple) -> int:
        """The slow path: a cache fill changes which lines are shadowed,
        so the shadow table is updated in NVM before the fill's data can
        be trusted (and there may be several such updates on a single
        authentication — one per missing level).

        With the on-chip shadow cache disabled
        (``config.anubis.shadow_cache_on_chip = False``), every shadow
        update must also read-modify-write the shadow Merkle tree in
        untrusted memory — the configuration the original work pays
        37 kB of SRAM to avoid."""
        self.stats.add("shadow_fills")
        cycles = self.mee.nvm.write_access(
            MetadataRegion.SHADOW_TABLE, persist=True
        )
        if self.mee.wear_tracker is not None:
            self.mee.wear_tracker.record(MetadataRegion.SHADOW_TABLE, key)
        if not self.config.anubis.shadow_cache_on_chip:
            cycles += self.mee.nvm.read_access(MetadataRegion.SHADOW_TREE)
            cycles += self.mee.nvm.write_access(
                MetadataRegion.SHADOW_TREE, persist=True
            )
            self.stats.add("shadow_tree_walks")
        return cycles

    def on_metadata_writeback(self, key: tuple) -> int:
        """Evicting a dirty line rewrites the same shadow entry the
        fill that displaces it writes; the traffic is issued but the
        entry update coalesces with the fill's (charged there)."""
        self.stats.add("shadow_retires")
        self.mee.nvm.write_access(MetadataRegion.SHADOW_TABLE, persist=True)
        if self.mee.wear_tracker is not None:
            self.mee.wear_tracker.record(MetadataRegion.SHADOW_TABLE, key)
        return 0

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def stale_data_bytes(self, memory_bytes: int) -> float:
        # Stale state is bounded by the metadata cache, not memory.
        return 0.0

    def recovery_ms(self, model, memory_bytes: int) -> float:
        """Fixed-size repair: read the shadow table, rewrite the lines
        it names, and fix their ancestor paths. Traffic per shadowed
        line is a path of node reads/writes; the constant below is
        calibrated to the paper's 1.30 ms (Table 4) for the 1024-line
        metadata cache and documented in EXPERIMENTS.md."""
        shadow_entries = self.config.metadata_cache.num_lines
        per_entry_recovery_bytes = 16_360  # calibrated; ~a path of nodes
        return model.fixed_traffic_ms(shadow_entries * per_entry_recovery_bytes)

    def recover(self, tree):
        """Restore shadowed counter values, then repair the tree."""
        from repro.core.recovery import RecoveryOutcome

        backend = self.mee.nvm.backend
        restored = 0
        for key in sorted(backend.keys(MetadataRegion.SHADOW_TABLE)):
            kind, index = key
            if kind == "ctr":
                value = backend.read(MetadataRegion.SHADOW_TABLE, key, 64)
                backend.write(MetadataRegion.COUNTERS, index, value)
            else:  # "hmac"
                value = backend.read(
                    MetadataRegion.SHADOW_TABLE, key, self.mee.engine.mac_bytes
                )
                backend.write(MetadataRegion.HMACS, index, value)
            restored += 1
        nodes = tree.rebuild_all_from_persisted()
        return RecoveryOutcome(
            protocol=self.name,
            ok=True,
            nodes_recomputed=nodes,
            detail=f"{restored} shadow entries restored",
        )

    # ------------------------------------------------------------------
    # area
    # ------------------------------------------------------------------

    def area_overhead(self):
        from repro.core.area import AreaOverhead

        shadow_bytes = (
            self.config.metadata_cache.num_lines
            * self.config.anubis.shadow_entry_bytes
        )
        on_chip = self.config.anubis.shadow_cache_on_chip
        return AreaOverhead(
            protocol=self.name,
            nonvolatile_on_chip_bytes=64,  # shadow Merkle tree root
            # The on-chip shadow MT cache is the optional 37 kB; without
            # it the volatile area vanishes and the runtime pays
            # shadow-tree walks to memory instead.
            volatile_on_chip_bytes=shadow_bytes if on_chip else 0,
            in_memory_bytes=shadow_bytes,  # the shadow table itself
        )
