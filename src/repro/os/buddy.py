"""Binary buddy physical page allocator (the paper's Section 5).

Faithful to the Linux structure the paper modifies: a ``free_area``
array of per-order free lists, where the list at index *i* holds chunks
of ``2**i`` contiguous pages. Allocation pops the head of the matching
list, splitting a higher-order chunk when the list is empty; freeing
coalesces a chunk with its buddy (address XOR of the order bit) as far
as possible and pushes the result on the head of its list.

Every list operation increments an *instruction* counter with a small
per-operation cost model, so the AMNT++ restructuring pass (which scans
and reorders these lists) can be charged against the stock allocator —
that ratio is Table 2's instruction-overhead column.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.errors import AllocationError
from repro.util.bitops import ilog2, is_power_of_two
from repro.util.stats import StatRegistry

#: Modeled instruction costs of allocator primitives. Absolute values
#: are rough (list surgery is a handful of loads/stores in Linux); only
#: the *ratio* between stock work and restructuring work matters.
INSTRUCTIONS_PER_LIST_OP = 6
INSTRUCTIONS_PER_SPLIT = 10
INSTRUCTIONS_PER_COALESCE_CHECK = 4
INSTRUCTIONS_PER_SCAN_STEP = 2


@dataclass(frozen=True)
class FreeChunk:
    """A free chunk: ``2**order`` pages starting at frame ``pfn``."""

    pfn: int
    order: int

    @property
    def pages(self) -> int:
        return 1 << self.order


class BuddyAllocator:
    """Binary buddy allocator over ``total_pages`` physical frames."""

    def __init__(self, total_pages: int, max_order: int = 10) -> None:
        if not is_power_of_two(total_pages):
            raise AllocationError(
                f"total_pages must be a power of two, got {total_pages}"
            )
        if max_order < 0 or (1 << max_order) > total_pages:
            raise AllocationError(f"max_order {max_order} too large")
        self.total_pages = total_pages
        self.max_order = max_order
        self.stats = StatRegistry("buddy")
        # List surgery runs on every page fault and churn burst:
        # pre-resolve the counters the accounting below bumps.
        self._instr = self.stats.counter("instructions")
        self._ctr_allocs = self.stats.counter("allocations")
        self._ctr_frees = self.stats.counter("frees")
        #: free_area[i] — deque of pfns of free chunks of order i.
        #: Head (index 0) is the allocation point, like the list head
        #: Linux pops from.
        self.free_area: List[Deque[int]] = [deque() for _ in range(max_order + 1)]
        #: Fast membership checks during coalescing.
        self._free_set: List[Dict[int, None]] = [{} for _ in range(max_order + 1)]
        # Seed the allocator with max-order chunks covering everything.
        chunk_pages = 1 << max_order
        for pfn in range(0, total_pages, chunk_pages):
            self._push(pfn, max_order)

    # -- internal list surgery (instruction-accounted) --------------------

    def _charge(self, instructions: int) -> None:
        self._instr.value += instructions

    def _push(self, pfn: int, order: int, to_head: bool = True) -> None:
        if to_head:
            self.free_area[order].appendleft(pfn)
        else:
            self.free_area[order].append(pfn)
        self._free_set[order][pfn] = None
        self._charge(INSTRUCTIONS_PER_LIST_OP)

    def _pop_head(self, order: int) -> int:
        pfn = self.free_area[order].popleft()
        del self._free_set[order][pfn]
        self._charge(INSTRUCTIONS_PER_LIST_OP)
        return pfn

    def _remove(self, pfn: int, order: int) -> None:
        self.free_area[order].remove(pfn)
        del self._free_set[order][pfn]
        self._charge(INSTRUCTIONS_PER_LIST_OP)

    def _is_free(self, pfn: int, order: int) -> bool:
        self._charge(INSTRUCTIONS_PER_COALESCE_CHECK)
        return pfn in self._free_set[order]

    # -- public API ---------------------------------------------------------

    def alloc_pages(self, order: int = 0) -> int:
        """Allocate ``2**order`` contiguous pages; returns the base pfn.

        Pops the head of the order's free list; on an empty list, walks
        up to the first non-empty order and splits down, pushing each
        unused half ("buddy") onto the head of its list — exactly the
        Linux fast path the paper leaves untouched.
        """
        if not 0 <= order <= self.max_order:
            raise AllocationError(f"order {order} outside [0, {self.max_order}]")
        search = order
        while search <= self.max_order and not self.free_area[search]:
            self._charge(INSTRUCTIONS_PER_SCAN_STEP)
            search += 1
        if search > self.max_order:
            raise AllocationError(
                f"out of memory: no free chunk of order >= {order}"
            )
        pfn = self._pop_head(search)
        while search > order:
            search -= 1
            buddy = pfn + (1 << search)
            self._push(buddy, search)
            self._charge(INSTRUCTIONS_PER_SPLIT)
        self._ctr_allocs.value += 1
        return pfn

    def free_pages(self, pfn: int, order: int = 0) -> None:
        """Return a chunk, coalescing with free buddies upward."""
        if not 0 <= order <= self.max_order:
            raise AllocationError(f"order {order} outside [0, {self.max_order}]")
        if pfn % (1 << order):
            raise AllocationError(f"pfn {pfn} misaligned for order {order}")
        if not 0 <= pfn < self.total_pages:
            raise AllocationError(f"pfn {pfn} out of range")
        while order < self.max_order:
            buddy = pfn ^ (1 << order)
            if not self._is_free(buddy, order):
                break
            self._remove(buddy, order)
            pfn = min(pfn, buddy)
            order += 1
        self._push(pfn, order)
        self._ctr_frees.value += 1

    # -- introspection ----------------------------------------------------

    def free_pages_total(self) -> int:
        return sum(
            len(chunks) << order for order, chunks in enumerate(self.free_area)
        )

    def free_chunks(self) -> List[FreeChunk]:
        chunks = []
        for order, pfns in enumerate(self.free_area):
            chunks.extend(FreeChunk(pfn, order) for pfn in pfns)
        return chunks

    def instructions(self) -> int:
        return self.stats.get("instructions")

    def scatter(self, rng, span_chunks: int = 64) -> int:
        """Heavily age a span of physical memory for multiprogram runs.

        Carves ``span_chunks`` max-order chunks into individual pages,
        keeps the odd-numbered frames "in use" (so no coalescing can
        reassemble contiguity), and frees the even-numbered frames back
        in shuffled order. Subsequent order-0 allocations then come from
        a randomized pool spanning ``span_chunks * 2**max_order`` pages —
        the fragmented steady state in which two co-running programs'
        pages interleave across subtree regions (Figure 3b's setting).

        Returns the number of free scattered pages produced.
        """
        frames: List[int] = []
        for _ in range(span_chunks):
            try:
                base = self.alloc_pages(self.max_order)
            except AllocationError:
                break
            frames.extend(range(base, base + (1 << self.max_order)))
        even_frames = [pfn for pfn in frames if pfn % 2 == 0]
        rng.shuffle(even_frames)
        for pfn in even_frames:
            self.free_pages(pfn, 0)
        self.stats.add("scatter_pages", len(even_frames))
        return len(even_frames)

    def fragment(self, rng, churn_allocations: int = 256) -> None:
        """Age the allocator: random alloc/free churn so free lists no
        longer hand out neatly contiguous memory — the "random pages
        reclaimed by the OS over time" the paper cites as the obstacle
        to cross-page locality."""
        held: List[FreeChunk] = []
        for _ in range(churn_allocations):
            order = rng.choice((0, 0, 0, 1, 1, 2, 3))
            try:
                pfn = self.alloc_pages(order)
            except AllocationError:
                break
            held.append(FreeChunk(pfn, order))
        rng.shuffle(held)
        # Free back roughly two-thirds, keeping the rest "in use" so the
        # lists stay scrambled.
        for chunk in held[: (2 * len(held)) // 3]:
            self.free_pages(chunk.pfn, chunk.order)
