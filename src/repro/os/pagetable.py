"""Per-process page table: virtual page -> physical frame."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple


@dataclass
class PageTable:
    """A flat virtual-to-physical page mapping for one address space."""

    page_bytes: int = 4096
    _mapping: Dict[int, int] = field(default_factory=dict)

    def lookup(self, virtual_page: int) -> Optional[int]:
        return self._mapping.get(virtual_page)

    def map(self, virtual_page: int, frame: int) -> None:
        if virtual_page in self._mapping:
            raise KeyError(f"virtual page {virtual_page} already mapped")
        self._mapping[virtual_page] = frame

    def unmap(self, virtual_page: int) -> int:
        return self._mapping.pop(virtual_page)

    def translate(self, vaddr: int) -> Optional[int]:
        """Virtual byte address to physical byte address, or None."""
        frame = self._mapping.get(vaddr // self.page_bytes)
        if frame is None:
            return None
        return frame * self.page_bytes + (vaddr % self.page_bytes)

    def mapped_pages(self) -> Iterator[Tuple[int, int]]:
        return iter(self._mapping.items())

    def __len__(self) -> int:
        return len(self._mapping)
