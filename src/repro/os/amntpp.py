"""AMNT++ free-list restructuring (the paper's Section 5).

The modified OS biases the buddy allocator's free lists so that newly
allocated physical pages fall inside one subtree region — the region
with the most free chunks — maximizing the chance that every running
application works inside the same fast subtree.

Faithful to the paper's design decisions:

* the pass runs during *reclamation* (page free), never on the
  allocation fast path;
* it first scans each free list counting chunks per subtree region,
  picks the region with the most free chunks, then rebuilds the list
  with that region's chunks moved to the head (a "temporary biased
  linked list" that replaces the original);
* every scan step and list move is instruction-accounted so Table 2's
  overhead ratio can be measured rather than asserted.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional

from repro.os.buddy import (
    INSTRUCTIONS_PER_LIST_OP,
    INSTRUCTIONS_PER_SCAN_STEP,
    BuddyAllocator,
)


@dataclass
class AMNTPlusPlusRestructurer:
    """Reclamation-time free-list reordering toward one subtree region.

    ``region_of_pfn`` maps a physical frame number to its subtree
    region index (derived from the BMT geometry: frame address divided
    by the per-region coverage). ``reclaim_interval`` throttles how
    often the pass actually runs — Linux reclamation is batched, and
    running the scan on every single free would overstate its cost.
    """

    region_of_pfn: Callable[[int], int]
    reclaim_interval: int = 64
    _frees_since_restructure: int = 0
    last_biased_region: Optional[int] = None
    #: Optional fault-injection callback fired at the crash windows of
    #: the restructuring pass (see repro.faults). The pass only mutates
    #: volatile OS state, but campaigns still crash here to prove the
    #: secure-memory image survives mid-migration power loss.
    phase_hook: Optional[Callable[[], None]] = None

    def on_free(self, allocator: BuddyAllocator) -> bool:
        """Hook called by the memory manager after each ``free_pages``.

        Returns True when a restructuring pass ran.
        """
        self._frees_since_restructure += 1
        if self._frees_since_restructure < self.reclaim_interval:
            return False
        self._frees_since_restructure = 0
        self.restructure(allocator)
        return True

    def restructure(self, allocator: BuddyAllocator) -> int:
        """Scan, pick the most-free region, bias every list toward it.

        Returns the chosen region index. Instructions are charged to
        the allocator's registry under ``restructure_instructions`` as
        well as the shared ``instructions`` counter, so the modified
        OS's extra work is separable.
        """
        if self.phase_hook is not None:
            self.phase_hook()  # reclamation pass begins
        region_chunks: Dict[int, int] = {}
        scan_steps = 0
        for order, pfns in enumerate(allocator.free_area):
            for pfn in pfns:
                region = self.region_of_pfn(pfn)
                region_chunks[region] = region_chunks.get(region, 0) + 1
                scan_steps += 1
        self._charge(allocator, scan_steps * INSTRUCTIONS_PER_SCAN_STEP)
        if not region_chunks:
            return -1
        # Most free chunks wins; ties resolve to the lowest region index
        # for determinism.
        best_region = min(
            region_chunks, key=lambda region: (-region_chunks[region], region)
        )
        if self.phase_hook is not None:
            self.phase_hook()  # mid-pass: target chosen, lists not yet rebuilt
        moves = 0
        for order, pfns in enumerate(allocator.free_area):
            biased: Deque[int] = deque()
            rest: Deque[int] = deque()
            for pfn in pfns:
                if self.region_of_pfn(pfn) == best_region:
                    biased.append(pfn)
                    moves += 1
                else:
                    rest.append(pfn)
            biased.extend(rest)
            allocator.free_area[order] = biased
        self._charge(allocator, moves * INSTRUCTIONS_PER_LIST_OP)
        allocator.stats.add("restructures")
        self.last_biased_region = best_region
        return best_region

    @staticmethod
    def _charge(allocator: BuddyAllocator, instructions: int) -> None:
        allocator.stats.add("instructions", instructions)
        allocator.stats.add("restructure_instructions", instructions)
