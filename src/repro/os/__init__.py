"""Operating-system substrate: physical page allocation and paging.

Implements the Linux-style binary buddy allocator the paper modifies,
the AMNT++ free-list restructuring pass, and the demand-paging layer
that maps workload virtual addresses onto physical frames. Instruction
accounting on every allocator operation supports Table 2's
instruction-overhead comparison between the stock and modified OS.
"""

from repro.os.amntpp import AMNTPlusPlusRestructurer
from repro.os.buddy import BuddyAllocator, FreeChunk
from repro.os.pagetable import PageTable
from repro.os.process import MemoryManager, Process

__all__ = [
    "BuddyAllocator",
    "FreeChunk",
    "AMNTPlusPlusRestructurer",
    "PageTable",
    "Process",
    "MemoryManager",
]
