"""Processes and the demand-paging memory manager.

The memory manager owns the buddy allocator and one page table per
process. Workload traces reference *virtual* addresses; the first touch
of a virtual page faults, allocates a physical frame, and installs the
mapping — so the physical layout (and therefore which BMT subtree
region a process's hot data lands in) is decided here, by either the
stock allocator or the AMNT++-modified one. This is exactly the lever
the paper pulls in Section 5.

Transient page churn (:meth:`MemoryManager.churn`) emulates unrelated
system activity: short-lived allocations that free back and trigger the
reclamation path, which is where AMNT++'s restructuring runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import AllocationError
from repro.os.amntpp import AMNTPlusPlusRestructurer
from repro.os.buddy import BuddyAllocator
from repro.os.pagetable import PageTable
from repro.util.stats import StatRegistry


@dataclass
class Process:
    """One simulated address space."""

    pid: int
    page_table: PageTable


class MemoryManager:
    """Demand paging over a buddy allocator, with optional AMNT++."""

    def __init__(
        self,
        allocator: BuddyAllocator,
        page_bytes: int = 4096,
        restructurer: Optional[AMNTPlusPlusRestructurer] = None,
    ) -> None:
        self.allocator = allocator
        self.page_bytes = page_bytes
        self.restructurer = restructurer
        self.stats = StatRegistry("mm")
        self._processes: Dict[int, Process] = {}
        # translate() runs once per trace record: resolve the fault
        # counter once and keep, per process, a flat virtual-page ->
        # physical-base mirror of the page table so the common case is
        # two dict probes, a shift, and an add. The PageTable stays the
        # authoritative mapping (release_process walks it); the mirror
        # is dropped whenever its process is.
        self._page_faults = self.stats.counter("page_faults")
        self._tables: Dict[int, PageTable] = {}
        self._bases: Dict[int, Dict[int, int]] = {}
        # Shift/mask decode when the page size allows it (it always
        # does under the validated configs; the divmod fallback keeps
        # odd hand-built managers working).
        if page_bytes > 0 and page_bytes & (page_bytes - 1) == 0:
            self._page_shift: Optional[int] = page_bytes.bit_length() - 1
        else:
            self._page_shift = None
        self._page_mask = page_bytes - 1

    @property
    def modified_os(self) -> bool:
        """True when the AMNT++ allocator modification is active."""
        return self.restructurer is not None

    def process(self, pid: int) -> Process:
        existing = self._processes.get(pid)
        if existing is None:
            existing = Process(pid, PageTable(self.page_bytes))
            self._processes[pid] = existing
            self._tables[pid] = existing.page_table
            self._bases[pid] = {
                vpage: frame * self.page_bytes
                for vpage, frame in existing.page_table.mapped_pages()
            }
        return existing

    def translate(self, pid: int, vaddr: int) -> int:
        """Virtual to physical byte address, faulting pages in on
        demand from the buddy allocator."""
        bases = self._bases.get(pid)
        if bases is None:
            self.process(pid)
            bases = self._bases[pid]
        shift = self._page_shift
        if shift is not None:
            vpage = vaddr >> shift
            offset = vaddr & self._page_mask
        else:
            vpage, offset = divmod(vaddr, self.page_bytes)
        base = bases.get(vpage)
        if base is not None:
            return base + offset
        frame = self.allocator.alloc_pages(order=0)
        self._tables[pid].map(vpage, frame)
        bases[vpage] = page_base = frame * self.page_bytes
        self._page_faults.value += 1
        return page_base + offset

    def release_process(self, pid: int) -> int:
        """Tear down a process, freeing every frame (reclamation)."""
        process = self._processes.pop(pid, None)
        self._tables.pop(pid, None)
        self._bases.pop(pid, None)
        if process is None:
            return 0
        freed = 0
        for _, frame in list(process.page_table.mapped_pages()):
            self._free_frame(frame)
            freed += 1
        return freed

    def _free_frame(self, frame: int) -> None:
        self.allocator.free_pages(frame, order=0)
        if self.restructurer is not None:
            self.restructurer.on_free(self.allocator)

    def churn(self, rng, bursts: int = 4, pages_per_burst: int = 16) -> None:
        """Unrelated-system-activity model: allocate short-lived pages
        and free them back, exercising the reclamation path (and, under
        the modified OS, the AMNT++ restructuring pass)."""
        for _ in range(bursts):
            frames: List[int] = []
            for _ in range(pages_per_burst):
                try:
                    frames.append(self.allocator.alloc_pages(order=0))
                except AllocationError:
                    break
            rng.shuffle(frames)
            for frame in frames:
                self._free_frame(frame)
            self.stats.add("churn_bursts")
