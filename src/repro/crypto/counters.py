"""Split encryption counters (major + minor), one block per page.

Following the paper's Table 1 (and the split-counter design of Yan et
al. that it builds on): each 4 KB page owns one 64 B counter block
holding an 8-byte *major* counter and 64 seven-bit *minor* counters,
one per 64 B data block. A block's encryption counter is the
``(major, minor)`` pair, which is spatially unique (address is mixed
into the pad) and temporally unique (the minor increments every write;
on minor overflow the major increments, minors reset, and the whole
page must be re-encrypted).

The 64 x 7 bit minors pack into exactly 56 bytes, so the encoded block
is exactly 64 bytes — one metadata cache line, as the paper assumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

MINOR_BITS = 7
MINOR_LIMIT = (1 << MINOR_BITS) - 1  # 127
MINORS_PER_BLOCK = 64
MAJOR_BYTES = 8
ENCODED_BYTES = MAJOR_BYTES + (MINORS_PER_BLOCK * MINOR_BITS) // 8  # 64


@dataclass
class CounterBlock:
    """In-flight representation of one page's counter block."""

    major: int = 0
    minors: List[int] = field(default_factory=lambda: [0] * MINORS_PER_BLOCK)

    def __post_init__(self) -> None:
        if self.major < 0:
            raise ValueError("major counter cannot be negative")
        if len(self.minors) != MINORS_PER_BLOCK:
            raise ValueError(
                f"expected {MINORS_PER_BLOCK} minors, got {len(self.minors)}"
            )
        for minor in self.minors:
            if not 0 <= minor <= MINOR_LIMIT:
                raise ValueError(f"minor counter {minor} out of 7-bit range")

    def counter_for(self, block_offset: int) -> Tuple[int, int]:
        """The (major, minor) pair encrypting block ``block_offset``."""
        return (self.major, self.minors[block_offset])

    def bump(self, block_offset: int) -> bool:
        """Advance the counter for a write to block ``block_offset``.

        Returns ``True`` when the minor overflowed — the caller must
        then re-encrypt every block in the page under the new major
        (the overflow path the split-counter design minimizes).
        """
        minor = self.minors[block_offset]
        if minor < MINOR_LIMIT:
            self.minors[block_offset] = minor + 1
            return False
        self.major += 1
        self.minors = [0] * MINORS_PER_BLOCK
        self.minors[block_offset] = 1
        return True

    # -- wire format --------------------------------------------------------

    def encode(self) -> bytes:
        """Pack into the 64-byte line stored in NVM."""
        packed = 0
        for minor in reversed(self.minors):
            packed = (packed << MINOR_BITS) | minor
        return self.major.to_bytes(MAJOR_BYTES, "little") + packed.to_bytes(
            ENCODED_BYTES - MAJOR_BYTES, "little"
        )

    @classmethod
    def decode(cls, raw: bytes) -> "CounterBlock":
        """Unpack a 64-byte line (zero-filled lines decode to zeros)."""
        if len(raw) != ENCODED_BYTES:
            raise ValueError(f"counter block must be {ENCODED_BYTES} bytes")
        major = int.from_bytes(raw[:MAJOR_BYTES], "little")
        packed = int.from_bytes(raw[MAJOR_BYTES:], "little")
        minors = []
        for _ in range(MINORS_PER_BLOCK):
            minors.append(packed & MINOR_LIMIT)
            packed >>= MINOR_BITS
        return cls(major=major, minors=minors)

    def copy(self) -> "CounterBlock":
        return CounterBlock(major=self.major, minors=list(self.minors))

    def is_zero(self) -> bool:
        """True for a freshly initialized (never written) page."""
        return self.major == 0 and not any(self.minors)
