"""Pluggable crypto engines.

The secure-memory hardware needs three primitives:

* ``mac(*parts) -> bytes`` — a keyed MAC (the paper's HMAC) binding a
  ciphertext block to its address and counter,
* ``hash8(data) -> bytes`` — the 8-byte keyed hash used for BMT node
  slots (eight of them concatenate into one 64 B node),
* ``pad(address, major, minor) -> bytes`` — the counter-mode one-time
  pad (the AES-CTR output in real hardware).

All outputs are deterministic functions of inputs and the engine key,
which is what the protocols rely on; the real engine uses ``blake2b``
(keyed) as a stand-in for AES/SHA hardware — cryptographically sound
for the purposes of this reproduction, and fast in CPython.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from typing import Iterable


class CryptoEngine(ABC):
    """Interface the MEE and BMT use for all cryptographic operations."""

    #: Bytes of a data-block MAC (the paper stores 8 B HMACs).
    mac_bytes: int = 8
    #: Bytes of a BMT node hash slot.
    slot_bytes: int = 8
    #: Bytes of a one-time pad / data block.
    block_bytes: int = 64

    @abstractmethod
    def mac(self, *parts: bytes) -> bytes:
        """Keyed MAC over the concatenation of ``parts``."""

    @abstractmethod
    def hash8(self, data: bytes) -> bytes:
        """8-byte keyed hash for BMT node slots."""

    @abstractmethod
    def pad(self, address: int, major: int, minor: int) -> bytes:
        """64-byte one-time pad for counter-mode encryption."""

    def encrypt(self, plaintext: bytes, address: int, major: int, minor: int) -> bytes:
        """Counter-mode encryption: XOR the block with its pad."""
        return _xor(plaintext, self.pad(address, major, minor))

    def decrypt(self, ciphertext: bytes, address: int, major: int, minor: int) -> bytes:
        """Counter-mode decryption (identical to encryption)."""
        return _xor(ciphertext, self.pad(address, major, minor))


def _xor(data: bytes, pad: bytes) -> bytes:
    if len(data) != len(pad):
        raise ValueError(f"length mismatch: data {len(data)} vs pad {len(pad)}")
    return bytes(a ^ b for a, b in zip(data, pad))


class RealCryptoEngine(CryptoEngine):
    """Functionally sound engine built on keyed blake2b."""

    def __init__(self, key: bytes = b"amnt-reproduction-key") -> None:
        if not key:
            raise ValueError("engine key must be non-empty")
        self._key = key[:64]  # blake2b key limit

    def mac(self, *parts: bytes) -> bytes:
        digest = hashlib.blake2b(key=self._key, digest_size=self.mac_bytes)
        for part in parts:
            digest.update(len(part).to_bytes(4, "little"))
            digest.update(part)
        return digest.digest()

    def hash8(self, data: bytes) -> bytes:
        return hashlib.blake2b(
            data, key=self._key, digest_size=self.slot_bytes
        ).digest()

    def pad(self, address: int, major: int, minor: int) -> bytes:
        seed = (
            address.to_bytes(8, "little")
            + major.to_bytes(8, "little")
            + minor.to_bytes(2, "little")
        )
        return hashlib.blake2b(
            seed, key=self._key, digest_size=self.block_bytes
        ).digest()


class FastCryptoEngine(CryptoEngine):
    """Structural-tag engine for timing simulations.

    Outputs are deterministic functions of the inputs (so equality
    comparisons still behave), but built with integer mixing instead of
    a cryptographic hash. Never use this engine to test security
    properties — a deliberate attacker could trivially forge its tags.
    """

    _MASK = 0xFFFFFFFFFFFFFFFF

    def _mix(self, parts: Iterable[bytes]) -> int:
        value = 0x9E3779B97F4A7C15
        for part in parts:
            for i in range(0, len(part), 8):
                chunk = int.from_bytes(part[i : i + 8], "little")
                value = ((value ^ chunk) * 0x100000001B3) & self._MASK
        value ^= value >> 31
        return value

    def mac(self, *parts: bytes) -> bytes:
        return self._mix(parts).to_bytes(self.mac_bytes, "little")

    def hash8(self, data: bytes) -> bytes:
        return self._mix((data,)).to_bytes(self.slot_bytes, "little")

    def pad(self, address: int, major: int, minor: int) -> bytes:
        seed = self._mix(
            (
                address.to_bytes(8, "little"),
                major.to_bytes(8, "little"),
                minor.to_bytes(2, "little"),
            )
        )
        # Expand the 8-byte seed to a 64-byte pad by counter mixing.
        out = bytearray()
        value = seed
        for _ in range(self.block_bytes // 8):
            value = (value * 6364136223846793005 + 1442695040888963407) & self._MASK
            out += value.to_bytes(8, "little")
        return bytes(out)
