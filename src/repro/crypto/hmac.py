"""Data-block HMAC computation.

The MAC binds the *ciphertext* to its physical address and encryption
counter. Binding the address defeats splicing (moving a valid block to
another address); binding the counter defeats replay of an old
(ciphertext, MAC) pair at the same address, because replayed data would
verify only against the old counter — and the counters themselves are
protected by the BMT.
"""

from __future__ import annotations

from repro.crypto.engine import CryptoEngine


def data_mac(
    engine: CryptoEngine,
    ciphertext: bytes,
    address: int,
    major: int,
    minor: int,
) -> bytes:
    """MAC of one data block as stored alongside it in memory."""
    return engine.mac(
        ciphertext,
        address.to_bytes(8, "little"),
        major.to_bytes(8, "little"),
        minor.to_bytes(2, "little"),
    )
