"""Counter-mode one-time pad helpers.

Thin convenience wrappers over the engine primitives, kept separate so
call sites read like the hardware datapath: make the pad, XOR it in.
"""

from __future__ import annotations

from repro.crypto.engine import CryptoEngine


def make_pad(engine: CryptoEngine, address: int, major: int, minor: int) -> bytes:
    """The one-time pad for a block at ``address`` under ``(major, minor)``."""
    return engine.pad(address, major, minor)


def apply_pad(data: bytes, pad: bytes) -> bytes:
    """XOR a block with its pad (encrypt and decrypt are the same op)."""
    if len(data) != len(pad):
        raise ValueError(f"length mismatch: data {len(data)} vs pad {len(pad)}")
    return bytes(a ^ b for a, b in zip(data, pad))
