"""Cryptographic substrate: counter-mode encryption, HMACs, engines.

The persistence protocols under study are agnostic to the concrete
cipher and MAC, so engines are pluggable: :class:`RealCryptoEngine`
performs functionally sound keyed hashing and counter-mode encryption
(used by integrity and tamper tests), while :class:`FastCryptoEngine`
returns cheap structural tags (used by timing sweeps, where Python-level
hashing must not dominate runtime).
"""

from repro.crypto.counters import CounterBlock
from repro.crypto.engine import CryptoEngine, FastCryptoEngine, RealCryptoEngine
from repro.crypto.hmac import data_mac
from repro.crypto.pad import apply_pad, make_pad

__all__ = [
    "CounterBlock",
    "CryptoEngine",
    "RealCryptoEngine",
    "FastCryptoEngine",
    "data_mac",
    "make_pad",
    "apply_pad",
]
