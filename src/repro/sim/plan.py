"""Metadata-plan compilation: resolve per-event metadata addresses once.

PR 5's boundary streams (:mod:`repro.sim.replay`) compile the
protocol-independent *data side* of a trace once and replay it into
every protocol. This module applies the same argument one layer down:
for a fixed trace + geometry, the metadata lines each boundary event
touches — the counter line, the HMAC line, and the BMT ancestor path —
are identical for every protocol and every metadata-cache size, yet the
direct MEE path re-derives them per event per replay (address decode,
key-memo probes, set-index hashing, ancestor walks).

:func:`compile_metadata_plan` walks a compiled
:class:`~repro.sim.replay.BoundaryStream` exactly once per (trace
recipe, geometry) and emits a :class:`MetadataPlan`: columnar
``array('q')`` plan data — per-event counter-line address, HMAC-line
address, BMT leaf slot, and path ids into a deduplicated node-id pool
(a flattened, ahead-of-time form of the cross-machine ancestor-path
memo) — plus the runtime records
:meth:`repro.core.mee.MemoryEncryptionEngine.replay_plan_events`
consumes: interned cache-key tuples with premixed set indices and the
shared ancestor ``(node, key, mix)`` triples.

Because every key tuple, path list, and mix value is resolved through
the same process-wide memos the direct path uses
(:mod:`repro.core.mee`'s key caches, :func:`repro.cache.cache.mix_of`),
the planned replay performs bit-identical cache transitions and hands
protocols path data with exactly the direct path's contents — verified
across the full protocol lineup and both integrity modes by
``tests/test_plan.py``.

What is *not* planned: fault campaigns keep the full direct path (their
crash oracles need live data-cache state and per-access probes, see
``repro.faults.campaign.run_fault_cell``), exactly as they bypass
boundary-stream replay.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Tuple

from repro.cache.cache import mix_of
from repro.config import SystemConfig
from repro.core.mee import (
    MACS_PER_LINE,
    shared_ancestor_path,
    shared_counter_key,
    shared_hmac_key,
    shared_node_key,
)
from repro.integrity.geometry import NodeId, TreeGeometry
from repro.mem.address import AddressSpace


class MetadataPlan:
    """The compiled metadata-access plan of one boundary stream.

    Columnar like the stream itself. Per-event columns (parallel to the
    stream's ``kind``/``addr`` columns, flush tail included):

    * ``record_id`` — index into the deduplicated record table below;
    * ``counter_line`` — counter-block index (the COUNTERS-region line
      address) the event's counter access touches;
    * ``hmac_line`` — HMAC-region line address covering the block;
    * ``leaf_slot`` — the counter's child slot in its BMT parent
      (``counter_line % arity``);
    * ``path_id`` — index into the flattened ancestor-path table.

    The ancestor-path table is ``path_offsets``/``path_nodes``: path
    ``p`` is ``path_nodes[path_offsets[p]:path_offsets[p+1]]``, each
    entry an index into ``node_pool`` (the deduplicated ``(level,
    index)`` node ids, deepest integrity level first — the order every
    walk in the engine uses).

    The per-record table (``rec_counter``/``rec_hmac``/``rec_path``,
    one row per distinct (counter line, HMAC line) pair) backs the
    runtime records: each row resolves once into the interned-key /
    premixed-set-index tuple the MEE's planned loop consumes per event
    (see :meth:`records`).
    """

    __slots__ = (
        "name",
        "record_id",
        "counter_line",
        "hmac_line",
        "leaf_slot",
        "path_id",
        "rec_counter",
        "rec_hmac",
        "rec_path",
        "path_offsets",
        "path_nodes",
        "node_pool",
        "_paths",
        "_records",
        "_event_records",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.record_id = array("q")
        self.counter_line = array("q")
        self.hmac_line = array("q")
        self.leaf_slot = array("q")
        self.path_id = array("q")
        self.rec_counter = array("q")
        self.rec_hmac = array("q")
        self.rec_path = array("q")
        self.path_offsets = array("q", [0])
        self.path_nodes = array("q")
        self.node_pool: List[NodeId] = []
        #: path id -> ancestor list. Filled by the compiler straight
        #: from the process-wide ancestor memo (one shared, read-only
        #: list per sibling group), so protocols observe ``path``
        #: arguments with exactly the direct path's contents.
        self._paths: List[List[NodeId]] = []
        self._records: Optional[list] = None
        self._event_records: Optional[list] = None

    def __len__(self) -> int:
        return len(self.record_id)

    def num_records(self) -> int:
        return len(self.rec_counter)

    def num_paths(self) -> int:
        return len(self.path_offsets) - 1

    def path_node_ids(self, path_id: int) -> array:
        """Node-pool indices of ancestor path ``path_id`` (deepest
        integrity level first, root last)."""
        return self.path_nodes[
            self.path_offsets[path_id] : self.path_offsets[path_id + 1]
        ]

    def records(self) -> list:
        """The resolved per-record runtime tuples (built once, cached).

        Each tuple is ``(ctr_key, ctr_mix, hmac_key, hmac_mix, triples,
        path, counter_index)``: the interned cache keys with their
        deterministic set mixes, the ancestor chain as ``(node, key,
        mix)`` triples, and the shared ancestor-path list — everything
        :meth:`~repro.core.mee.MemoryEncryptionEngine.replay_plan_events`
        needs without per-event derivation.
        """
        records = self._records
        if records is None:
            triple_pool = [
                (node, key, mix_of(key))
                for node, key in (
                    (node, shared_node_key(node)) for node in self.node_pool
                )
            ]
            offsets = self.path_offsets
            path_nodes = self.path_nodes
            triples_by_path = [
                tuple(
                    triple_pool[i]
                    for i in path_nodes[offsets[pid] : offsets[pid + 1]]
                )
                for pid in range(len(offsets) - 1)
            ]
            paths = self._paths
            if not paths:
                # Rebuilt plan without compiler-attached paths: fall
                # back to content-equal lists from the node pool.
                node_pool = self.node_pool
                paths = [
                    [node_pool[i] for i in self.path_node_ids(pid)]
                    for pid in range(self.num_paths())
                ]
            records = []
            for counter, hline, pid in zip(
                self.rec_counter, self.rec_hmac, self.rec_path
            ):
                ctr_key = shared_counter_key(counter)
                hkey = shared_hmac_key(hline)
                records.append(
                    (
                        ctr_key,
                        mix_of(ctr_key),
                        hkey,
                        mix_of(hkey),
                        triples_by_path[pid],
                        paths[pid],
                        counter,
                    )
                )
            self._records = records
        return records

    def event_records(self) -> list:
        """Per-event runtime records (``records()`` fanned out by
        ``record_id``), built once and cached — the column the planned
        replay loop zips against the stream's kind/addr columns."""
        events = self._event_records
        if events is None:
            records = self.records()
            events = [records[i] for i in self.record_id]
            self._event_records = events
        return events

    def warm(self) -> None:
        """Resolve the runtime records now, not on first replay — keeps
        the cost inside the measured compile phase, and inside the pool
        parent's precompile so fork workers inherit them."""
        self.event_records()

    def __repr__(self) -> str:
        return (
            f"MetadataPlan(name={self.name!r}, events={len(self.record_id)}, "
            f"records={len(self.rec_counter)}, paths={self.num_paths()})"
        )


def compile_metadata_plan(stream, config: SystemConfig) -> MetadataPlan:
    """Resolve every metadata address ``stream``'s events will touch.

    One pass over the stream's ``addr`` column, flush tail included (a
    replay slices plan columns exactly as it slices stream columns).
    Pure address/tree arithmetic — identical to what the direct MEE
    path derives per event — so the plan depends only on the stream and
    the metadata geometry (block/page split, capacity, tree arity),
    never on the metadata-cache shape or the protocol: one plan serves
    every protocol replay of the stream, and a metadata-cache-only
    config change shares it (the plan-cache key in
    :mod:`repro.workloads.registry` encodes exactly that contract).
    """
    geometry = TreeGeometry.from_config(config)
    address_space = AddressSpace(
        config.pcm.capacity_bytes,
        block_bytes=config.security.block_bytes,
        page_bytes=config.security.page_bytes,
    )
    block_shift = address_space._block_shift
    page_shift = address_space._page_shift
    arity = geometry.arity

    plan = MetadataPlan(stream.name)
    record_id = plan.record_id
    counter_col = plan.counter_line
    hmac_col = plan.hmac_line
    slot_col = plan.leaf_slot
    path_col = plan.path_id
    rec_counter = plan.rec_counter
    rec_hmac = plan.rec_hmac
    rec_path = plan.rec_path
    path_offsets = plan.path_offsets
    path_nodes = plan.path_nodes
    node_pool = plan.node_pool
    paths = plan._paths

    #: (counter, hmac line) -> record id. Keyed by the pair: with small
    #: pages one HMAC line can span several counter blocks, so neither
    #: column alone identifies a record.
    rec_ids: Dict[Tuple[int, int], int] = {}
    #: deepest ancestor -> path id (sibling counters share one path:
    #: the chain is a pure function of its deepest node).
    path_ids: Dict[NodeId, int] = {}
    node_ids: Dict[NodeId, int] = {}
    #: counter -> (record id, path id) of the last block seen under it
    #: — consecutive events overwhelmingly repeat (counter, hmac) pairs,
    #: so the common case is one narrow probe.
    by_counter: Dict[int, Tuple[int, int]] = {}

    for addr in stream.addr:
        block = addr >> block_shift
        counter = addr >> page_shift
        hline = block // MACS_PER_LINE
        cached = by_counter.get(counter)
        if cached is not None and rec_hmac[cached[0]] == hline:
            rid, pid = cached
        else:
            pair = (counter, hline)
            rid = rec_ids.get(pair)
            if rid is None:
                path = shared_ancestor_path(geometry, counter)
                head = path[0]
                pid = path_ids.get(head)
                if pid is None:
                    pid = len(path_offsets) - 1
                    path_ids[head] = pid
                    paths.append(path)
                    for node in path:
                        nid = node_ids.get(node)
                        if nid is None:
                            nid = len(node_pool)
                            node_ids[node] = nid
                            node_pool.append(node)
                        path_nodes.append(nid)
                    path_offsets.append(len(path_nodes))
                rid = len(rec_counter)
                rec_ids[pair] = rid
                rec_counter.append(counter)
                rec_hmac.append(hline)
                rec_path.append(pid)
            else:
                pid = rec_path[rid]
            by_counter[counter] = (rid, pid)
        record_id.append(rid)
        counter_col.append(counter)
        hmac_col.append(hline)
        slot_col.append(counter % arity)
        path_col.append(pid)

    plan.warm()
    return plan
