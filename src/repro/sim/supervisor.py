"""Resilient sweep orchestration: journal, checkpoint/resume, supervision.

The simulated memory systems survive power loss by design; this module
gives the *harness* the same discipline. A 1000-cell campaign on a
flaky shared machine faces three distinct failure classes, and each one
gets its own mechanism:

* **The orchestrator dies** (OOM kill, ctrl-C, reboot). Every
  completed cell is recorded in a :class:`RunJournal` — a JSONL file
  rewritten atomically (write-temp-fsync-rename) at each checkpoint —
  keyed by a run manifest (config digest, grid digest, library
  version). ``--resume`` loads the journal, verifies the manifest, and
  re-runs only the missing cells; because cells are pure functions of
  their spec, the finished artifact is bit-identical to an
  uninterrupted run.
* **A worker dies or wedges** (pool worker killed, simulator bug,
  runaway cell). :class:`SupervisedRunner` enforces a per-cell
  wall-clock budget, retries failed cells with exponential backoff and
  jitter, and after ``max_attempts`` quarantines the cell — the run
  completes and reports the poison cell with its traceback instead of
  aborting the surviving grid.
* **The pool itself dies** (fork refused, repeated worker loss). Each
  retry round gets a fresh pool; after ``max_pool_respawns`` broken
  pools the remaining cells degrade to serial in-process execution.

SIGINT/SIGTERM trigger a final atomic journal flush before the
interrupt propagates, so a killed run is always resumable from its
last checkpoint.
"""

from __future__ import annotations

import json
import multiprocessing
import random
import signal
import threading
import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro import telemetry
from repro.errors import (
    CellTimeoutError,
    OrchestrationError,
    ResumeManifestMismatch,
)
from repro.sim.parallel import default_workers
from repro.util.atomicio import atomic_write_text, jsonable
from repro.util.fingerprint import config_digest, grid_digest

#: Journal file name inside a run directory.
JOURNAL_NAME = "journal.jsonl"

Encode = Callable[[Any], Any]
Decode = Callable[[Any], Any]


# ----------------------------------------------------------------------
# policy and failure records
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SupervisionPolicy:
    """Retry, timeout, and checkpoint knobs for a supervised run."""

    #: Total tries per cell before quarantine (1 = no retries).
    max_attempts: int = 3
    #: Per-cell wall-clock budget in pool mode. ``None`` disables the
    #: watchdog — but then a lost worker task blocks the run forever,
    #: so supervised CLI runs always set one.
    cell_timeout_seconds: Optional[float] = None
    #: Exponential backoff between attempts: base * factor**(n-1),
    #: capped, plus up to ``jitter_fraction`` of random extra.
    backoff_base_seconds: float = 0.25
    backoff_factor: float = 2.0
    backoff_max_seconds: float = 10.0
    jitter_fraction: float = 0.25
    #: Broken pools tolerated before degrading to serial execution.
    max_pool_respawns: int = 2
    #: Completed/failed cells between atomic journal flushes.
    checkpoint_every: int = 1
    #: Test hook: raise KeyboardInterrupt after this many journal
    #: flushes, simulating an operator kill at a known checkpoint.
    die_after_flushes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise OrchestrationError("max_attempts must be at least 1")
        if self.checkpoint_every < 1:
            raise OrchestrationError("checkpoint_every must be at least 1")

    def backoff_seconds(
        self, attempt: int, rng: Optional[random.Random] = None
    ) -> float:
        """Delay before retry number ``attempt`` (1-based)."""
        base = self.backoff_base_seconds * (
            self.backoff_factor ** max(0, attempt - 1)
        )
        delay = min(base, self.backoff_max_seconds)
        jitter = (rng or random).random() * self.jitter_fraction * delay
        return delay + jitter


@dataclass(frozen=True, slots=True)
class CellFailure:
    """A quarantined cell: what failed, how often, and the traceback."""

    key: str
    attempts: int
    error_type: str
    message: str
    traceback: str

    def describe(self) -> str:
        return (
            f"{self.key}: {self.error_type} after "
            f"{self.attempts} attempt(s) — {self.message}"
        )


def split_outcomes(outcomes: Sequence[Any]) -> Tuple[List[Any], List[CellFailure]]:
    """Partition supervised-map outcomes into (results, failures)."""
    results = [o for o in outcomes if not isinstance(o, CellFailure)]
    failures = [o for o in outcomes if isinstance(o, CellFailure)]
    return results, failures


# ----------------------------------------------------------------------
# manifest
# ----------------------------------------------------------------------

#: Manifest fields a resume must match exactly.
MANIFEST_CHECKED_FIELDS = (
    "experiment",
    "library_version",
    "config_digest",
    "grid_digest",
    "cells",
    "parameters",
)


def build_manifest(
    experiment: str,
    config: Any,
    keys: Sequence[str],
    parameters: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Identity of a run: what grid, under what config, which code.

    ``config_digest`` hashes the config's repr (dataclass reprs are
    deterministic and cover every field); ``grid_digest`` hashes the
    ordered cell keys. Two runs with equal manifests plan identical
    cells, which is what makes journal entries transplantable. Both
    digests come from :mod:`repro.util.fingerprint` — the same
    implementation the result store builds its object addresses on —
    and keep the exact legacy byte formulas, so journals written by
    earlier versions still resume.
    """
    return {
        "experiment": experiment,
        "library_version": _library_version(),
        "config_digest": config_digest(config),
        "grid_digest": grid_digest(keys),
        "cells": len(keys),
        "parameters": jsonable(parameters or {}),
    }


def _library_version() -> str:
    from repro import __version__

    return __version__


def check_manifest(stored: Dict[str, Any], current: Dict[str, Any]) -> None:
    """Refuse to resume against a journal from a different run."""
    mismatches = {
        field: (stored.get(field), current.get(field))
        for field in MANIFEST_CHECKED_FIELDS
        if stored.get(field) != current.get(field)
    }
    if mismatches:
        raise ResumeManifestMismatch(mismatches)


# ----------------------------------------------------------------------
# journal
# ----------------------------------------------------------------------


class RunJournal:
    """Crash-safe record of completed and quarantined cells.

    On disk the journal is one JSONL file: the first line wraps the
    manifest, each following line is one cell record. A *flush*
    rewrites the whole file through write-temp-fsync-rename, so the
    on-disk journal is always a complete, loadable snapshot of some
    checkpoint — never a torn prefix. (Records are small; rewriting
    a few thousand lines per checkpoint is microseconds, and the
    atomicity is what makes kill-anywhere resumability true.)
    """

    def __init__(self, directory: Union[str, Path], manifest: Dict[str, Any]):
        self.directory = Path(directory)
        self.manifest = manifest
        self.entries: Dict[str, Dict[str, Any]] = {}
        self._dirty = True

    @property
    def path(self) -> Path:
        return self.directory / JOURNAL_NAME

    # -- lifecycle ----------------------------------------------------

    @classmethod
    def open(
        cls,
        directory: Union[str, Path],
        manifest: Dict[str, Any],
        resume: bool = False,
    ) -> "RunJournal":
        """Create a fresh journal, or load and verify one for resume."""
        directory = Path(directory)
        if resume:
            journal = cls.load(directory)
            check_manifest(journal.manifest, manifest)
            return journal
        directory.mkdir(parents=True, exist_ok=True)
        journal = cls(directory, manifest)
        journal.flush()
        return journal

    @classmethod
    def load(cls, directory: Union[str, Path]) -> "RunJournal":
        """Load a journal written by a previous (possibly killed) run."""
        directory = Path(directory)
        path = directory / JOURNAL_NAME
        if not path.exists():
            raise FileNotFoundError(
                f"no journal at {path} — was this run started with a run dir?"
            )
        lines = path.read_text(encoding="utf-8").splitlines()
        if not lines:
            raise OrchestrationError(f"journal {path} is empty")
        try:
            head = json.loads(lines[0])
            manifest = head["manifest"]
        except (ValueError, KeyError, TypeError) as exc:
            raise OrchestrationError(
                f"journal {path} has no manifest header: {exc}"
            ) from None
        journal = cls(directory, manifest)
        for line in lines[1:]:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                # Defensive: flushes are atomic so torn lines should
                # never exist, but a truncated copy must still load.
                continue
            key = record.get("key")
            if isinstance(key, str):
                journal.entries[key] = record
        journal._dirty = False
        return journal

    # -- recording ----------------------------------------------------

    def entry(self, key: str) -> Optional[Dict[str, Any]]:
        return self.entries.get(key)

    def record_done(self, key: str, payload: Any, attempts: int) -> None:
        self.entries[key] = {
            "key": key,
            "status": "done",
            "attempts": attempts,
            "payload": payload,
        }
        self._dirty = True
        # Mirror every journal mutation into the event sink so the
        # event log is a faithful superset of the on-disk journal.
        telemetry.emit_event(
            "journal_record", key=key, status="done", attempts=attempts
        )

    def record_failed(self, failure: CellFailure) -> None:
        self.entries[failure.key] = {
            "key": failure.key,
            "status": "failed",
            "attempts": failure.attempts,
            "error_type": failure.error_type,
            "message": failure.message,
            "traceback": failure.traceback,
        }
        self._dirty = True
        telemetry.emit_event(
            "journal_record",
            key=failure.key,
            status="failed",
            attempts=failure.attempts,
            error_type=failure.error_type,
        )

    def failure_for(self, key: str) -> Optional[CellFailure]:
        record = self.entries.get(key)
        if record is None or record.get("status") != "failed":
            return None
        return CellFailure(
            key=key,
            attempts=int(record.get("attempts", 1)),
            error_type=str(record.get("error_type", "Exception")),
            message=str(record.get("message", "")),
            traceback=str(record.get("traceback", "")),
        )

    def counts(self) -> Dict[str, int]:
        done = sum(1 for r in self.entries.values() if r["status"] == "done")
        return {"done": done, "failed": len(self.entries) - done}

    # -- persistence --------------------------------------------------

    def flush(self) -> None:
        """Atomically persist the current snapshot (no-op when clean)."""
        if not self._dirty:
            return
        lines = [json.dumps({"manifest": self.manifest}, sort_keys=True)]
        lines.extend(
            json.dumps(record, sort_keys=True)
            for record in self.entries.values()
        )
        atomic_write_text(self.path, "\n".join(lines) + "\n")
        self._dirty = False


# ----------------------------------------------------------------------
# supervised execution
# ----------------------------------------------------------------------


class _Interrupted(BaseException):
    """Internal: SIGTERM or the die-after-flushes hook fired."""


def _worker_signal_reset() -> None:
    """Pool-worker initializer: undo the parent's signal routing.

    Forked workers inherit the supervisor's SIGTERM handler, which
    would raise :class:`_Interrupted` (and print a traceback) when the
    parent terminates the pool; ctrl-C likewise belongs to the parent,
    which re-dispatches or journals the interrupted cells.
    """
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)


@dataclass(slots=True)
class _Cell:
    index: int
    key: str
    payload: Any


class SupervisedRunner:
    """Fan cells over a pool with retries, timeouts, and a journal.

    Drop-in upgrade of :class:`~repro.sim.parallel.ParallelSweepRunner`
    for long runs: same in-order results, same purity assumptions, but
    each outcome slot holds either the cell's result or a
    :class:`CellFailure`, and (with a journal) every completed cell is
    checkpointed so the run is resumable after any kill.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        policy: Optional[SupervisionPolicy] = None,
        journal: Optional[RunJournal] = None,
        start_method: Optional[str] = None,
    ) -> None:
        self.workers = default_workers() if workers is None else max(1, workers)
        self.policy = policy if policy is not None else SupervisionPolicy()
        self.journal = journal
        self.start_method = start_method
        self._records_since_flush = 0
        self._flushes = 0

    # -- public entry -------------------------------------------------

    def map(
        self,
        func: Callable[[Any], Any],
        payloads: Sequence[Any],
        keys: Sequence[str],
        encode: Optional[Encode] = None,
        decode: Optional[Decode] = None,
    ) -> List[Any]:
        """Run every payload; return results/failures in payload order.

        ``keys`` are the stable journal identities (unique, and for
        resume: derived deterministically from the grid). ``encode``
        maps a result to a JSON-able payload, ``decode`` inverts it;
        with a journal attached, even fresh results are passed through
        ``decode(encode(...))`` so a resumed run and an uninterrupted
        run return indistinguishable objects.
        """
        payloads = list(payloads)
        keys = [str(key) for key in keys]
        if len(payloads) != len(keys):
            raise OrchestrationError(
                f"{len(payloads)} payloads but {len(keys)} keys"
            )
        if len(set(keys)) != len(keys):
            raise OrchestrationError("cell keys must be unique")
        encode = encode if encode is not None else (lambda value: value)
        decode = decode if decode is not None else (lambda payload: payload)

        slots: List[Any] = [None] * len(payloads)
        pending: List[_Cell] = []
        for index, (key, payload) in enumerate(zip(keys, payloads)):
            entry = self.journal.entry(key) if self.journal else None
            if entry is not None and entry.get("status") == "done":
                slots[index] = decode(entry["payload"])
                telemetry.emit_event(
                    "journal_restored", key=key, status="done"
                )
            elif entry is not None and entry.get("status") == "failed":
                slots[index] = self.journal.failure_for(key)
                telemetry.emit_event(
                    "journal_restored", key=key, status="failed"
                )
            else:
                pending.append(_Cell(index, key, payload))
        if not pending:
            return slots

        restore = self._install_sigterm_handler()
        try:
            self._execute(func, pending, slots, encode, decode)
        except (KeyboardInterrupt, _Interrupted):
            # Operator (or watchdog) kill: persist what finished so the
            # run is resumable, then surface the standard interrupt.
            self._final_flush()
            raise KeyboardInterrupt() from None
        finally:
            restore()
            self._final_flush()
        return slots

    # -- internals ----------------------------------------------------

    def _execute(self, func, pending, slots, encode, decode) -> None:
        attempts: Dict[str, int] = {cell.key: 0 for cell in pending}
        queue = list(pending)
        respawns = 0
        use_pool = self.workers > 1 and len(queue) > 1
        while queue:
            if not use_pool or respawns > self.policy.max_pool_respawns:
                self._run_serial(func, queue, slots, attempts, encode, decode)
                return
            retried = [attempts[c.key] for c in queue if attempts[c.key] > 0]
            if retried:
                time.sleep(self.policy.backoff_seconds(max(retried)))
            try:
                context = self._context()
                pool = context.Pool(
                    processes=min(self.workers, len(queue)),
                    initializer=_worker_signal_reset,
                )
            except Exception:
                # Pool creation itself failed (sandboxed fork, spawn
                # restrictions): everything left runs in-process.
                use_pool = False
                continue
            queue, broken = self._run_pool_round(
                pool, func, queue, slots, attempts, encode, decode
            )
            if broken:
                respawns += 1
                telemetry.counter("supervisor.pool_respawns").inc()
                telemetry.emit_event(
                    "pool_respawn", respawns=respawns, remaining=len(queue)
                )

    def _run_pool_round(
        self, pool, func, queue, slots, attempts, encode, decode
    ):
        """One pool generation: dispatch everything, harvest in order.

        Returns ``(requeue, broken)``. A per-cell timeout fires when the
        cell is genuinely slow *or* its worker died and the task was
        lost (`multiprocessing.Pool` respawns workers but drops their
        in-flight task); both look identical from the parent, and both
        are handled by terminating this pool — the only way to reclaim
        a stuck worker — after harvesting every already-finished cell.
        """
        requeue: List[_Cell] = []
        broken = False
        with pool:
            async_results = [
                pool.apply_async(func, (cell.payload,)) for cell in queue
            ]
            for position, (cell, handle) in enumerate(
                zip(queue, async_results)
            ):
                try:
                    value = handle.get(self.policy.cell_timeout_seconds)
                except multiprocessing.TimeoutError:
                    broken = True
                    self._charge(
                        cell,
                        attempts,
                        CellTimeoutError(
                            cell.key, self.policy.cell_timeout_seconds or 0.0
                        ),
                        "",
                        requeue,
                        slots,
                    )
                    for later_cell, later_handle in zip(
                        queue[position + 1 :], async_results[position + 1 :]
                    ):
                        if later_handle.ready():
                            try:
                                later_value = later_handle.get(0)
                            except Exception as exc:
                                self._charge(
                                    later_cell,
                                    attempts,
                                    exc,
                                    traceback.format_exc(),
                                    requeue,
                                    slots,
                                )
                            else:
                                self._complete(
                                    later_cell, later_value, slots,
                                    attempts, encode, decode,
                                )
                        else:
                            # In flight when the pool died — not the
                            # cell's fault, re-dispatch without charge.
                            requeue.append(later_cell)
                            telemetry.counter("supervisor.requeued").inc()
                            telemetry.emit_event(
                                "cell_requeued", key=later_cell.key
                            )
                    pool.terminate()
                    break
                except Exception as exc:
                    self._charge(
                        cell, attempts, exc, traceback.format_exc(),
                        requeue, slots,
                    )
                else:
                    self._complete(
                        cell, value, slots, attempts, encode, decode
                    )
        return requeue, broken

    def _run_serial(self, func, queue, slots, attempts, encode, decode):
        """Degraded mode: in-process, retries inline, no wall-clock
        watchdog (a same-process cell cannot be preempted safely)."""
        for cell in queue:
            while True:
                try:
                    value = func(cell.payload)
                except _Interrupted:
                    raise
                except Exception as exc:
                    quarantined = self._charge(
                        cell, attempts, exc, traceback.format_exc(), [], slots
                    )
                    if quarantined:
                        break
                    time.sleep(self.policy.backoff_seconds(attempts[cell.key]))
                else:
                    self._complete(
                        cell, value, slots, attempts, encode, decode
                    )
                    break

    def _charge(self, cell, attempts, exc, tb_text, requeue, slots) -> bool:
        """Count a failed attempt; quarantine or requeue. True when
        the cell is now quarantined."""
        attempts[cell.key] += 1
        if isinstance(exc, CellTimeoutError):
            telemetry.counter("supervisor.timeouts").inc()
            telemetry.emit_event(
                "cell_timeout", key=cell.key, attempt=attempts[cell.key]
            )
        if attempts[cell.key] >= self.policy.max_attempts:
            failure = CellFailure(
                key=cell.key,
                attempts=attempts[cell.key],
                error_type=type(exc).__name__,
                message=str(exc),
                traceback=tb_text,
            )
            slots[cell.index] = failure
            telemetry.counter("supervisor.quarantined").inc()
            telemetry.emit_event(
                "cell_quarantined",
                key=cell.key,
                attempts=attempts[cell.key],
                error_type=type(exc).__name__,
            )
            if self.journal:
                self.journal.record_failed(failure)
            self._checkpoint()
            return True
        requeue.append(cell)
        telemetry.counter("supervisor.retries").inc()
        telemetry.emit_event(
            "cell_retry",
            key=cell.key,
            attempt=attempts[cell.key],
            error_type=type(exc).__name__,
        )
        return False

    def _complete(self, cell, value, slots, attempts, encode, decode):
        payload = encode(value)
        telemetry.counter("supervisor.cells_done").inc()
        telemetry.emit_event(
            "cell_done",
            key=cell.key,
            attempts=max(1, attempts.get(cell.key, 0) + 1),
        )
        if self.journal:
            self.journal.record_done(
                cell.key, payload, max(1, attempts.get(cell.key, 0) + 1)
            )
            # Normalize through the codec so fresh and resumed runs
            # return indistinguishable (bit-identical) objects.
            slots[cell.index] = decode(payload)
        else:
            slots[cell.index] = value
        self._checkpoint()

    def _checkpoint(self) -> None:
        if self.journal is None:
            return
        self._records_since_flush += 1
        if self._records_since_flush >= self.policy.checkpoint_every:
            self.journal.flush()
            self._records_since_flush = 0
            self._flushes += 1
            telemetry.emit_event(
                "checkpoint_flush",
                flushes=self._flushes,
                entries=len(self.journal.entries),
            )
            # Keep the event log at least as current as the journal —
            # the die-after-flushes hook fires right after this point.
            telemetry.get_sink().flush()
            die_after = self.policy.die_after_flushes
            if die_after is not None and self._flushes >= die_after:
                raise _Interrupted(
                    f"die_after_flushes={die_after} test hook fired"
                )

    def _final_flush(self) -> None:
        if self.journal is not None:
            self.journal.flush()
            self._records_since_flush = 0
        telemetry.get_sink().flush()

    def _context(self):
        methods = multiprocessing.get_all_start_methods()
        if self.start_method is not None:
            return multiprocessing.get_context(self.start_method)
        if "fork" in methods:
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    def _install_sigterm_handler(self) -> Callable[[], None]:
        """Route SIGTERM into the interrupt path (main thread only)."""
        if threading.current_thread() is not threading.main_thread():
            return lambda: None

        def handler(signum, frame):
            raise _Interrupted(f"signal {signum}")

        try:
            previous = signal.signal(signal.SIGTERM, handler)
        except (ValueError, OSError):  # non-main interpreter contexts
            return lambda: None
        return lambda: signal.signal(signal.SIGTERM, previous)
