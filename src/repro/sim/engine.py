"""The trace-driven simulation loop.

For each reference in the trace: translate (demand paging), probe the
LLC, and send the resulting *memory traffic* — fills and dirty
writebacks — through the memory encryption engine, accumulating cycles.
Secure-memory work therefore only happens where it happens in hardware:
at the memory boundary.

Periodic page churn emulates unrelated system activity so the OS
reclamation path (where AMNT++ restructures free lists) actually runs
during measurement, as it would on a live machine.

Cycle accounting is deliberately simple and serial — think cycles plus
LLC latency plus every NVM access at full latency. Absolute cycle
counts are therefore pessimistic for all protocols equally; every
reported figure is normalized to the volatile baseline run on the same
trace, exactly as the paper normalizes to the volatile secure-memory
scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import PowerFailure, SimulationError
from repro.sim.machine import Machine
from repro.sim.results import SimulationResult
from repro.telemetry import record_simulation
from repro.util.rng import Seed, make_rng
from repro.workloads.trace import ColumnarAccesses, Trace


def _trace_columns(trace: Trace):
    """The trace's raw (vaddr, pid, think, flags) columns.

    Falls back to building columns on the fly for a trace whose
    ``accesses`` was replaced with a plain record list.
    """
    accesses = trace.accesses
    if not isinstance(accesses, ColumnarAccesses):
        accesses = ColumnarAccesses(accesses)
    return accesses.columns()

#: Modeled kernel instructions per demand-paging fault (trap, allocator
#: call, page-table update). Only Table 2's instruction ratios consume
#: this; it is deliberately round.
INSTRUCTIONS_PER_PAGE_FAULT = 500


def simulate(
    machine: Machine,
    trace: Trace,
    seed: Seed = 0,
    churn_interval: int = 16384,
    churn_bursts: int = 2,
    churn_pages_per_burst: int = 32,
    flush_llc_at_end: bool = False,
) -> SimulationResult:
    """Run ``trace`` to completion on ``machine``; returns the result."""
    rng = make_rng(f"{seed}/engine/{trace.name}")
    mee = machine.mee
    llc = machine.llc
    mm = machine.mm
    block_bytes = machine.config.security.block_bytes
    llc_latency = machine.config.llc.access_latency_cycles

    # The loop below runs once per trace record — hoist every bound
    # method and attribute it touches so the interpreter does the
    # lookups once instead of hundreds of thousands of times.
    translate = mm.translate
    llc_access = llc.access
    llc_flush_block = llc.flush_block
    read_block = mee.read_block
    write_block = mee.write_block
    churn = mm.churn

    # The loop iterates the trace's raw columns: four machine integers
    # per record via zip, no per-record object or attribute lookups.
    # Flags pack is_write in bit 0 and flush in bit 1.
    vaddrs, pids, thinks, flag_col = _trace_columns(trace)

    cycles = 0
    app_instructions = 0
    position = 0
    for vaddr, pid, think, flags in zip(vaddrs, pids, thinks, flag_col):
        position += 1
        is_write = flags & 1
        paddr = translate(pid, vaddr)
        traffic = llc_access(paddr, is_write)
        cycles += think + llc_latency
        app_instructions += think + 1
        if traffic.fill_block is not None:
            cycles += read_block(traffic.fill_block * block_bytes)
        for victim_block in traffic.writeback_blocks:
            cycles += write_block(victim_block * block_bytes)
        if is_write and flags & 2:
            # CLWB + fence: the store is pushed to memory now, and the
            # core waits for the (protocol-dependent) persist to finish
            # — the path in-memory storage applications live on.
            flushed_block = llc_flush_block(paddr)
            if flushed_block is not None:
                cycles += write_block(
                    flushed_block * block_bytes, fenced=True
                )
        if churn_interval and position % churn_interval == 0:
            churn(
                rng, bursts=churn_bursts, pages_per_burst=churn_pages_per_burst
            )
    if flush_llc_at_end:
        for victim_block in llc.flush():
            cycles += mee.write_block(victim_block * block_bytes)

    os_instructions = (
        mm.allocator.instructions()
        + mm.stats.get("page_faults") * INSTRUCTIONS_PER_PAGE_FAULT
    )
    result = SimulationResult(
        workload=trace.name,
        protocol=mee.protocol.display_name,
        cycles=cycles,
        accesses=len(trace),
        llc_hit_rate=llc.hit_rate(),
        mdcache_hit_rate=mee.mdcache.hit_rate(),
        instructions=app_instructions + os_instructions,
        os_instructions=os_instructions,
        page_faults=mm.stats.get("page_faults"),
        nvm_stats=mee.nvm.stats.snapshot(),
        protocol_stats=mee.protocol.stats.snapshot(),
        mee_stats=mee.stats.snapshot(),
    )
    record_simulation(
        result, mee, llc.stats.get("hits"), llc.stats.get("misses")
    )
    return result


# ----------------------------------------------------------------------
# compiled-stream replay (the sweep fast path)
# ----------------------------------------------------------------------


def simulate_from_stream(
    stream, machine: Machine, flush_llc_at_end: bool = False
) -> SimulationResult:
    """Drive ``machine``'s MEE/protocol layer from a compiled
    :class:`~repro.sim.replay.BoundaryStream`; returns the result.

    Bit-identical to :func:`simulate` run on the trace the stream was
    compiled from, provided the stream's data-side parameters (config
    geometry, seed, churn, OS variant) match the machine's — the
    stream-cache key in :mod:`repro.workloads.registry` encodes exactly
    that contract. The machine's own LLC and memory manager are left
    untouched; every data-side quantity the result needs was captured
    at compile time and is spliced in here.
    """
    mee = machine.mee
    llc_latency = machine.config.llc.access_latency_cycles
    read_block = mee.read_block
    write_block = mee.write_block

    kinds = stream.kind
    addrs = stream.addr
    if not flush_llc_at_end:
        limit = stream.main_events
        kinds = kinds[:limit]
        addrs = addrs[:limit]

    cycles = stream.think_total + stream.accesses * llc_latency
    for kind, addr in zip(kinds, addrs):
        if kind == 0:  # EVENT_FILL
            cycles += read_block(addr)
        elif kind == 1:  # EVENT_WRITEBACK
            cycles += write_block(addr)
        else:  # EVENT_PERSIST
            cycles += write_block(addr, fenced=True)

    return _assemble_stream_result(stream, machine, cycles)


def _assemble_stream_result(
    stream, machine: Machine, cycles: int
) -> SimulationResult:
    """Splice a replay's cycle total with the stream's captured
    data-side fields into a result indistinguishable from a direct
    run's (shared by the stream and plan drivers)."""
    mee = machine.mee
    os_instructions = stream.os_instructions
    result = SimulationResult(
        workload=stream.name,
        protocol=mee.protocol.display_name,
        cycles=cycles,
        accesses=stream.accesses,
        llc_hit_rate=stream.llc_hit_rate(),
        mdcache_hit_rate=mee.mdcache.hit_rate(),
        instructions=stream.app_instructions + os_instructions,
        os_instructions=os_instructions,
        page_faults=stream.page_faults,
        nvm_stats=mee.nvm.stats.snapshot(),
        protocol_stats=mee.protocol.stats.snapshot(),
        mee_stats=mee.stats.snapshot(),
    )
    record_simulation(result, mee, stream.llc_hits, stream.llc_misses)
    return result


def simulate_from_plan(
    stream, plan, machine: Machine, flush_llc_at_end: bool = False
) -> SimulationResult:
    """Drive ``machine``'s MEE/protocol layer from a compiled
    :class:`~repro.sim.replay.BoundaryStream` *and* its
    :class:`~repro.sim.plan.MetadataPlan`; returns the result.

    The planned form of :func:`simulate_from_stream`: same events, same
    order, but every per-event metadata address, cache key, set index,
    and ancestor path arrives pre-resolved, so the hot loop (moved into
    :meth:`~repro.core.mee.MemoryEncryptionEngine.replay_plan_events`)
    does no address math, no key-memo probes, and no path walks.
    Bit-identical to both the direct and the stream-replay paths —
    ``plan`` must have been compiled from this ``stream`` under the
    machine's metadata geometry (the plan-cache key in
    :mod:`repro.workloads.registry` encodes that contract).
    """
    mee = machine.mee
    llc_latency = machine.config.llc.access_latency_cycles

    kinds = stream.kind
    addrs = stream.addr
    event_records = plan.event_records()
    if not flush_llc_at_end:
        limit = stream.main_events
        kinds = kinds[:limit]
        addrs = addrs[:limit]
        event_records = event_records[:limit]

    cycles = stream.think_total + stream.accesses * llc_latency
    cycles += mee.replay_plan_events(kinds, addrs, event_records)
    return _assemble_stream_result(stream, machine, cycles)


# ----------------------------------------------------------------------
# memory-boundary replay (the fault-injection campaign's driver)
# ----------------------------------------------------------------------


def replay_payload(position: int, block_bytes: int = 64) -> bytes:
    """Deterministic plaintext for the write at trace ``position``.

    A pure function of the position so the golden shadow copy and any
    re-derivation of it (e.g. in the oracle's in-flight check) agree
    without shipping payloads around.
    """
    return position.to_bytes(8, "little") * (block_bytes // 8)


@dataclass
class ReplayRecord:
    """What one memory-boundary replay observed."""

    accesses_completed: int = 0
    crashed: bool = False
    crash_phase: str = ""
    crash_occurrence: int = 0
    crash_access_index: int = -1
    crash_write_committed: bool = False
    #: The crash fired inside an open persist group (persist-window
    #: triggers): the in-flight write's fences were partially issued,
    #: so a loud "detected" recovery is acceptable even for
    #: crash-consistent protocols.
    crash_in_group: bool = False
    #: Golden shadow copy: physical block base -> last durable payload.
    golden: Dict[int, bytes] = field(default_factory=dict)
    #: The write in flight at the crash, if its persist group had not
    #: drained: (block base, previous payload or None, attempted payload).
    in_flight: Optional[Tuple[int, Optional[bytes], bytes]] = None


def drive_memory_boundary(
    machine: Machine,
    trace: Trace,
    seed: Seed = 0,
    scheduler=None,
    churn_interval: int = 1024,
    churn_bursts: int = 2,
    churn_pages_per_burst: int = 32,
    verify_reads: bool = True,
) -> ReplayRecord:
    """Replay ``trace`` straight at the memory boundary (no LLC).

    Every reference goes to the MEE as if it had missed the data cache.
    That is deliberate: the fault campaign wants maximal persistence-
    protocol activity per access, and — unlike LLC victim writebacks —
    writes driven here carry payloads, so the golden shadow copy is
    exact. Reads are checked against the shadow as they happen (any
    pre-crash divergence is an engine bug, not a finding).

    ``scheduler`` is a crash scheduler (repro.faults.triggers); its
    :class:`~repro.errors.PowerFailure` is caught here and summarized
    in the returned :class:`ReplayRecord`. With ``scheduler=None`` (or
    an unarmed one) the replay runs to completion.
    """
    mee = machine.mee
    mm = machine.mm
    functional = mee.functional
    block_bytes = machine.config.security.block_bytes
    zero_block = bytes(block_bytes)
    rng = make_rng(f"{seed}/faults/{trace.name}")
    record = ReplayRecord()
    golden = record.golden

    translate = mm.translate
    block_base_of = mee.address_space.block_base
    write_block = mee.write_block
    churn = mm.churn

    vaddrs, pids, thinks, flag_col = _trace_columns(trace)
    position = 0
    pending: Optional[Tuple[int, Optional[bytes], bytes]] = None
    try:
        for vaddr, pid, flags in zip(vaddrs, pids, flag_col):
            if scheduler is not None:
                scheduler.on_access(position)
            paddr = translate(pid, vaddr)
            base = block_base_of(paddr)
            if flags & 1:
                fenced = bool(flags & 2)
                if functional:
                    payload = replay_payload(position, block_bytes)
                    pending = (base, golden.get(base), payload)
                    write_block(base, data=payload, fenced=fenced)
                    golden[base] = payload
                    pending = None
                else:
                    write_block(base, fenced=fenced)
            elif functional:
                data = mee.read_block_data(base)
                if verify_reads and data != golden.get(base, zero_block):
                    raise SimulationError(
                        f"pre-crash readback diverged at block {base:#x} "
                        f"(access {position} of {trace.name})"
                    )
            else:
                mee.read_block(base)
            position += 1
            record.accesses_completed = position
            if churn_interval and position % churn_interval == 0:
                churn(
                    rng,
                    bursts=churn_bursts,
                    pages_per_burst=churn_pages_per_burst,
                )
    except PowerFailure as failure:
        record.crashed = True
        record.crash_phase = failure.phase
        record.crash_occurrence = failure.occurrence
        record.crash_access_index = failure.access_index
        record.crash_write_committed = failure.write_committed
        record.crash_in_group = failure.in_group
        if pending is not None:
            if failure.write_committed:
                # The group drained before the lights went out: the
                # interrupted access's write is durable after all.
                golden[pending[0]] = pending[2]
            else:
                record.in_flight = pending
    return record
