"""The trace-driven simulation loop.

For each reference in the trace: translate (demand paging), probe the
LLC, and send the resulting *memory traffic* — fills and dirty
writebacks — through the memory encryption engine, accumulating cycles.
Secure-memory work therefore only happens where it happens in hardware:
at the memory boundary.

Periodic page churn emulates unrelated system activity so the OS
reclamation path (where AMNT++ restructures free lists) actually runs
during measurement, as it would on a live machine.

Cycle accounting is deliberately simple and serial — think cycles plus
LLC latency plus every NVM access at full latency. Absolute cycle
counts are therefore pessimistic for all protocols equally; every
reported figure is normalized to the volatile baseline run on the same
trace, exactly as the paper normalizes to the volatile secure-memory
scheme.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.machine import Machine
from repro.sim.results import SimulationResult
from repro.util.rng import Seed, make_rng
from repro.workloads.trace import Trace

#: Modeled kernel instructions per demand-paging fault (trap, allocator
#: call, page-table update). Only Table 2's instruction ratios consume
#: this; it is deliberately round.
INSTRUCTIONS_PER_PAGE_FAULT = 500


def simulate(
    machine: Machine,
    trace: Trace,
    seed: Seed = 0,
    churn_interval: int = 16384,
    churn_bursts: int = 2,
    churn_pages_per_burst: int = 32,
    flush_llc_at_end: bool = False,
) -> SimulationResult:
    """Run ``trace`` to completion on ``machine``; returns the result."""
    rng = make_rng(f"{seed}/engine/{trace.name}")
    mee = machine.mee
    llc = machine.llc
    mm = machine.mm
    block_bytes = machine.config.security.block_bytes
    llc_latency = machine.config.llc.access_latency_cycles

    # The loop below runs once per trace record — hoist every bound
    # method and attribute it touches so the interpreter does the
    # lookups once instead of hundreds of thousands of times.
    translate = mm.translate
    llc_access = llc.access
    llc_flush_block = llc.flush_block
    read_block = mee.read_block
    write_block = mee.write_block
    churn = mm.churn

    cycles = 0
    app_instructions = 0
    position = 0
    for access in trace.accesses:
        position += 1
        think = access.think_cycles
        is_write = access.is_write
        paddr = translate(access.pid, access.vaddr)
        traffic = llc_access(paddr, is_write)
        cycles += think + llc_latency
        app_instructions += think + 1
        if traffic.fill_block is not None:
            cycles += read_block(traffic.fill_block * block_bytes)
        for victim_block in traffic.writeback_blocks:
            cycles += write_block(victim_block * block_bytes)
        if is_write and access.flush:
            # CLWB + fence: the store is pushed to memory now, and the
            # core waits for the (protocol-dependent) persist to finish
            # — the path in-memory storage applications live on.
            flushed_block = llc_flush_block(paddr)
            if flushed_block is not None:
                cycles += write_block(
                    flushed_block * block_bytes, fenced=True
                )
        if churn_interval and position % churn_interval == 0:
            churn(
                rng, bursts=churn_bursts, pages_per_burst=churn_pages_per_burst
            )
    if flush_llc_at_end:
        for victim_block in llc.flush():
            cycles += mee.write_block(victim_block * block_bytes)

    os_instructions = (
        mm.allocator.instructions()
        + mm.stats.get("page_faults") * INSTRUCTIONS_PER_PAGE_FAULT
    )
    return SimulationResult(
        workload=trace.name,
        protocol=mee.protocol.display_name,
        cycles=cycles,
        accesses=len(trace),
        llc_hit_rate=llc.hit_rate(),
        mdcache_hit_rate=mee.mdcache.hit_rate(),
        instructions=app_instructions + os_instructions,
        os_instructions=os_instructions,
        page_faults=mm.stats.get("page_faults"),
        nvm_stats=mee.nvm.stats.snapshot(),
        protocol_stats=mee.protocol.stats.snapshot(),
        mee_stats=mee.stats.snapshot(),
    )
