"""Boundary-event compilation: simulate the data side once, replay it.

Every protocol in the paper's lineup consumes the same input — the
*memory traffic* that crosses the LLC boundary (fills, dirty victim
writebacks, and explicit CLWB+fence persists). The data-side hierarchy
that produces that traffic (address translation, demand paging, the
LLC, page churn) is completely protocol-independent for a fixed OS
variant, yet a naive sweep re-walks it once per cell: an 18-cell grid
(3 benchmarks x 6 protocols) runs the identical L1/LLC simulation 18
times instead of 3.

:func:`compile_boundary_stream` runs that hierarchy exactly once per
(trace, data-side geometry) and emits a :class:`BoundaryStream` — a
columnar, ``array``-backed record of every boundary event in program
order plus the data-side half of the eventual
:class:`~repro.sim.results.SimulationResult` (LLC hit counters, page
faults, OS instruction charges, think-cycle totals).
:func:`repro.sim.engine.simulate_from_stream` then drives any machine's
MEE/protocol layer straight from the compiled events. Because the
events are byte-for-byte the calls ``simulate()`` would have issued,
the replayed result is bit-identical to the direct one by construction
— and verified across the full protocol lineup and both integrity
modes by ``tests/test_replay.py``.

What is *not* compiled away: fault campaigns keep the full direct path
(their crash oracles need live data-cache state, see
``repro.faults.campaign.run_fault_cell``), and the modified-OS variant
(``amnt++``) gets its own stream — physical placement differs under
the AMNT++ allocator, which is the experiment.
"""

from __future__ import annotations

from array import array
from typing import Tuple

from repro.config import SystemConfig
from repro.util.rng import Seed, make_rng
from repro.workloads.trace import Trace

#: Boundary-event kinds stored in :attr:`BoundaryStream.kind`.
EVENT_FILL = 0  #: LLC miss: read the block through the MEE.
EVENT_WRITEBACK = 1  #: Dirty victim (or end-of-run flush): posted write.
EVENT_PERSIST = 2  #: CLWB + fence: fenced write on the critical path.


class BoundaryStream:
    """The compiled memory-boundary trace of one data-side simulation.

    Columnar like :class:`~repro.workloads.trace.ColumnarAccesses`:
    four parallel ``array`` columns (event kind, physical block base,
    issuing pid, originating access index) instead of per-event
    objects. Events ``[0, main_events)`` are the run proper; the tail
    ``[main_events, len)`` is the end-of-run LLC flush sequence, which
    a replay applies only when the direct run would have
    (``flush_llc_at_end=True``). The flush tail carries ``pid == -1``
    and ``access_index == accesses``.

    The scalar fields carry the data-side half of the result: the
    replay splices them into its :class:`SimulationResult` so the
    assembled record is indistinguishable from a direct run's.
    """

    __slots__ = (
        "name",
        "kind",
        "addr",
        "pid",
        "access_index",
        "main_events",
        "accesses",
        "think_total",
        "llc_hits",
        "llc_misses",
        "page_faults",
        "os_instructions",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.kind = array("B")
        self.addr = array("q")
        self.pid = array("q")
        self.access_index = array("q")
        self.main_events = 0
        self.accesses = 0
        self.think_total = 0
        self.llc_hits = 0
        self.llc_misses = 0
        self.page_faults = 0
        self.os_instructions = 0

    def __len__(self) -> int:
        return len(self.kind)

    @property
    def app_instructions(self) -> int:
        """Application instructions exactly as ``simulate()`` counts
        them: think cycles plus one per access."""
        return self.think_total + self.accesses

    def llc_hit_rate(self) -> float:
        total = self.llc_hits + self.llc_misses
        return self.llc_hits / total if total else 0.0

    def columns(self) -> Tuple[array, array, array, array]:
        """Raw (kind, addr, pid, access_index) columns."""
        return self.kind, self.addr, self.pid, self.access_index

    def __repr__(self) -> str:
        return (
            f"BoundaryStream(name={self.name!r}, events={len(self.kind)}, "
            f"accesses={self.accesses})"
        )


def compile_boundary_stream(
    trace: Trace,
    config: SystemConfig,
    seed: Seed = 0,
    churn_interval: int = 16384,
    churn_bursts: int = 2,
    churn_pages_per_burst: int = 32,
    scatter_span_chunks: int = 0,
    modified_os: bool = False,
    max_order: int = 10,
    reclaim_interval: int = 64,
) -> BoundaryStream:
    """Run the data-side hierarchy over ``trace`` once; return its
    boundary-event stream.

    The loop is ``simulate()``'s, minus the MEE calls: same demand
    paging, same LRU transitions, same churn RNG stream, same
    end-of-run flush — every parameter that shapes data-side behaviour
    is an argument here and a field of the stream-cache key
    (:class:`repro.workloads.registry.BoundaryStreamSpec`).
    ``modified_os`` selects the AMNT++ allocator variant, which changes
    physical placement and therefore the compiled addresses.
    """
    from repro.sim.machine import build_data_side

    llc, mm = build_data_side(
        config,
        modified_os=modified_os,
        seed=seed,
        scatter_span_chunks=scatter_span_chunks,
        max_order=max_order,
        reclaim_interval=reclaim_interval,
    )
    from repro.sim.engine import INSTRUCTIONS_PER_PAGE_FAULT, _trace_columns

    rng = make_rng(f"{seed}/engine/{trace.name}")
    block_bytes = config.security.block_bytes

    stream = BoundaryStream(trace.name)
    kinds = stream.kind
    addrs = stream.addr
    out_pids = stream.pid
    out_index = stream.access_index
    kind_append = kinds.append
    addr_append = addrs.append
    pid_append = out_pids.append
    index_append = out_index.append

    translate = mm.translate
    llc_access = llc.access
    llc_flush_block = llc.flush_block
    churn = mm.churn

    vaddrs, pids, thinks, flag_col = _trace_columns(trace)
    position = 0
    for vaddr, pid, flags in zip(vaddrs, pids, flag_col):
        position += 1
        is_write = flags & 1
        paddr = translate(pid, vaddr)
        traffic = llc_access(paddr, is_write)
        if traffic.fill_block is not None:
            kind_append(EVENT_FILL)
            addr_append(traffic.fill_block * block_bytes)
            pid_append(pid)
            index_append(position - 1)
        for victim_block in traffic.writeback_blocks:
            kind_append(EVENT_WRITEBACK)
            addr_append(victim_block * block_bytes)
            pid_append(pid)
            index_append(position - 1)
        if is_write and flags & 2:
            flushed_block = llc_flush_block(paddr)
            if flushed_block is not None:
                kind_append(EVENT_PERSIST)
                addr_append(flushed_block * block_bytes)
                pid_append(pid)
                index_append(position - 1)
        if churn_interval and position % churn_interval == 0:
            churn(
                rng, bursts=churn_bursts, pages_per_burst=churn_pages_per_burst
            )

    stream.main_events = len(kinds)
    # The end-of-run flush sequence is compiled unconditionally (it is
    # a pure function of the final LLC state and mutates nothing the
    # main loop reads); replays apply it only under flush_llc_at_end.
    for victim_block in llc.flush():
        kind_append(EVENT_WRITEBACK)
        addr_append(victim_block * block_bytes)
        pid_append(-1)
        index_append(position)

    stream.accesses = position
    stream.think_total = sum(thinks)
    stream.llc_hits = llc.stats.get("hits")
    stream.llc_misses = llc.stats.get("misses")
    stream.page_faults = mm.stats.get("page_faults")
    stream.os_instructions = (
        mm.allocator.instructions()
        + stream.page_faults * INSTRUCTIONS_PER_PAGE_FAULT
    )
    return stream
