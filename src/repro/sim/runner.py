"""Experiment runner: protocol sweeps over identical traces.

Each protocol gets a *fresh machine* but the *same virtual trace*, so
differences come only from the protocol (and, for ``amnt++``, the
modified OS's physical placement — which is the experiment). The runner
is the building block every figure's benchmark harness uses.

Sweeps accept either a materialized :class:`Trace` or a picklable
:class:`~repro.workloads.registry.TraceSpec`; with ``workers > 1`` the
cells fan out over a :class:`~repro.sim.parallel.ParallelSweepRunner`
process pool and come back bit-identical to the serial run.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Sequence, Union

from repro import telemetry
from repro.config import SystemConfig
from repro.sim.engine import simulate, simulate_from_plan, simulate_from_stream
from repro.sim.machine import build_machine
from repro.sim.parallel import ParallelSweepRunner, SweepCell
from repro.sim.results import SimulationResult, normalized_cycles
from repro.util.rng import Seed
from repro.workloads.registry import (
    TraceSpec,
    boundary_stream_spec,
    literal_spec,
    materialize_boundary_stream,
    materialize_metadata_plan,
    materialize_trace,
    metadata_plan_spec,
)
from repro.workloads.trace import Trace

#: The protocol lineup of the paper's runtime figures (4, 5, 8).
FIGURE_PROTOCOLS = ("volatile", "leaf", "strict", "anubis", "bmf", "amnt")
FIGURE_PROTOCOLS_WITH_OS = FIGURE_PROTOCOLS + ("amnt++",)

TraceLike = Union[Trace, TraceSpec]


def run_protocol_sweep(
    trace: TraceLike,
    config: SystemConfig,
    protocols: Sequence[str] = FIGURE_PROTOCOLS,
    seed: Seed = 0,
    scatter_span_chunks: int = 0,
    churn_interval: int = 16384,
    workers: int = 1,
    replay: bool = True,
    plan: bool = True,
    store=None,
) -> Dict[str, SimulationResult]:
    """Run ``trace`` under each protocol on a fresh machine.

    ``workers > 1`` distributes the protocols over a process pool. A
    raw :class:`Trace` is wrapped in a literal spec for the pool (the
    whole trace is pickled once per worker); pass a
    :class:`~repro.workloads.registry.TraceSpec` so workers regenerate
    it locally instead.

    With ``replay=True`` (the default) the protocol-independent data
    side is compiled to a boundary-event stream once per OS variant and
    replayed into every protocol's MEE (see :mod:`repro.sim.replay`) —
    bit-identical results, one LLC walk instead of ``len(protocols)``.
    ``replay=False`` keeps the direct path (the ``--no-replay`` escape
    hatch; fault campaigns never come through here at all).

    With ``plan=True`` (the default) each replay additionally consumes
    the stream's compiled metadata plan (:mod:`repro.sim.plan`):
    per-event counter/HMAC/path addresses resolved once per (trace,
    geometry) and shared across every protocol. Bit-identical again;
    ``plan=False`` (``--no-plan``) falls back to stream replay with
    per-event derivation. Ignored unless ``replay`` is on.

    With a :class:`~repro.store.ResultStore` as ``store`` the sweep is
    *incremental*: cells whose fingerprints are already in the store are
    replayed from disk, only the rest are computed (then written back),
    and the returned mapping is bit-identical to a store-less run.
    """
    _validate_sweep(trace, protocols, churn_interval)
    label = trace.name if isinstance(trace, Trace) else trace.label()
    with telemetry.span(f"sweep:{label}"):
        if store is not None:
            return _run_stored_sweep(
                trace,
                config,
                protocols,
                seed=seed,
                scatter_span_chunks=scatter_span_chunks,
                churn_interval=churn_interval,
                workers=workers,
                replay=replay,
                plan=plan,
                store=store,
            )
        return _run_protocol_sweep(
            trace,
            config,
            protocols,
            seed=seed,
            scatter_span_chunks=scatter_span_chunks,
            churn_interval=churn_interval,
            workers=workers,
            replay=replay,
            plan=plan,
        )


def _run_stored_sweep(
    trace: TraceLike,
    config: SystemConfig,
    protocols: Sequence[str],
    seed: Seed,
    scatter_span_chunks: int,
    churn_interval: int,
    workers: int,
    replay: bool,
    plan: bool,
    store,
) -> Dict[str, SimulationResult]:
    """The incremental path: express the sweep as cells, let the
    parallel runner partition them into store hits and misses. A raw
    :class:`Trace` is wrapped in a literal spec so its full payload is
    part of the fingerprint closure (and with ``workers <= 1`` the
    runner stays in-process — same engine path as the serial sweep)."""
    spec = trace if isinstance(trace, TraceSpec) else literal_spec(trace)
    cells = [
        SweepCell(
            protocol=name,
            trace=spec,
            seed=seed,
            scatter_span_chunks=scatter_span_chunks,
            churn_interval=churn_interval,
            replay=replay,
            plan=plan,
        )
        for name in protocols
    ]
    results = ParallelSweepRunner(workers=workers).run(
        cells, config, store=store
    )
    return dict(zip(protocols, results))


def _run_protocol_sweep(
    trace: TraceLike,
    config: SystemConfig,
    protocols: Sequence[str],
    seed: Seed,
    scatter_span_chunks: int,
    churn_interval: int,
    workers: int,
    replay: bool,
    plan: bool,
) -> Dict[str, SimulationResult]:
    if workers > 1:
        spec = trace if isinstance(trace, TraceSpec) else literal_spec(trace)
        cells = [
            SweepCell(
                protocol=name,
                trace=spec,
                seed=seed,
                scatter_span_chunks=scatter_span_chunks,
                churn_interval=churn_interval,
                replay=replay,
                plan=plan,
            )
            for name in protocols
        ]
        results = ParallelSweepRunner(workers=workers).run(cells, config)
        return dict(zip(protocols, results))

    results_by_name: Dict[str, SimulationResult] = {}
    if replay:
        from repro.core.protocol import protocol_uses_modified_os
        from repro.sim.replay import compile_boundary_stream

        # One compiled stream — and, with ``plan``, one metadata plan —
        # per OS variant present in the lineup (stock vs AMNT++-modified
        # placement), shared by every protocol on that variant.
        # TraceSpec sweeps go through the process-wide caches; raw
        # traces compile sweep-locally.
        streams: Dict[bool, object] = {}
        plans: Dict[bool, object] = {}
        for name in protocols:
            modified = protocol_uses_modified_os(name)
            stream = streams.get(modified)
            if stream is None:
                if isinstance(trace, TraceSpec):
                    stream_spec = boundary_stream_spec(
                        trace,
                        config,
                        seed=seed,
                        churn_interval=churn_interval,
                        scatter_span_chunks=scatter_span_chunks,
                        modified_os=modified,
                    )
                    stream = materialize_boundary_stream(stream_spec, config)
                    if plan:
                        plans[modified] = materialize_metadata_plan(
                            metadata_plan_spec(stream_spec), config
                        )
                else:
                    stream = compile_boundary_stream(
                        trace,
                        config,
                        seed=seed,
                        churn_interval=churn_interval,
                        scatter_span_chunks=scatter_span_chunks,
                        modified_os=modified,
                    )
                    if plan:
                        from repro.sim.plan import compile_metadata_plan

                        plans[modified] = compile_metadata_plan(stream, config)
                streams[modified] = stream
            with telemetry.span(f"cell:{name}"):
                machine = build_machine(
                    config,
                    name,
                    seed=seed,
                    scatter_span_chunks=scatter_span_chunks,
                )
                if plan:
                    results_by_name[name] = simulate_from_plan(
                        stream, plans[modified], machine
                    )
                else:
                    results_by_name[name] = simulate_from_stream(
                        stream, machine
                    )
        return results_by_name

    materialized = (
        materialize_trace(trace) if isinstance(trace, TraceSpec) else trace
    )
    for name in protocols:
        with telemetry.span(f"cell:{name}"):
            machine = build_machine(
                config,
                name,
                seed=seed,
                scatter_span_chunks=scatter_span_chunks,
            )
            results_by_name[name] = simulate(
                machine, materialized, seed=seed, churn_interval=churn_interval
            )
    return results_by_name


def _validate_sweep(
    trace: TraceLike, protocols: Sequence[str], churn_interval: int
) -> None:
    """Fail fast on a malformed sweep, before any machine is built.

    The parallel path re-validates per cell inside the runner; doing it
    here as well gives the serial path the same field-named errors and
    catches a typo'd grid before the first (expensive) machine build.
    """
    from repro.core.protocol import protocol_names
    from repro.errors import ConfigValidationError
    from repro.workloads.registry import validate_trace_spec

    known = set(protocol_names())
    for name in protocols:
        if name not in known:
            raise ConfigValidationError(
                "cell.protocol",
                f"unknown protocol {name!r}; known: {sorted(known)}",
            )
    if isinstance(trace, TraceSpec):
        validate_trace_spec(trace)
    if churn_interval <= 0:
        raise ConfigValidationError(
            "cell.churn_interval",
            f"must be positive, got {churn_interval}",
        )


def sweep_normalized(
    trace: TraceLike,
    config: SystemConfig,
    protocols: Sequence[str] = FIGURE_PROTOCOLS,
    seed: Seed = 0,
    scatter_span_chunks: int = 0,
    baseline: str = "volatile",
    workers: int = 1,
    replay: bool = True,
    plan: bool = True,
    store=None,
) -> Dict[str, float]:
    """Normalized cycles (the paper's y-axis) for each protocol."""
    protocols = tuple(protocols)
    if baseline not in protocols:
        protocols = (baseline,) + protocols
    results = run_protocol_sweep(
        trace,
        config,
        protocols,
        seed=seed,
        scatter_span_chunks=scatter_span_chunks,
        workers=workers,
        replay=replay,
        plan=plan,
        store=store,
    )
    return normalized_cycles(results, baseline=baseline)


def geometric_mean(values: Iterable[float]) -> float:
    """Geomean used for 'average overhead' style summary numbers.

    Computed as ``exp(mean(log(v)))`` rather than an n-th root of a
    running product: long sweeps with extreme normalized values would
    overflow to ``inf`` or underflow to ``0.0`` in the product form.
    """
    values = list(values)
    if not values:
        raise ValueError("geometric mean of nothing")
    log_sum = 0.0
    for value in values:
        if value <= 0:
            raise ValueError(f"geometric mean requires positive values, got {value}")
        log_sum += math.log(value)
    return math.exp(log_sum / len(values))
