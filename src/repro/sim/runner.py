"""Experiment runner: protocol sweeps over identical traces.

Each protocol gets a *fresh machine* but the *same virtual trace*, so
differences come only from the protocol (and, for ``amnt++``, the
modified OS's physical placement — which is the experiment). The runner
is the building block every figure's benchmark harness uses.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.config import SystemConfig
from repro.sim.engine import simulate
from repro.sim.machine import build_machine
from repro.sim.results import SimulationResult, normalized_cycles
from repro.util.rng import Seed
from repro.workloads.trace import Trace

#: The protocol lineup of the paper's runtime figures (4, 5, 8).
FIGURE_PROTOCOLS = ("volatile", "leaf", "strict", "anubis", "bmf", "amnt")
FIGURE_PROTOCOLS_WITH_OS = FIGURE_PROTOCOLS + ("amnt++",)


def run_protocol_sweep(
    trace: Trace,
    config: SystemConfig,
    protocols: Sequence[str] = FIGURE_PROTOCOLS,
    seed: Seed = 0,
    scatter_span_chunks: int = 0,
    churn_interval: int = 16384,
) -> Dict[str, SimulationResult]:
    """Run ``trace`` under each protocol on a fresh machine."""
    results: Dict[str, SimulationResult] = {}
    for name in protocols:
        machine = build_machine(
            config,
            name,
            seed=seed,
            scatter_span_chunks=scatter_span_chunks,
        )
        results[name] = simulate(
            machine, trace, seed=seed, churn_interval=churn_interval
        )
    return results


def sweep_normalized(
    trace: Trace,
    config: SystemConfig,
    protocols: Sequence[str] = FIGURE_PROTOCOLS,
    seed: Seed = 0,
    scatter_span_chunks: int = 0,
    baseline: str = "volatile",
) -> Dict[str, float]:
    """Normalized cycles (the paper's y-axis) for each protocol."""
    protocols = tuple(protocols)
    if baseline not in protocols:
        protocols = (baseline,) + protocols
    results = run_protocol_sweep(
        trace,
        config,
        protocols,
        seed=seed,
        scatter_span_chunks=scatter_span_chunks,
    )
    return normalized_cycles(results, baseline=baseline)


def geometric_mean(values: Iterable[float]) -> float:
    """Geomean used for 'average overhead' style summary numbers."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of nothing")
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError(f"geometric mean requires positive values, got {value}")
        product *= value
    return product ** (1.0 / len(values))
