"""Simulation results and normalization helpers.

Every figure in the paper reports cycles *normalized to the volatile
secure-memory baseline*; :func:`normalized_cycles` implements that
division, and :class:`SimulationResult` carries the raw counters a
harness needs to reproduce the secondary statistics (metadata cache hit
rates, subtree hit rates, movement frequency, persist traffic,
instruction counts for Table 2).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from typing import Dict, Mapping, Optional


@dataclass(slots=True)
class SimulationResult:
    """Outcome of one trace run on one machine.

    Results cross process boundaries (the parallel sweep runner returns
    them from pool workers) and land in results files, so the class
    round-trips losslessly through both ``pickle`` and JSON — every
    field is a builtin scalar or a flat ``Dict[str, int]`` snapshot.
    """

    workload: str
    protocol: str
    cycles: int
    accesses: int
    llc_hit_rate: float
    mdcache_hit_rate: float
    #: application instructions (proxied by think cycles) + OS work.
    instructions: int
    os_instructions: int
    page_faults: int
    nvm_stats: Dict[str, int] = field(default_factory=dict)
    protocol_stats: Dict[str, int] = field(default_factory=dict)
    mee_stats: Dict[str, int] = field(default_factory=dict)

    # -- derived metrics ----------------------------------------------------

    def _protocol_stat(self, suffix: str) -> int:
        """Sum a protocol counter by suffix, tolerant of the protocol's
        stats prefix (``protocol.amnt.`` vs ``protocol.amnt-multi.``)."""
        return sum(
            value
            for name, value in self.protocol_stats.items()
            if name.endswith(suffix)
        )

    def subtree_hit_rate(self) -> Optional[float]:
        """AMNT: fraction of memory writes landing in a fast subtree."""
        hits = self._protocol_stat(".subtree_hits")
        misses = self._protocol_stat(".subtree_misses")
        total = hits + misses
        if total == 0:
            return None
        return hits / total

    def movement_rate(self) -> Optional[float]:
        """AMNT: subtree movements per memory data write."""
        movements = self._protocol_stat(".movements")
        writes = self.mee_stats.get("mee.data_writes", 0)
        if writes == 0:
            return None
        return movements / writes

    def persist_traffic(self) -> int:
        return self.nvm_stats.get("nvm.persists.total", 0)

    def metadata_write_amplification(self) -> Optional[float]:
        """NVM metadata-line writes per data-line write.

        SCM cells wear out; a persistence protocol that writes several
        metadata lines per data write multiplies device wear as well as
        latency. Volatile/leaf sit near the floor, strict near the
        tree height. None when the run produced no data writes.
        """
        data_writes = self.nvm_stats.get("nvm.writes.data", 0)
        if data_writes == 0:
            return None
        total_writes = self.nvm_stats.get("nvm.writes.total", 0)
        return (total_writes - data_writes) / data_writes

    def cycles_per_access(self) -> float:
        return self.cycles / self.accesses if self.accesses else 0.0

    # -- serialization ------------------------------------------------------

    def to_json_dict(self) -> Dict[str, object]:
        """A plain-builtin dict that ``json.dumps`` accepts as-is."""
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_json_dict())

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, object]) -> "SimulationResult":
        """Inverse of :meth:`to_json_dict`; ignores unknown keys so
        results files survive field additions in newer versions."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})

    @classmethod
    def from_json(cls, text: str) -> "SimulationResult":
        return cls.from_json_dict(json.loads(text))

    def __repr__(self) -> str:
        return (
            f"SimulationResult({self.workload!r}, {self.protocol!r}, "
            f"cycles={self.cycles}, cpa={self.cycles_per_access():.1f})"
        )


def normalized_cycles(
    results: Mapping[str, SimulationResult],
    baseline: str = "volatile",
) -> Dict[str, float]:
    """Cycles of each protocol divided by the baseline's cycles."""
    if baseline not in results:
        raise KeyError(f"baseline {baseline!r} missing from results")
    base = results[baseline].cycles
    if base <= 0:
        raise ValueError("baseline run recorded no cycles")
    return {name: result.cycles / base for name, result in results.items()}
