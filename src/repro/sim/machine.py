"""Machine construction: wire the substrates into a runnable system.

A :class:`Machine` bundles what a simulated node needs: the memory
manager (buddy allocator + page tables, optionally AMNT++-modified),
the last-level data cache, and the memory encryption engine with its
bound persistence protocol. :func:`build_machine` is the one place the
wiring happens, so every harness, test, and example builds identical
systems from a :class:`~repro.config.SystemConfig` and a protocol name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.cache.hierarchy import DataCache
from repro.config import SystemConfig
from repro.core.mee import MemoryEncryptionEngine
from repro.core.protocol import (
    MetadataPersistencePolicy,
    make_protocol,
    protocol_uses_modified_os,
)
from repro.integrity.geometry import TreeGeometry
from repro.mem.address import AddressSpace
from repro.os.amntpp import AMNTPlusPlusRestructurer
from repro.os.buddy import BuddyAllocator
from repro.os.process import MemoryManager
from repro.util.rng import Seed, make_rng


@dataclass
class Machine:
    """A complete simulated secure-SCM node."""

    config: SystemConfig
    mee: MemoryEncryptionEngine
    llc: DataCache
    mm: MemoryManager

    @property
    def protocol(self) -> MetadataPersistencePolicy:
        return self.mee.protocol

    @property
    def modified_os(self) -> bool:
        return self.mm.modified_os


def build_data_side(
    config: SystemConfig,
    modified_os: bool,
    seed: Seed = 0,
    scatter_span_chunks: int = 0,
    max_order: int = 10,
    reclaim_interval: int = 64,
    address_space: Optional[AddressSpace] = None,
    geometry: Optional[TreeGeometry] = None,
) -> Tuple[DataCache, MemoryManager]:
    """Build the protocol-independent data side: LLC + memory manager.

    This is the half of the machine the boundary-event compiler
    (:mod:`repro.sim.replay`) simulates once per trace — everything in
    front of the memory encryption engine. :func:`build_machine` and the
    compiler both wire it through this one function so the direct and
    compiled paths cannot drift: same allocator aging, same modified-OS
    boot restructuring, same stats baseline.

    ``address_space``/``geometry`` let :func:`build_machine` reuse the
    MEE's instances; when omitted they are derived from ``config``
    (identical values — both are pure functions of the config).
    """
    if address_space is None:
        address_space = AddressSpace(
            config.pcm.capacity_bytes,
            block_bytes=config.security.block_bytes,
            page_bytes=config.security.page_bytes,
        )
    llc = DataCache(config.llc, address_space)

    page_bytes = config.security.page_bytes
    total_pages = config.pcm.capacity_bytes // page_bytes
    allocator = BuddyAllocator(total_pages, max_order=max_order)
    if scatter_span_chunks:
        allocator.scatter(
            make_rng(f"{seed}/scatter"), span_chunks=scatter_span_chunks
        )

    restructurer: Optional[AMNTPlusPlusRestructurer] = None
    if modified_os:
        if geometry is None:
            geometry = TreeGeometry.from_config(config)
        region_bytes = geometry.region_bytes(config.amnt.subtree_level)
        pages_per_region = max(1, region_bytes // page_bytes)
        restructurer = AMNTPlusPlusRestructurer(
            region_of_pfn=lambda pfn: pfn // pages_per_region,
            reclaim_interval=reclaim_interval,
        )
        # The modified OS has been reordering free lists since boot; the
        # machine starts in that steady state rather than discovering it
        # mid-measurement.
        restructurer.restructure(allocator)
    mm = MemoryManager(
        allocator, page_bytes=page_bytes, restructurer=restructurer
    )
    # Boot-time work (scatter aging, the modified OS's initial free-list
    # state) is setup, not measurement: instruction accounting starts at
    # the region of interest, as the paper's Table 2 methodology does.
    allocator.stats.reset()
    return llc, mm


def build_machine(
    config: SystemConfig,
    protocol_name: str,
    functional: bool = False,
    seed: Seed = 0,
    scatter_span_chunks: int = 0,
    max_order: int = 10,
    reclaim_interval: int = 64,
    integrity_mode: str = "eager",
) -> Machine:
    """Build a machine running ``protocol_name``.

    ``protocol_name == "amnt++"`` selects the AMNT hardware *plus* the
    modified OS allocator — the protocol registry knows which names
    imply the modified OS. ``scatter_span_chunks > 0`` pre-ages the
    buddy allocator over that many max-order chunks (multiprogram
    methodology; see :meth:`BuddyAllocator.scatter`).

    ``integrity_mode`` selects the functional BMT's update discipline
    (``"eager"``/``"lazy"``; only meaningful with ``functional=True``).
    Timing results and functional digests are identical in both modes;
    fault-injection entry points force ``"eager"`` regardless.
    """
    protocol = make_protocol(protocol_name, config)
    mee = MemoryEncryptionEngine(
        config, protocol, functional=functional, integrity_mode=integrity_mode
    )
    llc, mm = build_data_side(
        config,
        modified_os=protocol_uses_modified_os(protocol_name),
        seed=seed,
        scatter_span_chunks=scatter_span_chunks,
        max_order=max_order,
        reclaim_interval=reclaim_interval,
        address_space=mee.address_space,
        geometry=mee.geometry,
    )
    return Machine(config=config, mee=mee, llc=llc, mm=mm)
