"""Parallel sweep execution over a multiprocessing pool.

Every paper figure is a (protocol × workload × seed) grid whose cells
are completely independent — each one builds a fresh machine, replays a
deterministic trace, and returns a :class:`SimulationResult`. That is
embarrassingly parallel, so :class:`ParallelSweepRunner` fans the cells
out over a process pool.

Design rules:

* **Nothing heavyweight crosses the process boundary.** A cell carries
  a :class:`~repro.workloads.registry.TraceSpec` (a recipe), not a
  trace; workers regenerate the trace locally through the process-wide
  materialization cache, so a worker that runs several protocols over
  one workload generates that trace once.
* **Determinism.** Cell results depend only on (config, protocol,
  spec, seed); scheduling order cannot leak in. ``run`` returns results
  in cell order, and a parallel run is bit-identical to the serial one.
* **Graceful fallback.** ``workers <= 1``, an unavailable
  ``multiprocessing`` start method, or a pool that dies mid-flight all
  degrade to in-process execution of the same cells — same results,
  one core.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro import telemetry
from repro.config import INTEGRITY_MODES, SystemConfig
from repro.errors import ConfigValidationError
from repro.sim.engine import simulate, simulate_from_plan, simulate_from_stream
from repro.sim.machine import build_machine
from repro.sim.results import SimulationResult
from repro.util.rng import Seed
from repro.workloads.registry import (
    TraceSpec,
    boundary_stream_spec,
    materialize_boundary_stream,
    materialize_metadata_plan,
    materialize_trace,
    metadata_plan_spec,
    validate_trace_spec,
)


@dataclass(frozen=True, slots=True)
class SweepCell:
    """One independent unit of sweep work.

    ``config`` may override the runner-level config (level sweeps build
    a different geometry per cell); ``None`` means "use the shared one".
    """

    protocol: str
    trace: TraceSpec
    seed: Seed = 0
    scatter_span_chunks: int = 0
    churn_interval: int = 16384
    config: Optional[SystemConfig] = None
    #: Build the machine with functional (real-crypto) state. Timing
    #: sweeps leave this off; functional equivalence checks turn it on.
    functional: bool = False
    #: BMT update discipline for functional cells ("eager"/"lazy");
    #: results are bit-identical either way (see repro.integrity.bmt).
    integrity_mode: str = "eager"
    #: Drive the MEE from a compiled boundary stream instead of
    #: re-walking the data-side hierarchy (see repro.sim.replay).
    #: Bit-identical to the direct path; cells sharing a (trace,
    #: data-side geometry) then share one compiled stream per process.
    replay: bool = False
    #: Replay through a compiled metadata plan (see repro.sim.plan):
    #: per-event counter/HMAC/path addresses pre-resolved once per
    #: (trace, geometry) and shared across protocols. Only effective
    #: when ``replay`` is set; bit-identical either way, so this stays
    #: on by default and exists to measure (bench) or bypass (--no-plan)
    #: the fast path.
    plan: bool = True


def validate_cells(cells: Sequence[SweepCell]) -> None:
    """Reject a malformed grid before any work is dispatched.

    Checks every cell's protocol against the live registry and its
    trace spec against the workload suites, so a 1000-cell sweep with a
    typo in cell 997 fails in milliseconds instead of hours in.
    """
    from repro.core.protocol import protocol_names

    known = set(protocol_names())
    for cell in cells:
        if cell.protocol not in known:
            raise ConfigValidationError(
                "cell.protocol",
                f"unknown protocol {cell.protocol!r}; known: {sorted(known)}",
            )
        validate_trace_spec(cell.trace)
        if cell.churn_interval <= 0:
            raise ConfigValidationError(
                "cell.churn_interval",
                f"must be positive, got {cell.churn_interval}",
            )
        if cell.scatter_span_chunks < 0:
            raise ConfigValidationError(
                "cell.scatter_span_chunks",
                f"cannot be negative, got {cell.scatter_span_chunks}",
            )
        if cell.integrity_mode not in INTEGRITY_MODES:
            raise ConfigValidationError(
                "cell.integrity_mode",
                f"unknown mode {cell.integrity_mode!r}; "
                f"known: {INTEGRITY_MODES}",
            )


def stream_spec_for(cell: SweepCell, config: SystemConfig):
    """The boundary-stream cache key of one replay cell.

    Centralized so every caller (run_cell, the precompile warmers, the
    bench legs) derives the identical key from a cell — the modified-OS
    bit comes from the protocol registry, everything else from the cell
    and its effective config.
    """
    from repro.core.protocol import protocol_uses_modified_os

    cell_config = cell.config if cell.config is not None else config
    return boundary_stream_spec(
        cell.trace,
        cell_config,
        seed=cell.seed,
        churn_interval=cell.churn_interval,
        scatter_span_chunks=cell.scatter_span_chunks,
        modified_os=protocol_uses_modified_os(cell.protocol),
    )


def precompile_streams(cells: Sequence[SweepCell], config: SystemConfig) -> int:
    """Warm the process-wide stream cache for every replay cell.

    Returns the number of distinct streams now cached for the grid.
    Called in the pool parent before fan-out so fork-started workers
    inherit compiled streams instead of each compiling their own;
    spawn-started workers still compile at most once per (trace,
    geometry) per process through the same cache.
    """
    specs = set()
    for cell in cells:
        if not cell.replay:
            continue
        spec = stream_spec_for(cell, config)
        specs.add(spec)
        materialize_boundary_stream(
            spec, cell.config if cell.config is not None else config
        )
    return len(specs)


def precompile_plans(cells: Sequence[SweepCell], config: SystemConfig) -> int:
    """Warm the process-wide metadata-plan cache for every planned cell.

    Same pool-parent discipline as :func:`precompile_streams` (and runs
    the stream compile through the same caches if it has not happened
    yet): fork workers inherit fully-warmed plans, runtime records
    included. Returns the number of distinct plans now cached.
    """
    specs = set()
    for cell in cells:
        if not (cell.replay and cell.plan):
            continue
        spec = metadata_plan_spec(stream_spec_for(cell, config))
        specs.add(spec)
        materialize_metadata_plan(
            spec, cell.config if cell.config is not None else config
        )
    return len(specs)


def _run_cell_impl(cell: SweepCell, config: SystemConfig) -> SimulationResult:
    cell_config = cell.config if cell.config is not None else config
    machine = build_machine(
        cell_config,
        cell.protocol,
        functional=cell.functional,
        seed=cell.seed,
        scatter_span_chunks=cell.scatter_span_chunks,
        integrity_mode=cell.integrity_mode,
    )
    if cell.replay:
        stream_spec = stream_spec_for(cell, config)
        stream = materialize_boundary_stream(stream_spec, cell_config)
        if cell.plan:
            plan = materialize_metadata_plan(
                metadata_plan_spec(stream_spec), cell_config
            )
            return simulate_from_plan(stream, plan, machine)
        return simulate_from_stream(stream, machine)
    trace = materialize_trace(cell.trace)
    return simulate(
        machine, trace, seed=cell.seed, churn_interval=cell.churn_interval
    )


def run_cell(cell: SweepCell, config: SystemConfig) -> SimulationResult:
    """Execute one cell in the current process.

    With telemetry enabled the cell is timed under a span and its
    wall-clock lands in the ``sweep.cell_seconds`` histogram; the
    simulation itself is identical either way.
    """
    if not telemetry.enabled():
        return _run_cell_impl(cell, config)
    start = time.monotonic()
    with telemetry.span(f"cell:{cell.protocol}:{cell.trace.label()}"):
        result = _run_cell_impl(cell, config)
    telemetry.histogram(
        "sweep.cell_seconds", telemetry.CELL_SECONDS_BUCKETS
    ).observe(time.monotonic() - start)
    telemetry.counter("sweep.cells").inc()
    return result


def _pool_entry(payload: Tuple[SweepCell, SystemConfig]) -> SimulationResult:
    """Top-level pool target (must be importable for spawn contexts)."""
    cell, config = payload
    return run_cell(cell, config)


def _pool_entry_telemetry(payload: Tuple[SweepCell, SystemConfig]):
    """Pool target that ships the cell's metrics delta back with it.

    Returns ``(result, (pid, delta_snapshot))``. The parent merges only
    deltas whose pid differs from its own — in the in-process fallback
    (or a one-cell grid) the delta already landed in the parent
    registry, and merging it again would double count.
    """
    cell, config = payload
    registry = telemetry.get_registry()
    before = registry.snapshot()
    result = run_cell(cell, config)
    return result, (os.getpid(), registry.diff(before))


def default_workers() -> int:
    """Usable core count (respects CPU affinity masks in containers)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


class ParallelSweepRunner:
    """Run sweep cells across ``workers`` processes, in cell order.

    ``workers=None`` auto-sizes to the visible core count; ``workers=1``
    runs in-process (no pool, no pickling). ``start_method`` defaults to
    ``fork`` where available — workers then inherit the parent's warm
    trace cache for free — and falls back to the platform default.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        self.workers = default_workers() if workers is None else max(1, workers)
        self.start_method = start_method

    def _context(self):
        methods = multiprocessing.get_all_start_methods()
        if self.start_method is not None:
            return multiprocessing.get_context(self.start_method)
        if "fork" in methods:
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    def map(self, func, payloads: Sequence) -> List:
        """Fan ``func`` over ``payloads``; results arrive in order.

        ``func`` must be a picklable top-level callable and every
        payload a picklable pure description of the work (the sweep
        grid uses ``_pool_entry`` over ``(cell, config)`` pairs; the
        fault campaign ships its own specs through here). The same
        degradation rules as :meth:`run` apply: one worker or one
        payload runs in-process, and a pool that cannot be created or
        dies mid-flight falls back to in-process execution — safe
        because payloads are pure.
        """
        payloads = list(payloads)
        if not payloads:
            return []
        # One worker or one payload: a pool would spawn processes just
        # to pickle the work back and forth — run in-process instead.
        if self.workers <= 1 or len(payloads) == 1:
            return [func(payload) for payload in payloads]
        # Never spawn more processes than there are cells to run.
        processes = min(self.workers, len(payloads))
        try:
            with self._context().Pool(processes=processes) as pool:
                # chunksize=1 keeps the grid balanced: cells differ
                # wildly in cost (strict vs volatile), so batching
                # them would serialize the expensive tail.
                return pool.map(func, payloads, chunksize=1)
        except Exception:
            # Pool creation or transport failed (sandboxed fork,
            # pickling restrictions, interpreter teardown). The cells
            # are pure, so re-running them in-process is always safe —
            # and reproduces any genuine simulation error with a clean
            # traceback.
            return [func(payload) for payload in payloads]

    def run(
        self,
        cells: Sequence[SweepCell],
        config: SystemConfig,
        store=None,
    ) -> List[SimulationResult]:
        """Execute every cell; results arrive in cell order.

        With a :class:`~repro.store.ResultStore` the run is
        *incremental*: the grid is partitioned into store hits (replayed
        from disk, no simulation) and misses (computed exactly as
        without a store, then written back from the parent — workers
        never touch the store). Hits and misses are indistinguishable in
        the returned list: computed misses pass through the store codec
        (:meth:`ResultStore.normalize`), so a warm sweep is bit-identical
        to a cold one.
        """
        cells = list(cells)
        validate_cells(cells)
        if store is None:
            return self._run_all(cells, config)
        from repro.store.fingerprint import cell_fingerprint

        fingerprints = [cell_fingerprint(cell, config) for cell in cells]
        results: List[Optional[SimulationResult]] = [
            store.get(fingerprint) for fingerprint in fingerprints
        ]
        miss_slots = [
            slot for slot, result in enumerate(results) if result is None
        ]
        if miss_slots:
            computed = self._run_all([cells[s] for s in miss_slots], config)
            for slot, result in zip(miss_slots, computed):
                cell = cells[slot]
                store.put(
                    fingerprints[slot],
                    result,
                    meta={
                        "protocol": cell.protocol,
                        "workload": cell.trace.label(),
                    },
                )
                results[slot] = store.normalize(result)
        return results  # type: ignore[return-value]

    def _run_all(
        self, cells: List[SweepCell], config: SystemConfig
    ) -> List[SimulationResult]:
        """The store-oblivious path: compute every cell (pre-validated)."""
        if self.workers > 1 and len(cells) > 1:
            # Compile each distinct data side — and each distinct
            # metadata plan — once in the parent so fork-started
            # workers inherit the warm caches (a spawn pool recompiles
            # per worker — still once per process, amortized over that
            # worker's protocol cells).
            precompile_streams(cells, config)
            precompile_plans(cells, config)
        payloads = [(cell, config) for cell in cells]
        if not telemetry.enabled():
            return self.map(_pool_entry, payloads)
        telemetry.gauge("sweep.workers").set(self.workers)
        tagged = self.map(_pool_entry_telemetry, payloads)
        registry = telemetry.get_registry()
        parent_pid = os.getpid()
        results: List[SimulationResult] = []
        for result, (pid, delta) in tagged:
            results.append(result)
            if pid != parent_pid:
                registry.merge_snapshot(delta)
        return results
