"""Per-core private caches in front of the shared LLC.

The paper's multiprogram configuration gives each core a private L2
(128 kB) beneath a shared L3; the figure harnesses in this reproduction
fold the private levels into the LLC (the protocols only see
LLC-to-memory traffic, and all results are normalized). For studies
where the private/shared split matters — cache-contention questions,
per-core traffic attribution — this module adds that layer explicitly.

:class:`PrivateCacheLayer` holds one write-back, write-allocate cache
per pid. A reference first probes its pid's private cache; private
misses fill from the shared LLC, and private dirty victims write *into*
the shared LLC (marking the line dirty there), so data still reaches
memory only via shared-LLC evictions — the same place the MEE sits.

Use :func:`simulate_multicore`, a drop-in alternative to
:func:`repro.sim.engine.simulate`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cache.cache import build_cache
from repro.config import DataCacheConfig
from repro.mem.address import AddressSpace
from repro.sim.engine import INSTRUCTIONS_PER_PAGE_FAULT
from repro.sim.machine import Machine
from repro.sim.results import SimulationResult
from repro.util.rng import Seed, make_rng
from repro.workloads.trace import Trace


class PrivateCacheLayer:
    """One private write-back cache per core (pid)."""

    def __init__(
        self,
        config: DataCacheConfig,
        address_space: AddressSpace,
    ) -> None:
        self.config = config
        self.address_space = address_space
        self._caches: Dict[int, object] = {}

    def _cache_for(self, pid: int):
        cache = self._caches.get(pid)
        if cache is None:
            cache = build_cache(
                self.config.capacity_bytes,
                self.config.line_bytes,
                self.config.associativity,
                name=f"l2.core{pid}",
                set_of=lambda key: key,
            )
            self._caches[pid] = cache
        return cache

    def access(self, pid: int, paddr: int, is_write: bool):
        """Probe the core's private cache.

        Returns ``(hit, fill_block, dirty_victims)`` where
        ``fill_block`` is the block to request from the shared level on
        a miss and ``dirty_victims`` are blocks to write into it.
        """
        cache = self._cache_for(pid)
        block = self.address_space.block_index(paddr)
        if cache.lookup(block):
            if is_write:
                cache.mark_dirty(block)
            return True, None, ()
        victim = cache.insert(block, dirty=is_write)
        victims = (victim.key,) if victim is not None and victim.dirty else ()
        return False, block, victims

    def hit_rate(self, pid: int) -> float:
        return self._cache_for(pid).hit_rate()

    def cores(self) -> List[int]:
        return sorted(self._caches)


def simulate_multicore(
    machine: Machine,
    trace: Trace,
    private_config: Optional[DataCacheConfig] = None,
    seed: Seed = 0,
    churn_interval: int = 16384,
) -> SimulationResult:
    """Run ``trace`` with per-core private caches beneath the LLC.

    The shared LLC and MEE come from ``machine``; private caches use
    ``private_config`` (default: the paper's 128 kB multiprogram L2
    with a 12-cycle latency).
    """
    if private_config is None:
        private_config = DataCacheConfig(
            capacity_bytes=128 * 1024,
            associativity=8,
            access_latency_cycles=12,
        )
    rng = make_rng(f"{seed}/mc-engine/{trace.name}")
    mee = machine.mee
    llc = machine.llc
    mm = machine.mm
    block_bytes = machine.config.security.block_bytes
    llc_latency = machine.config.llc.access_latency_cycles
    private = PrivateCacheLayer(private_config, mee.address_space)

    cycles = 0
    app_instructions = 0
    for position, access in enumerate(trace):
        paddr = mm.translate(access.pid, access.vaddr)
        cycles += access.think_cycles + private_config.access_latency_cycles
        app_instructions += access.think_cycles + 1
        hit, fill_block, victims = private.access(
            access.pid, paddr, access.is_write
        )
        if hit:
            continue
        cycles += llc_latency
        # Private dirty victims land in the shared LLC as dirty lines.
        for victim_block in victims:
            victim_traffic = llc.access(victim_block * block_bytes, True)
            if victim_traffic.fill_block is not None:
                cycles += mee.read_block(victim_traffic.fill_block * block_bytes)
            for evicted in victim_traffic.writeback_blocks:
                cycles += mee.write_block(evicted * block_bytes)
        # The demand fill itself (reads are clean at the shared level).
        traffic = llc.access(fill_block * block_bytes, False)
        if traffic.fill_block is not None:
            cycles += mee.read_block(traffic.fill_block * block_bytes)
        for evicted in traffic.writeback_blocks:
            cycles += mee.write_block(evicted * block_bytes)
        if churn_interval and (position + 1) % churn_interval == 0:
            mm.churn(rng)

    os_instructions = (
        mm.allocator.instructions()
        + mm.stats.get("page_faults") * INSTRUCTIONS_PER_PAGE_FAULT
    )
    return SimulationResult(
        workload=trace.name,
        protocol=mee.protocol.display_name,
        cycles=cycles,
        accesses=len(trace),
        llc_hit_rate=llc.hit_rate(),
        mdcache_hit_rate=mee.mdcache.hit_rate(),
        instructions=app_instructions + os_instructions,
        os_instructions=os_instructions,
        page_faults=mm.stats.get("page_faults"),
        nvm_stats=mee.nvm.stats.snapshot(),
        protocol_stats=mee.protocol.stats.snapshot(),
        mee_stats=mee.stats.snapshot(),
    )
