"""Trace-driven simulation: machines, the engine loop, and sweeps."""

from repro.sim.engine import simulate
from repro.sim.machine import Machine, build_machine
from repro.sim.multicore import PrivateCacheLayer, simulate_multicore
from repro.sim.parallel import ParallelSweepRunner, SweepCell, run_cell
from repro.sim.results import SimulationResult, normalized_cycles
from repro.sim.runner import run_protocol_sweep, sweep_normalized

__all__ = [
    "Machine",
    "build_machine",
    "simulate",
    "simulate_multicore",
    "PrivateCacheLayer",
    "ParallelSweepRunner",
    "SweepCell",
    "run_cell",
    "SimulationResult",
    "normalized_cycles",
    "run_protocol_sweep",
    "sweep_normalized",
]
