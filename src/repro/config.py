"""System configuration dataclasses (the paper's Table 1).

A :class:`SystemConfig` fully describes a simulated machine: the
protected memory geometry, the security metadata layout, the metadata
cache, the PCM device timing, and the AMNT-specific knobs (subtree
level, history buffer size, movement interval). Configurations are
validated eagerly at construction so misconfiguration fails loudly
before any simulation starts.

Defaults reproduce the paper's configuration:

* 8 GB DDR-based PCM, 305 ns read / 391 ns write latency,
* 64 B blocks, 4 KB pages,
* 64-ary counter blocks (8 B major + 64 x 7 bit minor counters),
* 8-ary Bonsai Merkle Tree integrity nodes,
* 64 kB metadata cache with 2-cycle access latency,
* AMNT subtree level 3, 64-write movement interval, 64-entry history
  buffer (768 bits).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ConfigValidationError
from repro.util.bitops import ilog2, is_power_of_two
from repro.util.units import GB, KB, cycles_from_ns

#: BMT update disciplines (see repro.integrity.bmt). ``eager`` hashes
#: every ancestor on each counter write (hardware-faithful; forced by
#: every fault-injection entry point); ``lazy`` defers digests until a
#: value is observed, with bit-identical materialized results.
INTEGRITY_MODES = ("eager", "lazy")


def validate_integrity_mode(mode: str) -> None:
    """Reject an unknown integrity mode with a field-named error."""
    if mode not in INTEGRITY_MODES:
        raise ConfigValidationError(
            "integrity_mode",
            f"unknown mode {mode!r}; known: {INTEGRITY_MODES}",
        )


#: Persistence-ordering models for the functional NVM image (see
#: repro.mem.nvm). ``writethrough`` applies every store to the
#: persistent image immediately (the pre-WPQ behaviour; the default, so
#: all existing results are bit-identical); ``wpq`` stages stores in a
#: volatile write-pending queue whose drain order is only constrained
#: by persist fences, enabling crash-state exploration
#: (repro.faults.crashstates).
PERSIST_MODELS = ("writethrough", "wpq")


def validate_persist_model(model: str) -> None:
    """Reject an unknown persistence model with a field-named error."""
    if model not in PERSIST_MODELS:
        raise ConfigValidationError(
            "persist_model",
            f"unknown model {model!r}; known: {PERSIST_MODELS}",
        )


@dataclass(frozen=True)
class PCMConfig:
    """Timing and capacity of the DDR-based PCM main memory device."""

    capacity_bytes: int = 8 * GB
    read_latency_ns: float = 305.0
    write_latency_ns: float = 391.0
    clock_ghz: float = 2.0
    channels: int = 6
    #: Sustained per-DIMM mixed-workload bandwidth (Optane 200 series
    #: brief, as cited by the paper's recovery analysis).
    dimm_total_bandwidth_gbps: float = 4.0
    #: Fraction of the mixed bandwidth available to reads under the
    #: 8:1 read:write recovery workload.
    read_bandwidth_fraction: float = 0.5
    #: Share of a write's device latency that lands on the critical
    #: path for *posted* writes (ordinary data writebacks and lazy
    #: metadata writebacks, which drain from the controller's write
    #: queue). Crash-consistency persists are ordered/synchronous and
    #: always pay the full latency — that asymmetry is precisely why
    #: strict persistence "places writes on the critical path of
    #: application execution" (§6.5).
    posted_write_latency_fraction: float = 0.35

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or not is_power_of_two(self.capacity_bytes):
            raise ConfigValidationError(
                "pcm.capacity_bytes",
                f"must be a positive power of two, got {self.capacity_bytes}",
            )
        if self.read_latency_ns <= 0:
            raise ConfigValidationError(
                "pcm.read_latency_ns",
                f"must be positive, got {self.read_latency_ns}",
            )
        if self.write_latency_ns <= 0:
            raise ConfigValidationError(
                "pcm.write_latency_ns",
                f"must be positive, got {self.write_latency_ns}",
            )
        if self.clock_ghz <= 0:
            raise ConfigValidationError(
                "pcm.clock_ghz", f"must be positive, got {self.clock_ghz}"
            )
        if self.channels <= 0:
            raise ConfigValidationError(
                "pcm.channels", f"must be positive, got {self.channels}"
            )

    @property
    def read_latency_cycles(self) -> int:
        return cycles_from_ns(self.read_latency_ns, self.clock_ghz)

    @property
    def write_latency_cycles(self) -> int:
        return cycles_from_ns(self.write_latency_ns, self.clock_ghz)

    @property
    def recovery_read_bandwidth_bytes_per_s(self) -> float:
        """Aggregate read bandwidth available to the recovery procedure."""
        per_dimm = self.dimm_total_bandwidth_gbps * self.read_bandwidth_fraction
        return per_dimm * self.channels * float(GB)


@dataclass(frozen=True)
class SecurityConfig:
    """Geometry of the security metadata (counters, HMACs, BMT)."""

    block_bytes: int = 64
    page_bytes: int = 4096
    #: Data blocks covered by one counter block ("64-ary counters").
    counters_per_block: int = 64
    #: Children per BMT integrity node ("8-ary integrity nodes").
    tree_arity: int = 8
    #: Bytes of a BMT node / counter block / HMAC line in memory.
    node_bytes: int = 64
    hmac_bytes: int = 8
    major_counter_bits: int = 64
    minor_counter_bits: int = 7

    def __post_init__(self) -> None:
        for name in ("block_bytes", "page_bytes", "counters_per_block", "tree_arity"):
            value = getattr(self, name)
            if value <= 0 or not is_power_of_two(value):
                raise ConfigValidationError(
                    f"security.{name}",
                    f"must be a positive power of two, got {value}",
                )
        for name in ("node_bytes", "hmac_bytes"):
            value = getattr(self, name)
            if value <= 0:
                raise ConfigValidationError(
                    f"security.{name}", f"must be positive, got {value}"
                )
        if self.page_bytes % self.block_bytes:
            raise ConfigValidationError(
                "security.page_bytes",
                "must be a multiple of the block size",
            )
        blocks_per_page = self.page_bytes // self.block_bytes
        if blocks_per_page != self.counters_per_block:
            raise ConfigValidationError(
                "security.counters_per_block",
                "counter arity must match blocks-per-page: one counter block "
                f"covers one page ({blocks_per_page} blocks), got "
                f"{self.counters_per_block}",
            )

    @property
    def blocks_per_page(self) -> int:
        return self.page_bytes // self.block_bytes


@dataclass(frozen=True)
class MetadataCacheConfig:
    """On-chip metadata cache (counters + BMT nodes + HMAC lines)."""

    capacity_bytes: int = 64 * KB
    line_bytes: int = 64
    associativity: int = 8
    access_latency_cycles: int = 2

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or not is_power_of_two(self.capacity_bytes):
            raise ConfigValidationError(
                "metadata_cache.capacity_bytes",
                f"must be a positive power of two, got {self.capacity_bytes}",
            )
        if self.line_bytes <= 0 or self.associativity <= 0:
            raise ConfigValidationError(
                "metadata_cache.line_bytes",
                "line size and associativity must be positive",
            )
        if self.capacity_bytes % (self.line_bytes * self.associativity):
            raise ConfigValidationError(
                "metadata_cache.associativity",
                "cache sets do not divide evenly",
            )
        if self.access_latency_cycles < 0:
            raise ConfigValidationError(
                "metadata_cache.access_latency_cycles",
                f"cannot be negative, got {self.access_latency_cycles}",
            )

    @property
    def num_lines(self) -> int:
        return self.capacity_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.associativity


@dataclass(frozen=True)
class DataCacheConfig:
    """A single level of the data-side cache hierarchy."""

    capacity_bytes: int = 1 * 1024 * KB
    line_bytes: int = 64
    associativity: int = 16
    access_latency_cycles: int = 20

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.line_bytes <= 0 or self.associativity <= 0:
            raise ConfigValidationError(
                "llc.capacity_bytes",
                "capacity, line size, and associativity must be positive",
            )
        if self.capacity_bytes % (self.line_bytes * self.associativity):
            raise ConfigValidationError(
                "llc.associativity", "data cache sets do not divide evenly"
            )


@dataclass(frozen=True)
class AMNTConfig:
    """Knobs specific to the AMNT protocol (the paper's Section 4)."""

    #: BMT level holding the fast subtree root. Levels count from the
    #: root = 1, so level L has arity**(L-1) candidate subtree regions.
    subtree_level: int = 3
    #: Data writes between history-buffer driven subtree re-selection.
    movement_interval_writes: int = 64
    #: Entries in the hot-region history buffer.
    history_buffer_entries: int = 64
    #: Concurrent fast subtrees for the ``amnt-multi`` variant — the
    #: "per-core subtrees" alternative the paper considers and rejects
    #: for hardware cost (Section 5). Plain AMNT uses exactly one.
    multi_subtrees: int = 4

    def __post_init__(self) -> None:
        if self.subtree_level < 2:
            raise ConfigValidationError(
                "amnt.subtree_level",
                "must be >= 2 (level 1 is the global root), "
                f"got {self.subtree_level}",
            )
        if self.movement_interval_writes <= 0:
            raise ConfigValidationError(
                "amnt.movement_interval_writes",
                f"must be positive, got {self.movement_interval_writes}",
            )
        if self.history_buffer_entries <= 0 or not is_power_of_two(
            self.history_buffer_entries
        ):
            raise ConfigValidationError(
                "amnt.history_buffer_entries",
                f"must be a positive power of two, got {self.history_buffer_entries}",
            )
        if self.multi_subtrees <= 0:
            raise ConfigValidationError(
                "amnt.multi_subtrees",
                f"must be positive, got {self.multi_subtrees}",
            )

    @property
    def history_buffer_bits(self) -> int:
        """On-chip bits: n entries x (log2 n index + log2 n counter)."""
        index_bits = ilog2(self.history_buffer_entries)
        return self.history_buffer_entries * 2 * index_bits


@dataclass(frozen=True)
class OsirisConfig:
    """Stop-loss interval for the Osiris comparator protocol."""

    stop_loss_interval: int = 4

    def __post_init__(self) -> None:
        if self.stop_loss_interval <= 0:
            raise ConfigValidationError(
                "osiris.stop_loss_interval",
                f"must be positive, got {self.stop_loss_interval}",
            )


@dataclass(frozen=True)
class TriadConfig:
    """Triad-NVM comparator: static level-partitioned persistence."""

    #: Deepest integrity-node levels written through on every data
    #: write (counters and HMACs always persist). Levels above stay
    #: lazy and are rebuilt at recovery.
    persist_levels: int = 2

    def __post_init__(self) -> None:
        if self.persist_levels < 0:
            raise ConfigValidationError(
                "triad.persist_levels",
                f"cannot be negative, got {self.persist_levels}",
            )


@dataclass(frozen=True)
class BMFConfig:
    """Bonsai Merkle Forest comparator configuration."""

    #: Non-volatile on-chip cache for the persistent root set (4 kB in
    #: the original work).
    root_set_bytes: int = 4 * KB
    root_entry_bytes: int = 64
    #: Accesses between prune/merge re-evaluations.
    adjust_interval: int = 512
    #: Bits of frequency counter added per volatile metadata cache line.
    frequency_counter_bits: int = 6

    def __post_init__(self) -> None:
        if self.root_entry_bytes <= 0 or self.root_set_bytes <= 0:
            raise ConfigValidationError(
                "bmf.root_set_bytes",
                "root set and entry sizes must be positive",
            )
        if self.root_set_bytes % self.root_entry_bytes:
            raise ConfigValidationError(
                "bmf.root_set_bytes",
                "root set size must be a multiple of entry size",
            )

    @property
    def root_set_entries(self) -> int:
        return self.root_set_bytes // self.root_entry_bytes


@dataclass(frozen=True)
class AnubisConfig:
    """Anubis comparator configuration (shadow table sizing)."""

    #: The shadow table mirrors the metadata cache: one entry per
    #: metadata cache line (address + MAC + bookkeeping, 37 bytes),
    #: stored in untrusted memory and shadowed on-chip in a dedicated
    #: cache — 37 kB for the 1024-line metadata cache, matching the
    #: paper's Table 3.
    shadow_entry_bytes: int = 37
    #: Fraction of shadow-table traffic absorbed by the on-chip shadow
    #: cache (the paper caches the whole shadow Merkle tree on-chip).
    shadow_cache_on_chip: bool = True


@dataclass(frozen=True)
class SystemConfig:
    """Complete description of a simulated secure-SCM machine."""

    pcm: PCMConfig = field(default_factory=PCMConfig)
    security: SecurityConfig = field(default_factory=SecurityConfig)
    metadata_cache: MetadataCacheConfig = field(default_factory=MetadataCacheConfig)
    llc: DataCacheConfig = field(default_factory=DataCacheConfig)
    amnt: AMNTConfig = field(default_factory=AMNTConfig)
    osiris: OsirisConfig = field(default_factory=OsirisConfig)
    bmf: BMFConfig = field(default_factory=BMFConfig)
    anubis: AnubisConfig = field(default_factory=AnubisConfig)
    triad: TriadConfig = field(default_factory=TriadConfig)
    seed: int = 2024
    #: Persistence-ordering model for the functional NVM image (one of
    #: PERSIST_MODELS). Timing is identical either way; ``wpq`` only
    #: changes which crash states fault injection can reach.
    persist_model: str = "writethrough"

    def __post_init__(self) -> None:
        validate_persist_model(self.persist_model)
        if self.pcm.capacity_bytes < self.security.page_bytes:
            raise ConfigValidationError(
                "pcm.capacity_bytes",
                f"memory ({self.pcm.capacity_bytes} B) smaller than one page "
                f"({self.security.page_bytes} B)",
            )
        # The subtree level must exist in the tree this geometry builds.
        from repro.integrity.geometry import TreeGeometry  # local import: avoid cycle

        geometry = TreeGeometry.from_config(self)
        if self.amnt.subtree_level > geometry.num_levels:
            raise ConfigValidationError(
                "amnt.subtree_level",
                f"level {self.amnt.subtree_level} exceeds tree depth "
                f"{geometry.num_levels}",
            )

    def with_amnt(self, **changes: object) -> "SystemConfig":
        """Copy of this config with AMNT knobs replaced."""
        return replace(self, amnt=replace(self.amnt, **changes))

    def with_pcm(self, **changes: object) -> "SystemConfig":
        """Copy of this config with PCM parameters replaced."""
        return replace(self, pcm=replace(self.pcm, **changes))


def default_config(capacity_bytes: Optional[int] = None, **amnt_changes: object) -> SystemConfig:
    """The paper's Table 1 machine, optionally resized or re-leveled."""
    config = SystemConfig()
    if capacity_bytes is not None:
        config = config.with_pcm(capacity_bytes=capacity_bytes)
    if amnt_changes:
        config = config.with_amnt(**amnt_changes)
    return config
