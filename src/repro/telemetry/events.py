"""Structured JSONL event sink for run-lifecycle observability.

The supervisor, fault campaigns, workload caches, and perf bench publish
events here: cell start/finish/retry/timeout/requeue, pool respawns,
crash-injection verdicts, checkpoint flushes, stream-cache
hit/miss/eviction. Events are buffered in memory and flushed as an
atomic full rewrite through ``util/atomicio.py`` — the same journal
discipline ``sim/supervisor.py`` uses — so a crash mid-flush can never
leave a half-written file, and readers tolerate torn lines anyway.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.util.atomicio import atomic_write_text


class EventSink:
    """Buffered JSONL writer with atomic flushes.

    Each event is one JSON object per line with at least ``seq`` (dense
    per-sink ordinal), ``t`` (seconds since the sink was opened,
    monotonic clock), and ``kind``; remaining keys are event payload.
    """

    def __init__(
        self, path: Union[str, Path], flush_every: int = 64
    ) -> None:
        self.path = Path(path)
        self.flush_every = max(1, int(flush_every))
        self._events: List[Dict] = []
        self._dirty = 0
        self._epoch = time.monotonic()

    def emit(self, kind: str, **fields: object) -> None:
        event = {
            "seq": len(self._events),
            "t": round(time.monotonic() - self._epoch, 6),
            "kind": kind,
        }
        event.update(fields)
        self._events.append(event)
        self._dirty += 1
        if self._dirty >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        if not self._dirty:
            return
        lines = "".join(
            json.dumps(event, sort_keys=True) + "\n" for event in self._events
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(self.path, lines)
        self._dirty = 0

    def close(self) -> None:
        # Force out a file even for an empty event stream so consumers
        # can distinguish "no events" from "sink never installed".
        if not self.path.exists():
            self._dirty = max(self._dirty, 1)
        self.flush()

    def __len__(self) -> int:
        return len(self._events)


class _NullSink:
    """No-op sink installed by default."""

    __slots__ = ()

    def emit(self, kind: str, **fields: object) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


NULL_SINK = _NullSink()

_SINK: Union[EventSink, _NullSink] = NULL_SINK


def get_sink() -> Union[EventSink, _NullSink]:
    return _SINK


def set_sink(sink: Optional[EventSink]) -> None:
    global _SINK
    _SINK = sink if sink is not None else NULL_SINK


def install_sink(
    path: Union[str, Path], flush_every: int = 64
) -> EventSink:
    """Create an :class:`EventSink` at ``path`` and make it global."""
    sink = EventSink(path, flush_every=flush_every)
    set_sink(sink)
    return sink


def emit_event(kind: str, **fields: object) -> None:
    """Publish an event through the global sink (no-op by default)."""
    _SINK.emit(kind, **fields)


def load_events(path: Union[str, Path]) -> List[Dict]:
    """Read a JSONL event log, tolerating torn or corrupt lines.

    A missing file yields ``[]``; undecodable lines (e.g. a torn tail
    from a crashed non-atomic writer) are skipped rather than fatal.
    """
    p = Path(path)
    if not p.exists():
        return []
    events: List[Dict] = []
    for line in p.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            decoded = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(decoded, dict):
            events.append(decoded)
    return events
