"""Lightweight span tracing: sweep -> cell -> phase.

Spans measure wall-clock phases with the monotonic clock and record
parent/child structure via a per-tracer stack. Finished spans land in a
bounded ring (``collections.deque`` with ``maxlen``), so long campaigns
cannot grow memory without bound. Span timing is observational only —
it never feeds back into simulation state, preserving the bit-identity
contract between telemetry-on and telemetry-off runs.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from typing import Deque, Dict, Iterator, List, Optional

DEFAULT_CAPACITY = 4096


class SpanTracer:
    """Records finished spans into a bounded in-memory ring."""

    __slots__ = ("capacity", "_ring", "_stack", "_next_id", "_epoch")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("span ring capacity must be >= 1")
        self.capacity = capacity
        self._ring: Deque[Dict] = deque(maxlen=capacity)
        self._stack: List[int] = []
        self._next_id = 1
        self._epoch = time.monotonic()

    @contextmanager
    def span(self, name: str) -> Iterator[int]:
        span_id = self._next_id
        self._next_id += 1
        parent: Optional[int] = self._stack[-1] if self._stack else None
        self._stack.append(span_id)
        start = time.monotonic()
        try:
            yield span_id
        finally:
            duration = time.monotonic() - start
            self._stack.pop()
            self._ring.append(
                {
                    "id": span_id,
                    "parent": parent,
                    "name": name,
                    "start_s": start - self._epoch,
                    "duration_s": duration,
                }
            )

    def finished(self) -> List[Dict]:
        """Finished spans, oldest first (bounded by ``capacity``)."""
        return list(self._ring)

    def reset(self) -> None:
        self._ring.clear()
        self._stack.clear()
        self._next_id = 1
        self._epoch = time.monotonic()


@contextmanager
def _null_span() -> Iterator[None]:
    yield None


_TRACER = SpanTracer()


def get_tracer() -> SpanTracer:
    return _TRACER


def span(name: str):
    """Context manager timing ``name`` under the global tracer.

    Returns a no-op context when telemetry is disabled so call sites
    stay branch-free: ``with span("cell"): ...``.
    """
    from repro.telemetry import metrics

    if not metrics.enabled():
        return _null_span()
    return _TRACER.span(name)


def reset() -> None:
    _TRACER.reset()
