"""Unified telemetry: metrics registry, span tracing, event sink.

The package keeps simulation hot loops untouched: instead of per-access
instrumentation, :func:`record_simulation` folds a finished run's
component stat registries into the process-global metrics registry once
per simulation. Combined with pre-resolved no-op handles (see
``metrics.py``) this makes the telemetry-off and telemetry-on paths
execute the same simulation code, preserving bit-identical
``SimulationResult``s either way.
"""

from __future__ import annotations

from repro.telemetry import events, metrics, spans
from repro.telemetry.events import (
    EventSink,
    NULL_SINK,
    emit_event,
    get_sink,
    install_sink,
    load_events,
    set_sink,
)
from repro.telemetry.export import (
    METRICS_SCHEMA,
    build_metrics_document,
    render_prometheus,
    validate_metrics_document,
    write_metrics_artifact,
)
from repro.telemetry.metrics import (
    MetricsRegistry,
    NULL_METRIC,
    counter,
    enabled,
    gauge,
    get_registry,
    histogram,
    set_enabled,
)
from repro.telemetry.spans import SpanTracer, get_tracer, span

#: Cell wall-clock histogram bounds (seconds) — sized for the reference
#: grids, where a cell runs tens of milliseconds to a few seconds.
CELL_SECONDS_BUCKETS = (
    0.01,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)


def reset() -> None:
    """Clear metrics and spans (the event sink is left installed)."""
    metrics.reset()
    spans.reset()


def record_simulation(result, mee, llc_hits: int, llc_misses: int) -> None:
    """Fold one finished simulation's aggregates into global metrics.

    Called once per run from ``sim/engine.py`` — never inside the access
    loop — so enabling telemetry adds a fixed per-run cost independent
    of trace length.
    """
    if not metrics.enabled():
        return
    reg = metrics.get_registry()
    counters = reg.counter
    counters("sim.runs").value += 1
    counters("sim.accesses").value += result.accesses
    counters("sim.cycles").value += result.cycles
    counters("sim.page_faults").value += result.page_faults
    counters("llc.hits").value += llc_hits
    counters("llc.misses").value += llc_misses
    mee_stats = mee.stats
    counters("mee.data_reads").value += mee_stats.get("data_reads")
    counters("mee.data_writes").value += mee_stats.get("data_writes")
    counters("mee.metadata_writebacks").value += mee_stats.get(
        "metadata_writebacks"
    )
    counters("mee.walk_stopped_at_register").value += mee_stats.get(
        "walk_stopped_at_register"
    )
    counters("mee.walk_stopped_at_cache").value += mee_stats.get(
        "walk_stopped_at_cache"
    )
    md_stats = mee.mdcache.stats
    counters("mdcache.hits").value += md_stats.get("hits")
    counters("mdcache.misses").value += md_stats.get("misses")
    counters("mdcache.evictions").value += md_stats.get("evictions")
    nvm_persists = result.nvm_stats.get("nvm.persists.total", 0)
    counters("nvm.persists.total").value += nvm_persists
    counters("nvm.writes.total").value += result.nvm_stats.get(
        "nvm.writes.total", 0
    )
    counters(f"sim.persists.{result.protocol}").value += nvm_persists
    counters(f"sim.runs.{result.protocol}").value += 1
    tree = getattr(mee, "tree", None)
    if tree is not None:
        counters("bmt.materializations").value += getattr(
            tree, "materializations", 0
        )


def record_fault_outcomes(outcomes) -> None:
    """Fold fault-campaign verdict counts into global metrics.

    Called parent-side on the assembled outcome list so counts are
    complete regardless of which worker (or the in-process fallback)
    ran each cell, and are never double counted.
    """
    if not metrics.enabled():
        return
    reg = metrics.get_registry()
    for outcome in outcomes:
        reg.counter("faults.cells").value += 1
        reg.counter(f"faults.verdict.{outcome.verdict}").value += 1
        if outcome.crash_phase:
            reg.counter(f"faults.crash_phase.{outcome.crash_phase}").value += 1
        # Crash-state coverage (WPQ persist model); the getattr guards
        # keep older journaled outcome shapes replayable.
        reg.counter("faults.crash_states.explored").value += getattr(
            outcome, "crash_states_explored", 0
        )
        reg.counter("faults.crash_states.sampled").value += getattr(
            outcome, "crash_states_sampled", 0
        )
        reg.counter("faults.crash_states.skipped").value += getattr(
            outcome, "crash_states_skipped", 0
        )


__all__ = [
    "CELL_SECONDS_BUCKETS",
    "EventSink",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "NULL_METRIC",
    "NULL_SINK",
    "SpanTracer",
    "build_metrics_document",
    "counter",
    "emit_event",
    "enabled",
    "events",
    "gauge",
    "get_registry",
    "get_sink",
    "get_tracer",
    "histogram",
    "install_sink",
    "load_events",
    "metrics",
    "record_fault_outcomes",
    "record_simulation",
    "render_prometheus",
    "reset",
    "set_enabled",
    "set_sink",
    "span",
    "spans",
    "validate_metrics_document",
    "write_metrics_artifact",
]
