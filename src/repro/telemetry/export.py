"""Export telemetry as a ``repro.metrics/v1`` document or Prometheus text.

The JSON document mirrors the self-describing artifact style of
``bench/profiling.py`` (``repro.profile/v2``): a ``schema`` tag, a
``run`` context block, and the payload. ``validate_metrics_document``
follows the ``validate_profile_document`` convention — dependency-free,
returning a list of human-readable problems (empty == valid) — so CI
smoke jobs can gate on it without extra packages.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.telemetry.metrics import MetricsRegistry
from repro.util.atomicio import atomic_write_json

METRICS_SCHEMA = "repro.metrics/v1"

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_PREFIX = "repro_"


def build_metrics_document(
    registry: MetricsRegistry,
    run: Optional[Mapping] = None,
    spans: Optional[Sequence[Mapping]] = None,
) -> Dict:
    """Assemble the ``repro.metrics/v1`` JSON document."""
    return {
        "schema": METRICS_SCHEMA,
        "run": dict(run) if run else {},
        "metrics": registry.snapshot(),
        "spans": [dict(s) for s in spans] if spans else [],
    }


def validate_metrics_document(doc: object) -> List[str]:
    """Validate a metrics document; returns a list of problems."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("schema") != METRICS_SCHEMA:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected {METRICS_SCHEMA!r}"
        )
    if not isinstance(doc.get("run"), dict):
        problems.append("run section missing or not an object")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        problems.append("metrics section missing or not an object")
        metrics = {}
    counters = metrics.get("counters", {})
    if not isinstance(counters, dict):
        problems.append("metrics.counters is not an object")
    else:
        for name, value in counters.items():
            if not isinstance(value, int):
                problems.append(f"counter {name!r} value is not an integer")
    gauges = metrics.get("gauges", {})
    if not isinstance(gauges, dict):
        problems.append("metrics.gauges is not an object")
    else:
        for name, value in gauges.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"gauge {name!r} value is not numeric")
    histograms = metrics.get("histograms", {})
    if not isinstance(histograms, dict):
        problems.append("metrics.histograms is not an object")
    else:
        for name, payload in histograms.items():
            if not isinstance(payload, dict):
                problems.append(f"histogram {name!r} is not an object")
                continue
            buckets = payload.get("buckets")
            counts = payload.get("counts")
            if not isinstance(buckets, list) or not buckets:
                problems.append(f"histogram {name!r} has no buckets")
                continue
            if not isinstance(counts, list) or len(counts) != len(buckets) + 1:
                problems.append(
                    f"histogram {name!r} counts must have "
                    f"len(buckets)+1 entries"
                )
            if sorted(buckets) != buckets:
                problems.append(f"histogram {name!r} buckets not sorted")
            if isinstance(counts, list):
                total = payload.get("count")
                if isinstance(total, int) and sum(
                    c for c in counts if isinstance(c, int)
                ) != total:
                    problems.append(
                        f"histogram {name!r} count does not match "
                        f"sum of bucket counts"
                    )
    spans = doc.get("spans")
    if not isinstance(spans, list):
        problems.append("spans section missing or not a list")
    else:
        for i, span in enumerate(spans):
            if not isinstance(span, dict):
                problems.append(f"span[{i}] is not an object")
                continue
            for key in ("id", "name", "start_s", "duration_s"):
                if key not in span:
                    problems.append(f"span[{i}] missing {key!r}")
    return problems


def _prom_name(name: str) -> str:
    return _PROM_PREFIX + _NAME_SANITIZER.sub("_", name)


def _prom_number(value: float) -> str:
    if isinstance(value, int):
        return str(value)
    if value == int(value):
        return str(int(value))
    return repr(value)


def render_prometheus(snapshot: Mapping[str, Mapping]) -> str:
    """Render a registry snapshot in Prometheus text exposition format."""
    lines: List[str] = []
    for name in sorted(snapshot.get("counters", {})):
        value = snapshot["counters"][name]
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {value}")
    for name in sorted(snapshot.get("gauges", {})):
        value = snapshot["gauges"][name]
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_number(value)}")
    for name in sorted(snapshot.get("histograms", {})):
        payload = snapshot["histograms"][name]
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for bound, count in zip(payload["buckets"], payload["counts"]):
            cumulative += count
            lines.append(
                f'{prom}_bucket{{le="{_prom_number(bound)}"}} {cumulative}'
            )
        cumulative += payload["counts"][-1]
        lines.append(f'{prom}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{prom}_sum {_prom_number(payload['sum'])}")
        lines.append(f"{prom}_count {payload['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_metrics_artifact(
    path: Union[str, Path],
    registry: MetricsRegistry,
    run: Optional[Mapping] = None,
    spans: Optional[Sequence[Mapping]] = None,
) -> Dict:
    """Build, validate, and atomically write the metrics document."""
    doc = build_metrics_document(registry, run=run, spans=spans)
    problems = validate_metrics_document(doc)
    if problems:
        raise ValueError(
            "refusing to write invalid metrics document: "
            + "; ".join(problems)
        )
    atomic_write_json(Path(path), doc)
    return doc
