"""Process-wide metrics registry: counters, gauges, histograms.

Design goals, in order:

1. **Near-zero cost when disabled.** ``counter(name)`` returns a shared
   no-op singleton when telemetry is off, so instrumented code holds a
   pre-resolved handle and pays exactly one attribute call — no branch,
   no dict lookup — in the disabled case. Hot loops themselves are never
   instrumented per-access; the engine records aggregate deltas once per
   simulation run (see ``repro.telemetry.record_simulation``).
2. **Deterministic.** Metric objects never touch clocks or RNG; enabling
   or disabling telemetry cannot perturb simulation results.
3. **Mergeable.** ``snapshot()`` / ``diff()`` / ``merge_snapshot()`` let
   per-worker registries in a multiprocessing pool ship deltas back to
   the parent for aggregation without double counting.

The module-level accessors (:func:`counter`, :func:`gauge`,
:func:`histogram`) operate on a single process-global registry, mirroring
how ``util/stats.py`` scopes ``StatRegistry`` per component.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Mapping, Optional, Sequence, Tuple


class Counter:
    """Monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    # Alias so call sites can read naturally for multi-unit bumps.
    add = inc


class Gauge:
    """Last-write-wins scalar metric (e.g. cache sizes, worker counts)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with Prometheus ``le`` (<=) semantics.

    ``buckets`` are the finite upper bounds, sorted ascending; an
    implicit +Inf bucket catches overflow, so ``counts`` has
    ``len(buckets) + 1`` entries.
    """

    __slots__ = ("name", "buckets", "counts", "sum", "count")

    def __init__(self, name: str, buckets: Sequence[float]) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one finite bucket")
        self.name = name
        self.buckets: Tuple[float, ...] = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1


class NullMetric:
    """Shared no-op standing in for any metric kind when disabled."""

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:  # pragma: no cover - trivial
        pass

    def add(self, amount: float = 1) -> None:  # pragma: no cover - trivial
        pass

    def dec(self, amount: float = 1) -> None:  # pragma: no cover - trivial
        pass

    def set(self, value: float) -> None:  # pragma: no cover - trivial
        pass

    def observe(self, value: float) -> None:  # pragma: no cover - trivial
        pass


NULL_METRIC = NullMetric()


class MetricsRegistry:
    """Name-indexed store of counters, gauges, and histograms."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- lookup-or-create ---------------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str, buckets: Sequence[float]) -> Histogram:
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = Histogram(name, buckets)
        return metric

    # -- aggregation ---------------------------------------------------

    def snapshot(self) -> Dict[str, Dict]:
        """Deep-copy the registry state into plain JSON-able dicts."""
        return {
            "counters": {n: c.value for n, c in self.counters.items()},
            "gauges": {n: g.value for n, g in self.gauges.items()},
            "histograms": {
                n: {
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                }
                for n, h in self.histograms.items()
            },
        }

    def diff(self, before: Mapping[str, Mapping]) -> Dict[str, Dict]:
        """Delta of the current state relative to an earlier snapshot.

        Counters and histogram counts subtract; gauges are
        last-write-wins so the current value is reported as-is.
        """
        now = self.snapshot()
        prev_counters = before.get("counters", {})
        now["counters"] = {
            name: value - prev_counters.get(name, 0)
            for name, value in now["counters"].items()
            if value - prev_counters.get(name, 0)
        }
        prev_hists = before.get("histograms", {})
        hist_delta: Dict[str, Dict] = {}
        for name, hist in now["histograms"].items():
            prev = prev_hists.get(name)
            if prev is not None and list(prev["buckets"]) == hist["buckets"]:
                counts = [a - b for a, b in zip(hist["counts"], prev["counts"])]
                total = hist["count"] - prev["count"]
                if total == 0:
                    continue
                hist_delta[name] = {
                    "buckets": hist["buckets"],
                    "counts": counts,
                    "sum": hist["sum"] - prev["sum"],
                    "count": total,
                }
            else:
                hist_delta[name] = hist
        now["histograms"] = hist_delta
        return now

    def merge_snapshot(self, snap: Mapping[str, Mapping]) -> None:
        """Fold a snapshot/delta from another registry into this one."""
        for name, value in snap.get("counters", {}).items():
            self.counter(name).value += value
        for name, value in snap.get("gauges", {}).items():
            self.gauge(name).value = value
        for name, payload in snap.get("histograms", {}).items():
            hist = self.histogram(name, payload["buckets"])
            if list(hist.buckets) != list(payload["buckets"]):
                raise ValueError(
                    f"histogram {name!r} bucket mismatch during merge"
                )
            for i, n in enumerate(payload["counts"]):
                hist.counts[i] += n
            hist.sum += payload["sum"]
            hist.count += payload["count"]

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()


# ----------------------------------------------------------------------
# Process-global registry and enable flag
# ----------------------------------------------------------------------

_ENABLED = True
_REGISTRY = MetricsRegistry()


def enabled() -> bool:
    return _ENABLED


def set_enabled(value: bool) -> None:
    global _ENABLED
    _ENABLED = bool(value)


def get_registry() -> MetricsRegistry:
    return _REGISTRY


def reset() -> None:
    """Clear all metrics in the process-global registry."""
    _REGISTRY.reset()


def counter(name: str):
    """Pre-resolve a counter handle (no-op singleton when disabled)."""
    if not _ENABLED:
        return NULL_METRIC
    return _REGISTRY.counter(name)


def gauge(name: str):
    if not _ENABLED:
        return NULL_METRIC
    return _REGISTRY.gauge(name)


def histogram(name: str, buckets: Sequence[float]):
    if not _ENABLED:
        return NULL_METRIC
    return _REGISTRY.histogram(name, buckets)
