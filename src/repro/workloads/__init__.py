"""Workload substrate: traces, synthetic generators, benchmark profiles.

The paper evaluates on PARSEC 3.0 and SPEC CPU 2017 under gem5. Neither
the suites nor the simulator are available here, so workloads are
*synthetic traces* generated from per-benchmark profiles
(:mod:`repro.workloads.parsec`, :mod:`repro.workloads.spec`) that encode
the characteristics the protocols are actually sensitive to: footprint,
write fraction, hot-region concentration, spatial locality, and compute
intensity. DESIGN.md documents this substitution.
"""

from repro.workloads.multiprogram import interleave, multiprogram_trace
from repro.workloads.multithread import multithread_trace
from repro.workloads.storage import StorageProfile, generate_storage_trace
from repro.workloads.ycsb import YCSBWorkload, generate_ycsb_trace
from repro.workloads.synthetic import WorkloadProfile, generate_trace
from repro.workloads.trace import MemoryAccess, Trace

__all__ = [
    "MemoryAccess",
    "Trace",
    "WorkloadProfile",
    "generate_trace",
    "interleave",
    "multiprogram_trace",
    "multithread_trace",
    "StorageProfile",
    "generate_storage_trace",
    "YCSBWorkload",
    "generate_ycsb_trace",
]
