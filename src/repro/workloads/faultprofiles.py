"""Workload profiles tuned for fault-injection campaigns.

Campaign traces are short (thousands of accesses, not the benchmark
suite's hundreds of thousands), so these profiles compress the
behaviours the crash windows depend on into that budget:

* **hotshift** — write-heavy with a migrating hot window: the write
  concentration moves between subtree regions often enough that AMNT's
  history buffer keeps re-electing a new subtree, so hot-region
  relocations (with real dirty-node flushes) happen many times per
  trace — the ``amnt_movement`` crash window.
* **steady** — a stable hot set with moderate writes; movements are
  rare but eviction pressure is steady. The control workload.

Footprints span several level-3 subtree regions of the campaign's
small (64 MB) machine so relocation actually changes region.
"""

from __future__ import annotations

from typing import Dict, List

from repro.util.units import MB
from repro.workloads.synthetic import WorkloadProfile

FAULT_PROFILES: Dict[str, WorkloadProfile] = {
    profile.name: profile
    for profile in [
        WorkloadProfile(
            name="hotshift",
            footprint_bytes=8 * MB,
            num_accesses=5_000,
            write_fraction=0.55,
            hot_fraction=0.05,
            hot_access_fraction=0.15,
            sequential_fraction=0.85,
            stream_window_fraction=0.10,
            window_relocate_probability=0.35,
            think_cycles=2,
        ),
        WorkloadProfile(
            name="steady",
            footprint_bytes=2 * MB,
            num_accesses=5_000,
            write_fraction=0.45,
            hot_fraction=0.10,
            hot_access_fraction=0.80,
            sequential_fraction=0.60,
            stream_window_fraction=0.30,
            think_cycles=2,
        ),
    ]
}


def fault_profile(name: str) -> WorkloadProfile:
    try:
        return FAULT_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown fault workload {name!r}; known: {sorted(FAULT_PROFILES)}"
        ) from None


def fault_profile_names() -> List[str]:
    return sorted(FAULT_PROFILES)
