"""Trace specs: picklable trace recipes plus a materialization cache.

The parallel sweep runner ships work to ``multiprocessing`` workers.
Pickling a materialized :class:`~repro.workloads.trace.Trace` would move
hundreds of thousands of access records per cell across the process
boundary, so instead each sweep cell carries a :class:`TraceSpec` — the
*(suite, names, accesses, seed)* recipe a worker replays locally.
Generation is a pure function of the recipe (see
:mod:`repro.workloads.synthetic`), so a spec materialized anywhere
yields a bit-identical trace.

Materialization is memoized in a process-wide cache: a sweep that runs
seven protocols over one workload generates the trace once, not seven
times, whether the cells run in the parent or in a pool worker.
"""

from __future__ import annotations

import os

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Tuple, Union

from repro import telemetry
from repro.util.rng import Seed
from repro.workloads.trace import ColumnarAccesses, Trace

#: Known profile suites, resolved lazily to avoid import cycles.
_SUITES: Dict[str, Callable[[str], object]] = {}


def _suite_lookup(suite: str):
    if not _SUITES:
        from repro.workloads.faultprofiles import fault_profile
        from repro.workloads.parsec import parsec_profile
        from repro.workloads.spec import spec_profile

        _SUITES["parsec"] = parsec_profile
        _SUITES["spec"] = spec_profile
        _SUITES["faults"] = fault_profile
    try:
        return _SUITES[suite]
    except KeyError:
        raise KeyError(
            f"unknown workload suite {suite!r}; known: {sorted(_SUITES)}"
        ) from None


@dataclass(frozen=True, slots=True)
class TraceSpec:
    """A picklable recipe for one trace.

    ``kind`` is ``"profile"`` (one benchmark), ``"multiprogram"``
    (interleaved co-runners), or ``"literal"`` (the access records
    themselves, for traces with no recipe — heavyweight to pickle, so
    the runner only falls back to it when handed a raw trace).
    """

    kind: str
    suite: str = ""
    names: Tuple[str, ...] = ()
    accesses: int = 0
    seed: Union[int, str] = 0
    #: ``literal`` payload: (name, ((vaddr, w, pid, think, flush), ...)).
    payload: Tuple = ()

    def label(self) -> str:
        if self.kind == "literal":
            return self.payload[0]
        return "+".join(self.names)


#: Spec kinds a runner knows how to materialize.
SPEC_KINDS = ("profile", "multiprogram", "literal")


def validate_trace_spec(spec: TraceSpec) -> None:
    """Fail fast on a malformed spec, before any machine is built.

    Raises :class:`~repro.errors.ConfigValidationError` naming the
    offending field; resolving the suite and every profile name up
    front means a typo'd workload aborts at planning time instead of
    deep inside ``simulate()`` on some pool worker.
    """
    from repro.errors import ConfigValidationError

    if spec.kind not in SPEC_KINDS:
        raise ConfigValidationError(
            "trace.kind", f"unknown kind {spec.kind!r}; known: {SPEC_KINDS}"
        )
    if spec.kind == "literal":
        if len(spec.payload) != 2:
            raise ConfigValidationError(
                "trace.payload", "literal specs need a (name, records) payload"
            )
        return
    if not spec.names:
        raise ConfigValidationError(
            "trace.names", "at least one benchmark name is required"
        )
    if spec.accesses <= 0:
        raise ConfigValidationError(
            "trace.accesses", f"must be positive, got {spec.accesses}"
        )
    try:
        lookup = _suite_lookup(spec.suite)
    except KeyError as exc:
        raise ConfigValidationError("trace.suite", str(exc.args[0])) from None
    for name in spec.names:
        try:
            lookup(name)
        except (KeyError, ValueError) as exc:
            raise ConfigValidationError(
                "trace.names",
                f"unknown {spec.suite!r} benchmark {name!r} ({exc})",
            ) from None


def profile_spec(
    suite: str, name: str, accesses: int, seed: Seed = 0
) -> TraceSpec:
    """Spec for one benchmark of ``suite`` scaled to ``accesses``."""
    return TraceSpec(
        kind="profile", suite=suite, names=(name,), accesses=accesses, seed=seed
    )


def multiprogram_spec(
    suite: str, names: Tuple[str, ...], accesses_each: int, seed: Seed = 0
) -> TraceSpec:
    """Spec for co-running benchmarks interleaved in virtual time."""
    return TraceSpec(
        kind="multiprogram",
        suite=suite,
        names=tuple(names),
        accesses=accesses_each,
        seed=seed,
    )


def literal_spec(trace: Trace) -> TraceSpec:
    """Wrap an already-materialized trace (no recipe available)."""
    cols = trace.accesses
    payload = (
        trace.name,
        tuple(
            (vaddr, bool(flags & 1), pid, think, bool(flags & 2))
            for vaddr, pid, think, flags in zip(
                cols.vaddr, cols.pid, cols.think, cols.flags
            )
        ),
    )
    return TraceSpec(kind="literal", payload=payload)


def _materialize(spec: TraceSpec) -> Trace:
    if spec.kind == "profile":
        from repro.workloads.synthetic import generate_trace

        profile = _suite_lookup(spec.suite)(spec.names[0])
        return generate_trace(
            profile.scaled(accesses=spec.accesses), seed=spec.seed
        )
    if spec.kind == "multiprogram":
        from repro.workloads.multiprogram import multiprogram_trace

        lookup = _suite_lookup(spec.suite)
        profiles = [lookup(name) for name in spec.names]
        return multiprogram_trace(
            profiles, seed=spec.seed, accesses_each=spec.accesses
        )
    if spec.kind == "literal":
        name, records = spec.payload
        cols = ColumnarAccesses()
        for vaddr, is_write, pid, think, flush in records:
            cols.vaddr.append(vaddr)
            cols.pid.append(pid)
            cols.think.append(think)
            cols.flags.append((1 if is_write else 0) | (2 if flush else 0))
        return Trace(name, cols)
    raise ValueError(f"unknown trace spec kind {spec.kind!r}")


class _LRUCache:
    """Bounded LRU memo with telemetry counters and eviction events.

    Materialization is a pure function of the key, so eviction only
    costs recomputation — it can never change a result. The default
    limits are generous (a reference sweep touches a handful of
    entries); the bound exists so long fault campaigns sweeping many
    specs cannot grow the parent process without bound.
    """

    __slots__ = ("name", "limit", "_data")

    def __init__(self, name: str, limit: int) -> None:
        self.name = name
        self.limit = limit
        self._data: "OrderedDict" = OrderedDict()

    def get(self, key, label: str):
        value = self._data.get(key)
        if value is None:
            telemetry.counter(f"{self.name}.misses").inc()
            telemetry.emit_event(f"{self.name}_miss", key=label)
            return None
        self._data.move_to_end(key)
        telemetry.counter(f"{self.name}.hits").inc()
        telemetry.emit_event(f"{self.name}_hit", key=label)
        return value

    def put(self, key, value, label: str) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.limit:
            evicted_key, _ = self._data.popitem(last=False)
            telemetry.counter(f"{self.name}.evictions").inc()
            telemetry.emit_event(
                f"{self.name}_eviction", size=len(self._data)
            )
        telemetry.gauge(f"{self.name}.size").set(len(self._data))

    def set_limit(self, limit: int) -> None:
        if limit < 1:
            raise ValueError(f"{self.name} limit must be >= 1, got {limit}")
        self.limit = limit
        while len(self._data) > limit:
            self._data.popitem(last=False)
            telemetry.counter(f"{self.name}.evictions").inc()
        telemetry.gauge(f"{self.name}.size").set(len(self._data))

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)


#: Default LRU bounds — generous relative to the reference grids (a
#: full sweep touches ~6 traces and ~2 streams) but finite, so
#: long-running campaigns cannot leak materialized traces.
DEFAULT_TRACE_CACHE_LIMIT = 64
DEFAULT_STREAM_CACHE_LIMIT = 32
DEFAULT_PLAN_CACHE_LIMIT = 32

#: Process-wide materialization cache. Workers forked from a warm
#: parent inherit it; spawned workers fill their own on first use.
_TRACE_CACHE = _LRUCache("trace_cache", DEFAULT_TRACE_CACHE_LIMIT)


def materialize_trace(spec: TraceSpec, cache: bool = True) -> Trace:
    """Build (or fetch) the trace a spec describes.

    With ``cache=True`` repeated materializations of the same spec in
    one process return the same :class:`Trace` object. Traces are
    treated as immutable once materialized — do not append to a cached
    trace.
    """
    if not cache:
        return _materialize(spec)
    trace = _TRACE_CACHE.get(spec, spec.label())
    if trace is None:
        trace = _materialize(spec)
        _TRACE_CACHE.put(spec, trace, spec.label())
    return trace


def trace_cache_clear() -> None:
    """Drop every cached trace (tests, long-lived servers)."""
    _TRACE_CACHE.clear()


def trace_cache_size() -> int:
    return len(_TRACE_CACHE)


def set_trace_cache_limit(limit: int) -> None:
    """Cap the trace cache at ``limit`` entries (evicts LRU overflow)."""
    _TRACE_CACHE.set_limit(limit)


def trace_cache_limit() -> int:
    return _TRACE_CACHE.limit


# ----------------------------------------------------------------------
# boundary-stream cache (compile the data side once, replay per protocol)
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class BoundaryStreamSpec:
    """Cache identity of one compiled boundary stream.

    Everything that shapes the data-side simulation — and therefore the
    compiled events — is a field: the trace recipe, the engine seed and
    churn schedule, allocator aging, the OS variant, and the data-side
    geometry (LLC shape, block/page sizes, device capacity, and the
    tree shape the modified OS's region mapping derives from). Two
    sweep cells with equal specs replay the same stream object; any
    geometry change produces a different key and forces a recompile.

    Like :class:`TraceSpec`, the spec is frozen, hashable, and
    picklable, so pool workers rebuild streams from it through the same
    process-wide cache discipline as traces.
    """

    trace: TraceSpec
    seed: Union[int, str] = 0
    churn_interval: int = 16384
    churn_bursts: int = 2
    churn_pages_per_burst: int = 32
    scatter_span_chunks: int = 0
    modified_os: bool = False
    llc_capacity_bytes: int = 0
    llc_line_bytes: int = 0
    llc_associativity: int = 0
    block_bytes: int = 0
    page_bytes: int = 0
    capacity_bytes: int = 0
    counters_per_block: int = 0
    tree_arity: int = 0
    subtree_level: int = 0
    max_order: int = 10
    reclaim_interval: int = 64


def boundary_stream_spec(
    trace: TraceSpec,
    config,
    seed: Seed = 0,
    churn_interval: int = 16384,
    churn_bursts: int = 2,
    churn_pages_per_burst: int = 32,
    scatter_span_chunks: int = 0,
    modified_os: bool = False,
    max_order: int = 10,
    reclaim_interval: int = 64,
) -> BoundaryStreamSpec:
    """The stream-cache key for ``trace`` under ``config``'s data side.

    ``config`` is a :class:`~repro.config.SystemConfig`; only its
    data-side geometry lands in the key, so two configs differing in —
    say — metadata-cache shape share one compiled stream (the data side
    cannot observe that difference), while an LLC or page-size change
    forces a recompile.
    """
    return BoundaryStreamSpec(
        trace=trace,
        seed=seed,
        churn_interval=churn_interval,
        churn_bursts=churn_bursts,
        churn_pages_per_burst=churn_pages_per_burst,
        scatter_span_chunks=scatter_span_chunks,
        modified_os=modified_os,
        llc_capacity_bytes=config.llc.capacity_bytes,
        llc_line_bytes=config.llc.line_bytes,
        llc_associativity=config.llc.associativity,
        block_bytes=config.security.block_bytes,
        page_bytes=config.security.page_bytes,
        capacity_bytes=config.pcm.capacity_bytes,
        counters_per_block=config.security.counters_per_block,
        tree_arity=config.security.tree_arity,
        subtree_level=config.amnt.subtree_level,
        max_order=max_order,
        reclaim_interval=reclaim_interval,
    )


#: Process-wide compiled-stream cache, disciplined like _TRACE_CACHE:
#: workers forked from a warm parent inherit it; spawned workers fill
#: their own on first use. Values are immutable once compiled.
_STREAM_CACHE = _LRUCache("stream_cache", DEFAULT_STREAM_CACHE_LIMIT)


def materialize_boundary_stream(spec: BoundaryStreamSpec, config, cache: bool = True):
    """Compile (or fetch) the boundary stream ``spec`` describes.

    ``config`` must be the config ``spec`` was derived from (use
    :func:`boundary_stream_spec`); the key carries the data-side
    geometry for cache identity, the config carries the full object the
    compiler needs. Streams are treated as immutable once compiled.
    """
    if cache:
        stream = _STREAM_CACHE.get(spec, spec.trace.label())
        if stream is not None:
            return stream
    from repro.sim.replay import compile_boundary_stream

    stream = compile_boundary_stream(
        materialize_trace(spec.trace, cache=cache),
        config,
        seed=spec.seed,
        churn_interval=spec.churn_interval,
        churn_bursts=spec.churn_bursts,
        churn_pages_per_burst=spec.churn_pages_per_burst,
        scatter_span_chunks=spec.scatter_span_chunks,
        modified_os=spec.modified_os,
        max_order=spec.max_order,
        reclaim_interval=spec.reclaim_interval,
    )
    if cache:
        _STREAM_CACHE.put(spec, stream, spec.trace.label())
    return stream


def boundary_stream_cache_clear() -> None:
    """Drop every compiled stream (tests, long-lived servers)."""
    _STREAM_CACHE.clear()


def boundary_stream_cache_size() -> int:
    return len(_STREAM_CACHE)


def set_stream_cache_limit(limit: int) -> None:
    """Cap the stream cache at ``limit`` entries (evicts LRU overflow)."""
    _STREAM_CACHE.set_limit(limit)


def stream_cache_limit() -> int:
    return _STREAM_CACHE.limit


# ----------------------------------------------------------------------
# metadata-plan cache (resolve metadata addresses once, share per geometry)
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class MetadataPlanSpec:
    """Cache identity of one compiled metadata plan.

    A plan is a pure function of the boundary stream it walks and the
    metadata geometry — and every geometry field the plan reads
    (block/page split, device capacity, tree arity) is already part of
    the stream's identity, so the plan key *is* the stream key. That
    encodes the sharing contract directly: any geometry change produces
    a different stream spec and forces a plan recompile, while a
    metadata-cache-only config change (capacity/ways/latency) maps to
    the same spec and shares the cached plan.
    """

    stream: BoundaryStreamSpec


def metadata_plan_spec(stream_spec: BoundaryStreamSpec) -> MetadataPlanSpec:
    """The plan-cache key for a compiled stream's metadata plan."""
    return MetadataPlanSpec(stream=stream_spec)


#: Process-wide compiled-plan cache, disciplined like _STREAM_CACHE:
#: workers forked from a warm parent inherit it (runtime records
#: included — plans are warmed at compile time); spawned workers fill
#: their own on first use. Values are immutable once compiled.
_PLAN_CACHE = _LRUCache("plan_cache", DEFAULT_PLAN_CACHE_LIMIT)


def materialize_metadata_plan(spec: MetadataPlanSpec, config, cache: bool = True):
    """Compile (or fetch) the metadata plan ``spec`` describes.

    ``config`` must be the config the stream spec was derived from,
    exactly as for :func:`materialize_boundary_stream` (which this goes
    through for the stream itself — one cache discipline end to end).
    Plans are treated as immutable once compiled.
    """
    label = spec.stream.trace.label()
    if cache:
        plan = _PLAN_CACHE.get(spec, label)
        if plan is not None:
            return plan
    from repro.sim.plan import compile_metadata_plan

    stream = materialize_boundary_stream(spec.stream, config, cache=cache)
    plan = compile_metadata_plan(stream, config)
    if cache:
        _PLAN_CACHE.put(spec, plan, label)
    return plan


def metadata_plan_cache_clear() -> None:
    """Drop every compiled plan (tests, long-lived servers)."""
    _PLAN_CACHE.clear()


def metadata_plan_cache_size() -> int:
    return len(_PLAN_CACHE)


def set_plan_cache_limit(limit: int) -> None:
    """Cap the plan cache at ``limit`` entries (evicts LRU overflow)."""
    _PLAN_CACHE.set_limit(limit)


def plan_cache_limit() -> int:
    return _PLAN_CACHE.limit


# ----------------------------------------------------------------------
# one knob for all three caches (CLI flag / environment variable)
# ----------------------------------------------------------------------

#: Environment override for every materialization-cache limit. Set
#: before the process starts (workers inherit it through the
#: environment, including spawn-started pools, which re-import this
#: module); the ``--cache-limit`` CLI flag takes precedence in the
#: process that parses it.
CACHE_LIMIT_ENV = "REPRO_CACHE_LIMIT"


def apply_cache_limit(limit: int) -> None:
    """Cap all three materialization caches (trace/stream/plan) at
    ``limit`` entries. One knob: the caches exist for the same reason
    (bounded memoization of deterministic compiles), and memory-bound
    hosts want to shrink them together."""
    set_trace_cache_limit(limit)
    set_stream_cache_limit(limit)
    set_plan_cache_limit(limit)


def effective_cache_limits() -> Dict[str, int]:
    """The live limits, as recorded in profile/bench environment
    stanzas — so an artifact produced under a shrunken cache says so."""
    return {
        "trace": trace_cache_limit(),
        "stream": stream_cache_limit(),
        "plan": plan_cache_limit(),
    }


def _apply_env_cache_limit() -> None:
    """Honor ``$REPRO_CACHE_LIMIT`` at import. Invalid values (not an
    integer, < 1) are ignored rather than fatal: a bad environment
    variable must not brick every entry point that imports workloads."""
    raw = os.environ.get(CACHE_LIMIT_ENV, "").strip()
    if not raw:
        return
    try:
        limit = int(raw)
    except ValueError:
        return
    if limit >= 1:
        apply_cache_limit(limit)


_apply_env_cache_limit()
