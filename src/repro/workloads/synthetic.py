"""Synthetic trace generation from workload profiles.

A :class:`WorkloadProfile` captures the statistical structure the
secure-memory protocols respond to:

* ``footprint_bytes`` — total virtual data touched; relative to the LLC
  size this sets the memory intensity;
* ``write_fraction`` — share of references that are stores (the
  persistence protocols only act on writes reaching memory);
* ``hot_fraction`` / ``hot_access_fraction`` — a contiguous hot region
  covering ``hot_fraction`` of the footprint receives
  ``hot_access_fraction`` of the references. This is the spatial
  concentration AMNT's subtree tracks;
* ``sequential_fraction`` — share of references that continue a
  sequential stream (spatial locality, which drives both LLC and
  metadata-cache efficacy; pointer-chasing workloads like *canneal*
  set this low);
* ``think_cycles`` — compute cycles between references (compute-bound
  workloads set this high, hiding memory latency).

Generation is a simple Markov mixture over these behaviours, driven by
an explicitly seeded RNG, so every trace is a pure function of
(profile, seed).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from array import array

from repro.util.rng import Seed, make_rng
from repro.workloads.trace import ColumnarAccesses, Trace

BLOCK_BYTES = 64


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical description of one benchmark's memory behaviour."""

    name: str
    footprint_bytes: int
    num_accesses: int
    write_fraction: float
    #: Fraction of the footprint forming the contiguous hot region.
    hot_fraction: float = 0.1
    #: Fraction of accesses that land in the hot region.
    hot_access_fraction: float = 0.8
    #: Fraction of accesses continuing a sequential stream.
    sequential_fraction: float = 0.5
    #: The sequential stream cycles within a window of this fraction of
    #: the footprint before wrapping (tiled/phased iteration, which is
    #: what gives real benchmarks their cache and metadata locality).
    #: 1.0 streams over the whole footprint.
    stream_window_fraction: float = 1.0
    #: Probability, at each window wrap, that the window relocates to a
    #: new position in the footprint (phase change).
    window_relocate_probability: float = 0.05
    #: Compute cycles between successive references.
    think_cycles: int = 10
    #: Base virtual address of the footprint (distinct per program in
    #: multiprogram runs so address spaces do not collide).
    base_vaddr: int = 0x1000_0000

    def __post_init__(self) -> None:
        if self.footprint_bytes < BLOCK_BYTES:
            raise ValueError("footprint must cover at least one block")
        if self.num_accesses <= 0:
            raise ValueError("trace must contain at least one access")
        for field_name in (
            "write_fraction",
            "hot_fraction",
            "hot_access_fraction",
            "sequential_fraction",
            "window_relocate_probability",
        ):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name} must be in [0, 1], got {value}")
        if not 0.0 < self.stream_window_fraction <= 1.0:
            raise ValueError(
                "stream_window_fraction must be in (0, 1], got "
                f"{self.stream_window_fraction}"
            )

    def scaled(self, accesses: Optional[int] = None, **changes: object) -> "WorkloadProfile":
        """Copy with a different trace length (or any other field).

        Benchmarks shrink the paper's billion-instruction regions of
        interest to laptop-scale traces; the profile's statistical
        structure is length-invariant, so shapes are preserved.
        """
        if accesses is not None:
            changes["num_accesses"] = accesses
        return replace(self, **changes)


def generate_trace(
    profile: WorkloadProfile,
    seed: Seed = 0,
    pid: int = 0,
) -> Trace:
    """Generate a trace realizing ``profile``."""
    rng = make_rng(f"{seed}/trace/{profile.name}/{pid}")
    num_blocks = profile.footprint_bytes // BLOCK_BYTES
    hot_blocks = max(1, int(num_blocks * profile.hot_fraction))
    # The hot region sits at a deterministic offset inside the footprint
    # (a third of the way in) rather than at the base: real hot data is
    # some interior structure, not necessarily the first allocation.
    hot_start = (num_blocks // 3) if num_blocks > hot_blocks * 2 else 0

    # Generate straight into the columnar arrays: the loop appends raw
    # integers instead of building one MemoryAccess object per record.
    num = profile.num_accesses
    vaddr_col = array("q")
    flags_col = array("B")
    vaddr_append = vaddr_col.append
    flags_append = flags_col.append
    random = rng.random
    randrange = rng.randrange
    base_vaddr = profile.base_vaddr
    write_fraction = profile.write_fraction
    sequential_fraction = profile.sequential_fraction
    hot_access_fraction = profile.hot_access_fraction
    relocate_probability = profile.window_relocate_probability

    window_blocks = max(1, int(num_blocks * profile.stream_window_fraction))
    window_start = hot_start
    stream_offset = randrange(window_blocks)
    for _ in range(num):
        if random() < sequential_fraction:
            stream_offset += 1
            if stream_offset >= window_blocks:
                stream_offset = 0
                if random() < relocate_probability:
                    # Phase change: the tiled iteration moves on.
                    window_start = randrange(num_blocks)
            block = (window_start + stream_offset) % num_blocks
        elif random() < hot_access_fraction:
            block = hot_start + randrange(hot_blocks)
            if block >= num_blocks:
                block -= num_blocks
        else:
            block = randrange(num_blocks)
        vaddr_append(base_vaddr + block * BLOCK_BYTES)
        flags_append(1 if random() < write_fraction else 0)
    # pid and think are constant per profile trace: build the columns in
    # C with array repetition instead of appending per record.
    pid_col = array("q", [pid]) * num
    think_col = array("q", [profile.think_cycles]) * num
    columns = ColumnarAccesses(
        _columns=(vaddr_col, pid_col, think_col, flags_col)
    )
    return Trace(profile.name, columns)
