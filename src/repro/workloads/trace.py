"""Memory access traces.

A trace is a sequence of :class:`MemoryAccess` records — virtual
addresses tagged with the issuing process — plus enough metadata for a
harness to label results. Storage is *columnar*: four parallel
``array`` columns (vaddr / pid / think / flags) instead of one Python
object per record, because traces run to hundreds of thousands of
entries and sit on the simulator's hot path. The columns cut
generation time and resident size, make pickling to pool workers a
handful of buffer copies, and let :func:`repro.sim.engine.simulate`
iterate raw integers instead of attribute lookups.

:class:`ColumnarAccesses` is the sequence facade: indexing, slicing,
iteration, and equality all speak :class:`MemoryAccess`, so every
existing consumer of ``trace.accesses`` keeps working unchanged.
"""

from __future__ import annotations

import json
from array import array
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Tuple, Union

#: flag bits packed into the flags column.
_WRITE_BIT = 1
_FLUSH_BIT = 2


@dataclass(frozen=True, slots=True)
class MemoryAccess:
    """One CPU memory reference."""

    vaddr: int
    is_write: bool
    pid: int
    #: Compute cycles the core spends before issuing this reference —
    #: the knob that makes a profile memory-bound or compute-bound.
    think_cycles: int
    #: True for a write the application explicitly persists (CLWB +
    #: fence): the line is flushed from the cache hierarchy and the
    #: write reaches memory immediately. This is how in-memory storage
    #: applications enforce their persistence model on SCM.
    flush: bool = False


class ColumnarAccesses:
    """List-of-:class:`MemoryAccess` facade over parallel columns."""

    __slots__ = ("vaddr", "pid", "think", "flags")

    def __init__(
        self,
        records: Optional[Iterable[MemoryAccess]] = None,
        _columns: Optional[Tuple[array, array, array, array]] = None,
    ) -> None:
        if _columns is not None:
            self.vaddr, self.pid, self.think, self.flags = _columns
        else:
            self.vaddr = array("q")
            self.pid = array("q")
            self.think = array("q")
            self.flags = array("B")
            if records is not None:
                self.extend(records)

    # -- column access (the engine's hot loop) ---------------------------

    def columns(self) -> Tuple[array, array, array, array]:
        """The raw (vaddr, pid, think, flags) columns.

        Flags pack ``is_write`` in bit 0 and ``flush`` in bit 1.
        """
        return self.vaddr, self.pid, self.think, self.flags

    # -- mutation --------------------------------------------------------

    def append(self, access: MemoryAccess) -> None:
        self.vaddr.append(access.vaddr)
        self.pid.append(access.pid)
        self.think.append(access.think_cycles)
        self.flags.append(
            (_WRITE_BIT if access.is_write else 0)
            | (_FLUSH_BIT if access.flush else 0)
        )

    def extend(self, records: Iterable[MemoryAccess]) -> None:
        append = self.append
        for access in records:
            append(access)

    # -- sequence protocol ----------------------------------------------

    def __len__(self) -> int:
        return len(self.vaddr)

    def _record(self, i: int) -> MemoryAccess:
        flags = self.flags[i]
        return MemoryAccess(
            self.vaddr[i],
            bool(flags & _WRITE_BIT),
            self.pid[i],
            self.think[i],
            bool(flags & _FLUSH_BIT),
        )

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[MemoryAccess, List[MemoryAccess]]:
        if isinstance(index, slice):
            return [
                self._record(i) for i in range(*index.indices(len(self.vaddr)))
            ]
        return self._record(
            index if index >= 0 else len(self.vaddr) + index
        )

    def __iter__(self) -> Iterator[MemoryAccess]:
        for vaddr, pid, think, flags in zip(
            self.vaddr, self.pid, self.think, self.flags
        ):
            yield MemoryAccess(
                vaddr,
                bool(flags & _WRITE_BIT),
                pid,
                think,
                bool(flags & _FLUSH_BIT),
            )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ColumnarAccesses):
            return (
                self.vaddr == other.vaddr
                and self.pid == other.pid
                and self.think == other.think
                and self.flags == other.flags
            )
        if isinstance(other, (list, tuple)):
            if len(other) != len(self.vaddr):
                return False
            return all(a == b for a, b in zip(self, other))
        return NotImplemented

    def __repr__(self) -> str:
        return f"ColumnarAccesses(len={len(self.vaddr)})"


class Trace:
    """A named, ordered collection of memory accesses.

    Derived views (``pids``, ``write_fraction``, ``footprint_pages``)
    are O(n) scans memoized per trace; any mutation through
    :meth:`append` invalidates them.
    """

    def __init__(
        self,
        name: str,
        accesses: Optional[Union[ColumnarAccesses, List[MemoryAccess]]] = None,
    ) -> None:
        self.name = name
        if isinstance(accesses, ColumnarAccesses):
            self.accesses = accesses
        else:
            self.accesses = ColumnarAccesses(accesses)
        self._pids_cache: Optional[List[int]] = None
        self._write_fraction_cache: Optional[float] = None
        self._footprint_cache: dict = {}

    def _invalidate_caches(self) -> None:
        self._pids_cache = None
        self._write_fraction_cache = None
        self._footprint_cache.clear()

    def append(self, access: MemoryAccess) -> None:
        self.accesses.append(access)
        self._invalidate_caches()

    def __iter__(self) -> Iterator[MemoryAccess]:
        return iter(self.accesses)

    def __len__(self) -> int:
        return len(self.accesses)

    def pids(self) -> List[int]:
        if self._pids_cache is None:
            self._pids_cache = sorted(set(self.accesses.pid))
        return self._pids_cache

    def write_fraction(self) -> float:
        if self._write_fraction_cache is None:
            flags = self.accesses.flags
            if not len(flags):
                self._write_fraction_cache = 0.0
            else:
                writes = sum(1 for f in flags if f & _WRITE_BIT)
                self._write_fraction_cache = writes / len(flags)
        return self._write_fraction_cache

    def footprint_pages(self, page_bytes: int = 4096) -> int:
        """Distinct (pid, virtual page) pairs touched."""
        cached = self._footprint_cache.get(page_bytes)
        if cached is None:
            cached = len(
                {
                    (pid, vaddr // page_bytes)
                    for pid, vaddr in zip(self.accesses.pid, self.accesses.vaddr)
                }
            )
            self._footprint_cache[page_bytes] = cached
        return cached

    #: Alias: "pages touched" reads better in profiling/bench contexts.
    touched_pages = footprint_pages

    # -- persistence (for sharing traces between harness runs) -----------

    def save(self, path: Path) -> None:
        cols = self.accesses
        payload = {
            "name": self.name,
            "accesses": [
                [vaddr, flags & _WRITE_BIT, pid, think, (flags & _FLUSH_BIT) >> 1]
                for vaddr, pid, think, flags in zip(
                    cols.vaddr, cols.pid, cols.think, cols.flags
                )
            ],
        }
        from repro.util.atomicio import atomic_write_text

        atomic_write_text(Path(path), json.dumps(payload))

    @classmethod
    def load(cls, path: Path) -> "Trace":
        payload = json.loads(path.read_text())
        cols = ColumnarAccesses()
        for vaddr, write, pid, think, flush in payload["accesses"]:
            cols.vaddr.append(vaddr)
            cols.pid.append(pid)
            cols.think.append(think)
            cols.flags.append(
                (_WRITE_BIT if write else 0) | (_FLUSH_BIT if flush else 0)
            )
        return cls(payload["name"], cols)

    @classmethod
    def from_accesses(
        cls, name: str, accesses: Iterable[MemoryAccess]
    ) -> "Trace":
        return cls(name, ColumnarAccesses(accesses))

    def __repr__(self) -> str:
        return f"Trace(name={self.name!r}, len={len(self.accesses)})"
