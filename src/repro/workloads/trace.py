"""Memory access traces.

A trace is a sequence of :class:`MemoryAccess` records — virtual
addresses tagged with the issuing process — plus enough metadata for a
harness to label results. Records are plain tuples under the hood
(``__slots__`` dataclass) because traces run to hundreds of thousands
of entries and sit on the simulator's hot path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional


@dataclass(frozen=True, slots=True)
class MemoryAccess:
    """One CPU memory reference."""

    vaddr: int
    is_write: bool
    pid: int
    #: Compute cycles the core spends before issuing this reference —
    #: the knob that makes a profile memory-bound or compute-bound.
    think_cycles: int
    #: True for a write the application explicitly persists (CLWB +
    #: fence): the line is flushed from the cache hierarchy and the
    #: write reaches memory immediately. This is how in-memory storage
    #: applications enforce their persistence model on SCM.
    flush: bool = False


class Trace:
    """A named, ordered collection of memory accesses."""

    def __init__(
        self,
        name: str,
        accesses: Optional[List[MemoryAccess]] = None,
    ) -> None:
        self.name = name
        self.accesses: List[MemoryAccess] = accesses if accesses is not None else []

    def append(self, access: MemoryAccess) -> None:
        self.accesses.append(access)

    def __iter__(self) -> Iterator[MemoryAccess]:
        return iter(self.accesses)

    def __len__(self) -> int:
        return len(self.accesses)

    def pids(self) -> List[int]:
        return sorted({access.pid for access in self.accesses})

    def write_fraction(self) -> float:
        if not self.accesses:
            return 0.0
        writes = sum(1 for access in self.accesses if access.is_write)
        return writes / len(self.accesses)

    def footprint_pages(self, page_bytes: int = 4096) -> int:
        """Distinct (pid, virtual page) pairs touched."""
        return len(
            {(access.pid, access.vaddr // page_bytes) for access in self.accesses}
        )

    # -- persistence (for sharing traces between harness runs) -----------

    def save(self, path: Path) -> None:
        payload = {
            "name": self.name,
            "accesses": [
                [
                    access.vaddr,
                    int(access.is_write),
                    access.pid,
                    access.think_cycles,
                    int(access.flush),
                ]
                for access in self.accesses
            ],
        }
        from repro.util.atomicio import atomic_write_text

        atomic_write_text(Path(path), json.dumps(payload))

    @classmethod
    def load(cls, path: Path) -> "Trace":
        payload = json.loads(path.read_text())
        accesses = [
            MemoryAccess(vaddr, bool(write), pid, think, bool(flush))
            for vaddr, write, pid, think, flush in payload["accesses"]
        ]
        return cls(payload["name"], accesses)

    @classmethod
    def from_accesses(
        cls, name: str, accesses: Iterable[MemoryAccess]
    ) -> "Trace":
        return cls(name, list(accesses))

    def __repr__(self) -> str:
        return f"Trace(name={self.name!r}, len={len(self.accesses)})"
