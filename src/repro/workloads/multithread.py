"""Multithreaded workload construction (the paper's §6.5 setting).

The SPEC evaluation runs *multithreaded* benchmarks on a four-core
machine. Unlike the multiprogram case (§6.2), threads share one address
space: their combined footprint still forms one physically contiguous
hot region, so AMNT's single-subtree assumption survives thread-level
parallelism — the contrast that motivates AMNT++ only for multiprogram
interference. ``benchmarks/test_ablation_multithread.py`` measures
exactly that contrast.

Threads are modeled as per-thread streams over the *same* profile and
virtual base (same pid — one page table), with per-thread seeds so the
streams interleave realistically, merged in virtual-time order.
"""

from __future__ import annotations

from typing import List

from repro.util.rng import Seed
from repro.workloads.multiprogram import interleave
from repro.workloads.synthetic import WorkloadProfile, generate_trace
from repro.workloads.trace import Trace


def multithread_trace(
    profile: WorkloadProfile,
    threads: int = 4,
    seed: Seed = 0,
    accesses_total: int = 0,
) -> Trace:
    """Generate a ``threads``-way multithreaded trace of ``profile``.

    Each thread runs the same statistical behaviour over the shared
    footprint (distinct stream positions and hot-pick sequences via
    per-thread seeds). ``accesses_total`` optionally fixes the merged
    length; by default each thread issues ``profile.num_accesses //
    threads`` references so the total matches the single-thread
    profile.
    """
    if threads < 1:
        raise ValueError(f"need at least one thread, got {threads}")
    per_thread = (accesses_total or profile.num_accesses) // threads
    if per_thread < 1:
        raise ValueError("trace too short for the requested thread count")
    streams: List[Trace] = []
    for thread in range(threads):
        thread_profile = profile.scaled(accesses=per_thread)
        streams.append(
            generate_trace(thread_profile, seed=f"{seed}/t{thread}", pid=0)
        )
    merged = interleave(streams, name=f"{profile.name}x{threads}")
    return merged
