"""PARSEC 3.0 workload profiles (simlarge regions of interest).

Synthetic stand-ins for the benchmarks in the paper's Figures 4-7,
parameterized from published characterizations (Bienia et al.) and the
behaviours the paper itself reports — e.g. *canneal*'s pointer-chasing
access pattern yielding ~30 % metadata cache hit rate, *fluidanimate*'s
write intensity, *swaptions*/*blackscholes* fitting mostly in cache.

Footprints are sized against the paper's intentionally small 1 MB LLC,
so the memory-bound/compute-bound split matches the paper's figures
rather than absolute PARSEC working-set sizes.
"""

from __future__ import annotations

from typing import Dict, List

from repro.util.units import KB, MB
from repro.workloads.synthetic import WorkloadProfile

#: Default trace length for harness runs. The statistical structure is
#: length-invariant (see WorkloadProfile.scaled), so tests and benches
#: shrink or grow this freely.
DEFAULT_ACCESSES = 120_000

PARSEC_PROFILES: Dict[str, WorkloadProfile] = {
    profile.name: profile
    for profile in [
        WorkloadProfile(
            name="blackscholes",
            footprint_bytes=2 * MB,
            num_accesses=DEFAULT_ACCESSES,
            write_fraction=0.10,
            hot_fraction=0.20,
            hot_access_fraction=0.70,
            sequential_fraction=0.70,
            think_cycles=60,
        ),
        WorkloadProfile(
            name="bodytrack",
            footprint_bytes=8 * MB,
            num_accesses=DEFAULT_ACCESSES,
            write_fraction=0.20,
            hot_fraction=0.15,
            hot_access_fraction=0.70,
            sequential_fraction=0.60,
            think_cycles=20,
        ),
        WorkloadProfile(
            # Pointer chasing over a large netlist: almost no sequential
            # locality and a weak hot set -> poor LLC *and* metadata
            # cache behaviour (the paper reports 30.4 % metadata hits).
            name="canneal",
            footprint_bytes=96 * MB,
            num_accesses=DEFAULT_ACCESSES,
            write_fraction=0.15,
            hot_fraction=0.50,
            hot_access_fraction=0.20,
            sequential_fraction=0.03,
            think_cycles=8,
        ),
        WorkloadProfile(
            name="dedup",
            footprint_bytes=48 * MB,
            num_accesses=DEFAULT_ACCESSES,
            write_fraction=0.35,
            hot_fraction=0.10,
            hot_access_fraction=0.60,
            sequential_fraction=0.80,
            think_cycles=10,
        ),
        WorkloadProfile(
            name="facesim",
            footprint_bytes=32 * MB,
            num_accesses=DEFAULT_ACCESSES,
            write_fraction=0.30,
            hot_fraction=0.12,
            hot_access_fraction=0.70,
            sequential_fraction=0.65,
            think_cycles=12,
        ),
        WorkloadProfile(
            name="ferret",
            footprint_bytes=16 * MB,
            num_accesses=DEFAULT_ACCESSES,
            write_fraction=0.20,
            hot_fraction=0.15,
            hot_access_fraction=0.65,
            sequential_fraction=0.50,
            think_cycles=18,
        ),
        WorkloadProfile(
            # Write-intensive with a tight hot set: the AMNT sweet spot.
            name="fluidanimate",
            footprint_bytes=24 * MB,
            num_accesses=DEFAULT_ACCESSES,
            write_fraction=0.40,
            hot_fraction=0.10,
            hot_access_fraction=0.80,
            sequential_fraction=0.70,
            think_cycles=10,
        ),
        WorkloadProfile(
            name="freqmine",
            footprint_bytes=12 * MB,
            num_accesses=DEFAULT_ACCESSES,
            write_fraction=0.15,
            hot_fraction=0.25,
            hot_access_fraction=0.75,
            sequential_fraction=0.50,
            think_cycles=45,
        ),
        WorkloadProfile(
            name="raytrace",
            footprint_bytes=48 * MB,
            num_accesses=DEFAULT_ACCESSES,
            write_fraction=0.08,
            hot_fraction=0.25,
            hot_access_fraction=0.60,
            sequential_fraction=0.40,
            think_cycles=15,
        ),
        WorkloadProfile(
            # Streaming read-mostly; memory traffic is fills, which the
            # persistence model barely touches.
            name="streamcluster",
            footprint_bytes=4 * MB,
            num_accesses=DEFAULT_ACCESSES,
            write_fraction=0.05,
            hot_fraction=0.15,
            hot_access_fraction=0.60,
            sequential_fraction=0.85,
            think_cycles=30,
        ),
        WorkloadProfile(
            # Tiny working set: effectively runs out of the LLC.
            name="swaptions",
            footprint_bytes=1 * MB,
            num_accesses=DEFAULT_ACCESSES,
            write_fraction=0.15,
            hot_fraction=0.30,
            hot_access_fraction=0.70,
            sequential_fraction=0.60,
            think_cycles=50,
        ),
        WorkloadProfile(
            name="vips",
            footprint_bytes=24 * MB,
            num_accesses=DEFAULT_ACCESSES,
            write_fraction=0.30,
            hot_fraction=0.10,
            hot_access_fraction=0.60,
            sequential_fraction=0.75,
            think_cycles=14,
        ),
        WorkloadProfile(
            name="x264",
            footprint_bytes=8 * MB,
            num_accesses=DEFAULT_ACCESSES,
            write_fraction=0.25,
            hot_fraction=0.20,
            hot_access_fraction=0.75,
            sequential_fraction=0.70,
            think_cycles=28,
        ),
    ]
}

#: Tiled/phased iteration windows (fraction of footprint the sequential
#: stream cycles in before wrapping). Tight windows give the metadata
#: cache the locality real benchmarks exhibit; *canneal* keeps the full
#: footprint (pointer chasing has no tiling).
_STREAM_WINDOWS = {
    "blackscholes": 0.30,
    "bodytrack": 0.20,
    "canneal": 1.00,
    "dedup": 0.20,
    "facesim": 0.20,
    "ferret": 0.25,
    "fluidanimate": 0.15,
    "freqmine": 0.30,
    "raytrace": 0.30,
    "streamcluster": 0.30,
    "swaptions": 0.50,
    "vips": 0.20,
    "x264": 0.25,
}

PARSEC_PROFILES = {
    name: profile.scaled(stream_window_fraction=_STREAM_WINDOWS[name])
    for name, profile in PARSEC_PROFILES.items()
}

#: The multiprogram pairs the paper evaluates (Section 6.2), chosen for
#: temporally overlapping regions of interest.
MULTIPROGRAM_PAIRS: List[tuple] = [
    ("bodytrack", "fluidanimate"),
    ("swaptions", "streamcluster"),
    ("x264", "freqmine"),
]


def parsec_profile(name: str) -> WorkloadProfile:
    try:
        return PARSEC_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown PARSEC benchmark {name!r}; "
            f"known: {sorted(PARSEC_PROFILES)}"
        ) from None


def parsec_names() -> List[str]:
    return sorted(PARSEC_PROFILES)
