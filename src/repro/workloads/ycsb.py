"""YCSB-style key-value workload mixes over secure SCM.

The Yahoo! Cloud Serving Benchmark's canonical mixes are the lingua
franca for storage-engine evaluation; expressing them here lets
downstream users of this library benchmark the persistence protocols
under the request mixes their systems actually serve. Each workload is
a read/update/insert mix over a keyspace with a configurable request
skew, compiled down to the same flush-tagged trace format the storage
profiles use (updates and inserts persist; reads do not).

| workload | mix | skew |
|---|---|---|
| A (update heavy) | 50 % read / 50 % update | zipfian |
| B (read mostly)  | 95 % read /  5 % update | zipfian |
| C (read only)    | 100 % read              | zipfian |
| D (read latest)  | 95 % read /  5 % insert | latest  |
| F (read-modify-write) | 50 % read / 50 % RMW | zipfian |

(The scan-heavy workload E needs range queries, which a block-level
trace cannot express meaningfully; it is intentionally omitted.)

Keys map to 64 B record slots (`key * 64` within the footprint); the
zipfian skew is approximated by the standard inverse-power draw.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.util.rng import Seed, make_rng
from repro.util.units import MB
from repro.workloads.trace import MemoryAccess, Trace

BLOCK_BYTES = 64


@dataclass(frozen=True)
class YCSBWorkload:
    """One YCSB mix."""

    name: str
    read_fraction: float
    update_fraction: float
    insert_fraction: float = 0.0
    rmw_fraction: float = 0.0
    #: "zipfian" or "latest" request distribution.
    distribution: str = "zipfian"
    zipf_theta: float = 0.99
    record_count: int = 100_000
    think_cycles: int = 15
    base_vaddr: int = 0x2000_0000

    def __post_init__(self) -> None:
        total = (
            self.read_fraction
            + self.update_fraction
            + self.insert_fraction
            + self.rmw_fraction
        )
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"{self.name}: operation mix sums to {total}")
        if self.distribution not in ("zipfian", "latest"):
            raise ValueError(f"unknown distribution {self.distribution!r}")

    @property
    def footprint_bytes(self) -> int:
        return self.record_count * BLOCK_BYTES


YCSB_WORKLOADS: Dict[str, YCSBWorkload] = {
    "A": YCSBWorkload("A", read_fraction=0.5, update_fraction=0.5),
    "B": YCSBWorkload("B", read_fraction=0.95, update_fraction=0.05),
    "C": YCSBWorkload("C", read_fraction=1.0, update_fraction=0.0),
    "D": YCSBWorkload(
        "D",
        read_fraction=0.95,
        update_fraction=0.0,
        insert_fraction=0.05,
        distribution="latest",
    ),
    "F": YCSBWorkload(
        "F", read_fraction=0.5, update_fraction=0.0, rmw_fraction=0.5
    ),
}


def _zipf_key(rng, count: int, theta: float) -> int:
    """Approximate zipfian draw: inverse-power transform of a uniform.

    Rank r is drawn with probability ~ 1/r^theta; the continuous
    approximation ``floor(count * u^(1/(1-theta)))`` is the standard
    cheap stand-in for the YCSB generator's discrete harmonic draw.
    """
    u = rng.random()
    rank = int(count * (u ** (1.0 / (1.0 - theta))))
    return min(rank, count - 1)


def generate_ycsb_trace(
    workload: YCSBWorkload,
    operations: int = 100_000,
    seed: Seed = 0,
    pid: int = 0,
) -> Trace:
    """Compile ``operations`` YCSB requests into a memory trace.

    Reads touch one record block. Updates touch it as a flush-tagged
    write. Inserts append a fresh record (growing the live keyspace;
    "latest" reads then concentrate near the append frontier). RMWs are
    a read followed by a flush-tagged write of the same record.
    """
    rng = make_rng(f"{seed}/ycsb/{workload.name}/{pid}")
    accesses: List[MemoryAccess] = []
    live_records = workload.record_count // 2  # D starts half-loaded
    think = workload.think_cycles

    def record_addr(key: int) -> int:
        return workload.base_vaddr + key * BLOCK_BYTES

    def pick_key() -> int:
        if workload.distribution == "latest":
            # Newest records are hottest: zipf over recency.
            offset = _zipf_key(rng, live_records, workload.zipf_theta)
            return live_records - 1 - offset
        return _zipf_key(rng, live_records, workload.zipf_theta)

    for _ in range(operations):
        op = rng.random()
        if op < workload.read_fraction:
            accesses.append(
                MemoryAccess(record_addr(pick_key()), False, pid, think)
            )
        elif op < workload.read_fraction + workload.update_fraction:
            accesses.append(
                MemoryAccess(
                    record_addr(pick_key()), True, pid, think, flush=True
                )
            )
        elif (
            op
            < workload.read_fraction
            + workload.update_fraction
            + workload.insert_fraction
        ):
            if live_records < workload.record_count:
                live_records += 1
            accesses.append(
                MemoryAccess(
                    record_addr(live_records - 1), True, pid, think, flush=True
                )
            )
        else:  # read-modify-write
            key = pick_key()
            accesses.append(MemoryAccess(record_addr(key), False, pid, think))
            accesses.append(
                MemoryAccess(record_addr(key), True, pid, 1, flush=True)
            )
    return Trace(f"ycsb-{workload.name}", accesses)


def ycsb_workload(name: str) -> YCSBWorkload:
    try:
        return YCSB_WORKLOADS[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown YCSB workload {name!r}; known: {sorted(YCSB_WORKLOADS)}"
        ) from None


def ycsb_names() -> List[str]:
    return sorted(YCSB_WORKLOADS)
