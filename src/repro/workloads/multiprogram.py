"""Multiprogram workload construction (the paper's Section 6.2).

Two programs run in parallel on separate cores with distinct address
spaces; their memory streams interleave at the shared LLC and memory
controller. We model this by merging two single-program traces in
virtual-time order: each trace advances its own clock by its accesses'
think cycles, and the merged stream always takes the access whose
program clock is furthest behind — the standard way to co-schedule
traces without a full multicore pipeline model (consistent with the
multi-program methodology the paper cites).

Processes get distinct pids and disjoint virtual bases; physical
interleaving then emerges from the demand pager, which is exactly the
effect (Figure 3b) AMNT++ counteracts.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.util.rng import Seed
from repro.workloads.synthetic import WorkloadProfile, generate_trace
from repro.workloads.trace import ColumnarAccesses, Trace


def interleave(traces: Sequence[Trace], name: str = "") -> Trace:
    """Merge traces in virtual-time order (think-cycle weighted)."""
    if not traces:
        raise ValueError("need at least one trace to interleave")
    label = name or "+".join(trace.name for trace in traces)
    clocks = [0] * len(traces)
    positions = [0] * len(traces)
    columns = [trace.accesses.columns() for trace in traces]
    lengths = [len(trace) for trace in traces]
    merged = ColumnarAccesses()
    out_vaddr = merged.vaddr.append
    out_pid = merged.pid.append
    out_think = merged.think.append
    out_flags = merged.flags.append
    remaining = sum(lengths)
    while remaining:
        # Pick the runnable trace with the smallest virtual clock.
        candidate = -1
        for i in range(len(traces)):
            if positions[i] >= lengths[i]:
                continue
            if candidate < 0 or clocks[i] < clocks[candidate]:
                candidate = i
        vaddr_col, pid_col, think_col, flags_col = columns[candidate]
        pos = positions[candidate]
        think = think_col[pos]
        out_vaddr(vaddr_col[pos])
        out_pid(pid_col[pos])
        out_think(think)
        out_flags(flags_col[pos])
        positions[candidate] = pos + 1
        clocks[candidate] += think + 1
        remaining -= 1
    return Trace(label, merged)


def multiprogram_trace(
    profiles: Sequence[WorkloadProfile],
    seed: Seed = 0,
    accesses_each: int = 0,
) -> Trace:
    """Generate and interleave one trace per profile.

    Each program receives its own pid and a disjoint virtual base so
    address spaces never alias. ``accesses_each`` optionally overrides
    every profile's trace length (the harness uses this to equalize
    regions of interest, mirroring the paper's start-together /
    stop-together measurement window).
    """
    traces = []
    for pid, profile in enumerate(profiles):
        adjusted = profile.scaled(
            accesses=accesses_each or profile.num_accesses,
            base_vaddr=0x1000_0000 + pid * 0x4000_0000,
        )
        traces.append(generate_trace(adjusted, seed=seed, pid=pid))
    return interleave(traces)


def pair_label(pair: Tuple[str, str]) -> str:
    """The paper's style of pair naming, e.g. ``body and fluid``."""
    first, second = pair
    return f"{first[:5].rstrip()} and {second[:6].rstrip()}"
