"""In-memory storage application workloads (the paper's headline case).

The abstract claims AMNT's biggest wins "for in-memory storage
applications": databases and KV stores that use SCM for durable data
and *explicitly persist* their writes (CLWB + fence) rather than
letting them drain lazily through cache evictions. Every persisted
write reaches memory immediately, so the metadata persistence protocol
sits directly on the application's commit path — the harshest setting
for strict persistence and the best case for AMNT.

Profiles here model three canonical shapes:

* ``kvstore`` — point updates over a keyspace with a hot working set
  (YCSB-like), every update persisted;
* ``oltp`` — small transactions touching a few records plus an
  append-only log, log appends persisted;
* ``logger`` — an append-dominated stream (message queue / WAL),
  everything persisted, extreme spatial locality.

:func:`generate_storage_trace` augments the base synthetic generator
with a ``persist_fraction``: that share of writes carries the
``flush`` flag the simulation engine turns into an immediate memory
write.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.util.rng import Seed, make_rng
from repro.util.units import MB
from repro.workloads.synthetic import BLOCK_BYTES, WorkloadProfile, generate_trace
from repro.workloads.trace import MemoryAccess, Trace


@dataclass(frozen=True)
class StorageProfile:
    """A persistence-aware workload: base profile + flush behaviour."""

    base: WorkloadProfile
    #: Fraction of writes the application explicitly persists.
    persist_fraction: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.persist_fraction <= 1.0:
            raise ValueError(
                f"persist_fraction must be in [0, 1], got "
                f"{self.persist_fraction}"
            )

    @property
    def name(self) -> str:
        return self.base.name


STORAGE_PROFILES: Dict[str, StorageProfile] = {
    "kvstore": StorageProfile(
        base=WorkloadProfile(
            name="kvstore",
            footprint_bytes=48 * MB,
            num_accesses=120_000,
            write_fraction=0.45,
            hot_fraction=0.08,
            hot_access_fraction=0.85,
            sequential_fraction=0.15,
            stream_window_fraction=0.2,
            think_cycles=12,
        ),
        persist_fraction=1.0,
    ),
    "oltp": StorageProfile(
        base=WorkloadProfile(
            name="oltp",
            footprint_bytes=64 * MB,
            num_accesses=120_000,
            write_fraction=0.35,
            hot_fraction=0.10,
            hot_access_fraction=0.70,
            sequential_fraction=0.40,
            stream_window_fraction=0.15,
            think_cycles=18,
        ),
        persist_fraction=0.6,  # log appends + commit records
    ),
    "logger": StorageProfile(
        base=WorkloadProfile(
            name="logger",
            footprint_bytes=32 * MB,
            num_accesses=120_000,
            write_fraction=0.70,
            hot_fraction=0.05,
            hot_access_fraction=0.90,
            sequential_fraction=0.85,
            stream_window_fraction=0.10,
            think_cycles=8,
        ),
        persist_fraction=1.0,
    ),
}


def storage_profile(name: str) -> StorageProfile:
    try:
        return STORAGE_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown storage workload {name!r}; known: "
            f"{sorted(STORAGE_PROFILES)}"
        ) from None


def storage_names() -> List[str]:
    return sorted(STORAGE_PROFILES)


def generate_storage_trace(
    profile: StorageProfile,
    seed: Seed = 0,
    pid: int = 0,
    accesses: int = 0,
) -> Trace:
    """Generate a trace whose writes carry flush flags.

    Built on the base generator so the address stream is identical to
    the non-persistent variant with the same seed — only the flush
    marking differs, which makes persist-on/persist-off comparisons
    controlled.
    """
    base = profile.base
    if accesses:
        base = base.scaled(accesses=accesses)
    plain = generate_trace(base, seed=seed, pid=pid)
    rng = make_rng(f"{seed}/flush/{profile.name}/{pid}")
    flushed: List[MemoryAccess] = []
    for access in plain:
        flush = access.is_write and rng.random() < profile.persist_fraction
        if flush:
            flushed.append(
                MemoryAccess(
                    access.vaddr,
                    access.is_write,
                    access.pid,
                    access.think_cycles,
                    flush=True,
                )
            )
        else:
            flushed.append(access)
    return Trace(profile.name, flushed)


def persisted_write_count(trace: Trace) -> int:
    """Writes the application explicitly persisted (flush-tagged)."""
    return sum(1 for access in trace if access.flush)
