"""SPEC CPU 2017 (speed, ref) workload profiles for Figure 8.

Parameterized from published SPEC 2017 memory characterizations and the
behaviours the paper calls out explicitly: *xz* as the most
write-memory-intensive benchmark, *lbm* and *deepsjeng* write-intensive,
*cactuBSSN* and *mcf* read-memory-intensive (so persistence protocols
should barely touch them while Anubis/BMF still pay), and the compute-
bound integer codes (*leela*, *exchange2*) showing negligible overhead
everywhere.

The paper's multithreaded runs use a 4-core machine with an 8 MB L3;
footprints here are sized against that LLC.
"""

from __future__ import annotations

from typing import Dict, List

from repro.util.units import MB
from repro.workloads.synthetic import WorkloadProfile

DEFAULT_ACCESSES = 120_000

SPEC_PROFILES: Dict[str, WorkloadProfile] = {
    profile.name: profile
    for profile in [
        WorkloadProfile(
            name="perlbench",
            footprint_bytes=8 * MB,
            num_accesses=DEFAULT_ACCESSES,
            write_fraction=0.20,
            hot_fraction=0.15,
            hot_access_fraction=0.75,
            sequential_fraction=0.55,
            think_cycles=25,
        ),
        WorkloadProfile(
            name="gcc",
            footprint_bytes=16 * MB,
            num_accesses=DEFAULT_ACCESSES,
            write_fraction=0.25,
            hot_fraction=0.15,
            hot_access_fraction=0.65,
            sequential_fraction=0.50,
            think_cycles=20,
        ),
        WorkloadProfile(
            # Sparse graph traversal: read-dominated, poor locality,
            # strongly memory-bound.
            name="mcf",
            footprint_bytes=128 * MB,
            num_accesses=DEFAULT_ACCESSES,
            write_fraction=0.06,
            hot_fraction=0.30,
            hot_access_fraction=0.50,
            sequential_fraction=0.25,
            think_cycles=6,
        ),
        WorkloadProfile(
            name="omnetpp",
            footprint_bytes=64 * MB,
            num_accesses=DEFAULT_ACCESSES,
            write_fraction=0.20,
            hot_fraction=0.20,
            hot_access_fraction=0.55,
            sequential_fraction=0.30,
            think_cycles=10,
        ),
        WorkloadProfile(
            name="xalancbmk",
            footprint_bytes=32 * MB,
            num_accesses=DEFAULT_ACCESSES,
            write_fraction=0.15,
            hot_fraction=0.20,
            hot_access_fraction=0.60,
            sequential_fraction=0.40,
            think_cycles=14,
        ),
        WorkloadProfile(
            name="x264",
            footprint_bytes=16 * MB,
            num_accesses=DEFAULT_ACCESSES,
            write_fraction=0.25,
            hot_fraction=0.15,
            hot_access_fraction=0.70,
            sequential_fraction=0.70,
            think_cycles=18,
        ),
        WorkloadProfile(
            # Game-tree search with heavy hash-table stores.
            name="deepsjeng",
            footprint_bytes=48 * MB,
            num_accesses=DEFAULT_ACCESSES,
            write_fraction=0.40,
            hot_fraction=0.15,
            hot_access_fraction=0.70,
            sequential_fraction=0.45,
            think_cycles=10,
        ),
        WorkloadProfile(
            name="leela",
            footprint_bytes=4 * MB,
            num_accesses=DEFAULT_ACCESSES,
            write_fraction=0.15,
            hot_fraction=0.25,
            hot_access_fraction=0.70,
            sequential_fraction=0.50,
            think_cycles=35,
        ),
        WorkloadProfile(
            name="exchange2",
            footprint_bytes=1 * MB,
            num_accesses=DEFAULT_ACCESSES,
            write_fraction=0.20,
            hot_fraction=0.30,
            hot_access_fraction=0.80,
            sequential_fraction=0.60,
            think_cycles=60,
        ),
        WorkloadProfile(
            # The most write-memory-intensive benchmark in the suite
            # (the paper's Section 6.5 headline case).
            name="xz",
            footprint_bytes=64 * MB,
            num_accesses=DEFAULT_ACCESSES,
            write_fraction=0.50,
            hot_fraction=0.10,
            hot_access_fraction=0.75,
            sequential_fraction=0.60,
            think_cycles=7,
        ),
        WorkloadProfile(
            name="bwaves",
            footprint_bytes=96 * MB,
            num_accesses=DEFAULT_ACCESSES,
            write_fraction=0.12,
            hot_fraction=0.10,
            hot_access_fraction=0.55,
            sequential_fraction=0.85,
            think_cycles=8,
        ),
        WorkloadProfile(
            # Read-memory-intensive stencil: persistence model should
            # not matter, but read-path complexity (Anubis/BMF) does.
            name="cactuBSSN",
            footprint_bytes=96 * MB,
            num_accesses=DEFAULT_ACCESSES,
            write_fraction=0.08,
            hot_fraction=0.10,
            hot_access_fraction=0.55,
            sequential_fraction=0.80,
            think_cycles=7,
        ),
        WorkloadProfile(
            # Streaming stencil with a high store share.
            name="lbm",
            footprint_bytes=64 * MB,
            num_accesses=DEFAULT_ACCESSES,
            write_fraction=0.45,
            hot_fraction=0.08,
            hot_access_fraction=0.85,
            sequential_fraction=0.85,
            think_cycles=6,
        ),
        WorkloadProfile(
            name="wrf",
            footprint_bytes=32 * MB,
            num_accesses=DEFAULT_ACCESSES,
            write_fraction=0.25,
            hot_fraction=0.12,
            hot_access_fraction=0.65,
            sequential_fraction=0.70,
            think_cycles=12,
        ),
        WorkloadProfile(
            name="imagick",
            footprint_bytes=8 * MB,
            num_accesses=DEFAULT_ACCESSES,
            write_fraction=0.30,
            hot_fraction=0.20,
            hot_access_fraction=0.75,
            sequential_fraction=0.75,
            think_cycles=30,
        ),
        WorkloadProfile(
            name="fotonik3d",
            footprint_bytes=64 * MB,
            num_accesses=DEFAULT_ACCESSES,
            write_fraction=0.20,
            hot_fraction=0.10,
            hot_access_fraction=0.60,
            sequential_fraction=0.85,
            think_cycles=9,
        ),
        WorkloadProfile(
            name="roms",
            footprint_bytes=48 * MB,
            num_accesses=DEFAULT_ACCESSES,
            write_fraction=0.22,
            hot_fraction=0.12,
            hot_access_fraction=0.60,
            sequential_fraction=0.80,
            think_cycles=10,
        ),
        WorkloadProfile(
            name="nab",
            footprint_bytes=8 * MB,
            num_accesses=DEFAULT_ACCESSES,
            write_fraction=0.20,
            hot_fraction=0.20,
            hot_access_fraction=0.70,
            sequential_fraction=0.60,
            think_cycles=30,
        ),
    ]
}


#: Tiled/phased iteration windows, as in repro.workloads.parsec.
_STREAM_WINDOWS = {
    "perlbench": 0.30,
    "gcc": 0.30,
    "mcf": 0.50,
    "omnetpp": 0.50,
    "xalancbmk": 0.40,
    "x264": 0.25,
    "deepsjeng": 0.40,
    "leela": 0.40,
    "exchange2": 0.50,
    "xz": 0.15,
    "bwaves": 0.20,
    "cactuBSSN": 0.20,
    "lbm": 0.12,
    "wrf": 0.20,
    "imagick": 0.30,
    "fotonik3d": 0.20,
    "roms": 0.20,
    "nab": 0.30,
}

SPEC_PROFILES = {
    name: profile.scaled(stream_window_fraction=_STREAM_WINDOWS[name])
    for name, profile in SPEC_PROFILES.items()
}


def spec_profile(name: str) -> WorkloadProfile:
    try:
        return SPEC_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown SPEC benchmark {name!r}; known: {sorted(SPEC_PROFILES)}"
        ) from None


def spec_names() -> List[str]:
    return sorted(SPEC_PROFILES)
