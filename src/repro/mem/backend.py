"""Sparse byte-level backing store for the simulated NVM.

The store is organized by :class:`MetadataRegion`: protected data,
encryption counters, data HMACs, BMT nodes, and protocol-private
regions (e.g. Anubis's shadow table). Each region is a sparse mapping
from an integer key (block index, counter index, node id, ...) to a
``bytes`` payload, so an 8 GB — or 128 TB — device costs memory only
for the lines a workload actually touches.

The backend is purely functional storage; all *timing* lives in
:class:`repro.mem.nvm.NVMDevice`, and all *policy* in the protocols.
Separating them lets functional tests validate contents without a
timing model and timing sweeps skip byte materialization entirely.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterator, Optional, Tuple


class MetadataRegion(enum.Enum):
    """Namespaces within the non-volatile device."""

    DATA = "data"
    COUNTERS = "counters"
    HMACS = "hmacs"
    TREE = "tree"
    SHADOW_TABLE = "shadow_table"
    SHADOW_TREE = "shadow_tree"

    def __repr__(self) -> str:  # compact in test output
        return f"<{self.value}>"


Key = Hashable


@dataclass
class SparseMemory:
    """Sparse content store: ``(region, key) -> bytes``."""

    #: Value returned for never-written lines; mimics zero-initialized
    #: media. Line width varies by region so the default is built lazily
    #: from the requested width.
    default_line_bytes: int = 64
    _store: Dict[MetadataRegion, Dict[Key, bytes]] = field(default_factory=dict)

    def _region(self, region: MetadataRegion) -> Dict[Key, bytes]:
        bucket = self._store.get(region)
        if bucket is None:
            bucket = {}
            self._store[region] = bucket
        return bucket

    def read(
        self,
        region: MetadataRegion,
        key: Key,
        width: Optional[int] = None,
    ) -> bytes:
        """Read the line at ``key``; unwritten lines read as zeros."""
        line = self._region(region).get(key)
        if line is not None:
            return line
        return bytes(width if width is not None else self.default_line_bytes)

    def write(self, region: MetadataRegion, key: Key, value: bytes) -> None:
        """Persist ``value`` at ``key`` (overwrites)."""
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError(f"expected bytes, got {type(value).__name__}")
        self._region(region)[key] = bytes(value)

    def contains(self, region: MetadataRegion, key: Key) -> bool:
        return key in self._region(region)

    def erase(self, region: MetadataRegion, key: Key) -> None:
        self._region(region).pop(key, None)

    def keys(self, region: MetadataRegion) -> Iterator[Key]:
        return iter(self._region(region).keys())

    def lines_written(self, region: MetadataRegion) -> int:
        """Distinct lines ever written in ``region`` (footprint proxy)."""
        return len(self._region(region))

    def snapshot(self) -> "SparseMemory":
        """Deep copy — used by crash-injection tests to freeze media."""
        clone = SparseMemory(default_line_bytes=self.default_line_bytes)
        for region, bucket in self._store.items():
            clone._store[region] = dict(bucket)
        return clone

    def corrupt(
        self,
        region: MetadataRegion,
        key: Key,
        new_value: Optional[bytes] = None,
    ) -> Tuple[bytes, bytes]:
        """Adversarially flip a stored line; returns (old, new).

        Used by tamper-injection tests: by default the first byte is
        XOR-flipped, which any sound MAC must detect.
        """
        old = self.read(region, key)
        if new_value is None:
            mutated = bytearray(old if old else bytes(self.default_line_bytes))
            mutated[0] ^= 0xFF
            new_value = bytes(mutated)
        self.write(region, key, new_value)
        return old, new_value
