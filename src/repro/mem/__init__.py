"""Memory substrate: addresses, sparse backing store, and PCM timing."""

from repro.mem.address import AddressSpace
from repro.mem.backend import MetadataRegion, SparseMemory
from repro.mem.bandwidth import RecoveryBandwidthModel
from repro.mem.nvm import NVMDevice
from repro.mem.wear import WearTracker, attach_wear_tracking

__all__ = [
    "AddressSpace",
    "SparseMemory",
    "MetadataRegion",
    "NVMDevice",
    "RecoveryBandwidthModel",
    "WearTracker",
    "attach_wear_tracking",
]
