"""Physical address arithmetic for the protected data region.

Addresses are plain integers in ``[0, capacity)``. This module decodes
them into the units the security machinery works with: 64 B blocks
(the protection granule), 4 KB pages (the counter granule), and the
index spaces used to key counters, HMAC lines, and BMT leaves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AddressError
from repro.util.bitops import align_down, ilog2


@dataclass(frozen=True)
class AddressSpace:
    """Decoder for a physical address space of ``capacity_bytes``."""

    capacity_bytes: int
    block_bytes: int = 64
    page_bytes: int = 4096

    def __post_init__(self) -> None:
        # ilog2 validates the power-of-two requirements.
        object.__setattr__(self, "_block_shift", ilog2(self.block_bytes))
        object.__setattr__(self, "_page_shift", ilog2(self.page_bytes))
        if self.capacity_bytes % self.page_bytes:
            raise AddressError("capacity must be a whole number of pages")

    # -- validation ----------------------------------------------------

    def check(self, addr: int) -> int:
        """Validate ``addr`` is inside the space; returns it unchanged."""
        if not 0 <= addr < self.capacity_bytes:
            raise AddressError(
                f"address {addr:#x} outside [0, {self.capacity_bytes:#x})"
            )
        return addr

    def contains(self, addr: int) -> bool:
        return 0 <= addr < self.capacity_bytes

    # -- decomposition -------------------------------------------------

    def block_index(self, addr: int) -> int:
        """Index of the 64 B block containing ``addr``."""
        return self.check(addr) >> self._block_shift

    def block_base(self, addr: int) -> int:
        """Address of the first byte of the block containing ``addr``."""
        return align_down(self.check(addr), self.block_bytes)

    def page_index(self, addr: int) -> int:
        """Index of the 4 KB page containing ``addr``."""
        return self.check(addr) >> self._page_shift

    def page_base(self, addr: int) -> int:
        return align_down(self.check(addr), self.page_bytes)

    def block_offset_in_page(self, addr: int) -> int:
        """Which of the page's blocks (0..63) contains ``addr``."""
        return (self.check(addr) >> self._block_shift) & (
            (self.page_bytes >> self._block_shift) - 1
        )

    def addr_of_block(self, block_index: int) -> int:
        addr = block_index << self._block_shift
        return self.check(addr)

    def addr_of_page(self, page_index: int) -> int:
        addr = page_index << self._page_shift
        return self.check(addr)

    # -- totals ----------------------------------------------------------

    @property
    def num_blocks(self) -> int:
        return self.capacity_bytes >> self._block_shift

    @property
    def num_pages(self) -> int:
        return self.capacity_bytes >> self._page_shift

    @property
    def blocks_per_page(self) -> int:
        return self.page_bytes >> self._block_shift
