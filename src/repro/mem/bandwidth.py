"""Bandwidth-bound recovery time model (the paper's Section 6.7).

Recovery after a crash rebuilds the stale portion of the BMT by
fetching counter blocks (and already-recomputed lower levels) from
memory and writing recomputed parents back. The paper observes:

* the hash units are fast and pipelined, so recovery is bound by
  memory bandwidth;
* the read:write ratio is 8:1 (eight children fetched per parent
  written back);
* a single Optane DIMM sustains ~4 GB/s under this mix, about half of
  it reads, and a six-channel machine therefore offers ~12 GB/s of
  read bandwidth.

The model charges the reads of every level of the stale region (the
counter leaves dominate: an ``arity``-ary tree's inner levels sum to
``1/(arity-1)`` of the leaf bytes) against the read bandwidth, and the
writes of recomputed nodes against the write share. A dependency-stall
factor accounts for the level-by-level barrier the paper describes
(recomputed hashes are written back before the next level starts, so
read and write phases do not fully overlap); it is calibrated once so
the leaf-persistence row of Table 4 matches, and every other row is
derived. See EXPERIMENTS.md for paper-vs-model numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import PCMConfig
from repro.util.units import GB


@dataclass(frozen=True)
class RecoveryBandwidthModel:
    """Analytic model converting stale metadata bytes to recovery time."""

    pcm: PCMConfig
    #: Children per integrity node.
    arity: int = 8
    #: Counter metadata bytes per protected data byte (64 B per 4 KB).
    counter_ratio: float = 1.0 / 64.0
    #: Level-barrier stall multiplier (calibrated against Table 4's
    #: leaf row: 2 TB -> 6222.21 ms; the uncalibrated model gives
    #: 6095.24 ms, so the barrier costs ~2.1 %). See module docstring.
    dependency_stall_factor: float = 1.020833

    @property
    def read_bandwidth_bytes_per_s(self) -> float:
        return self.pcm.recovery_read_bandwidth_bytes_per_s

    @property
    def write_bandwidth_bytes_per_s(self) -> float:
        """Write share of the mixed workload (1 write per 8 reads)."""
        return self.read_bandwidth_bytes_per_s / self.arity

    def counter_bytes(self, memory_bytes: float) -> float:
        """Counter-leaf bytes protecting ``memory_bytes`` of data."""
        return memory_bytes * self.counter_ratio

    def tree_bytes(self, memory_bytes: float) -> float:
        """Inner integrity-node bytes above those counters.

        Geometric series: leaves/arity + leaves/arity^2 + ... ==
        leaves / (arity - 1).
        """
        return self.counter_bytes(memory_bytes) / (self.arity - 1)

    def rebuild_seconds(self, stale_data_bytes: float) -> float:
        """Seconds to rebuild the BMT over ``stale_data_bytes`` of data.

        ``stale_data_bytes`` is the protected-data coverage of the stale
        region — full memory for leaf persistence, one subtree region
        for AMNT.
        """
        if stale_data_bytes <= 0:
            return 0.0
        leaves = self.counter_bytes(stale_data_bytes)
        inner = self.tree_bytes(stale_data_bytes)
        read_bytes = leaves + inner  # every level is fetched once
        write_bytes = inner  # every recomputed node written once
        read_seconds = read_bytes / self.read_bandwidth_bytes_per_s
        write_seconds = write_bytes / self.write_bandwidth_bytes_per_s
        return (read_seconds + write_seconds) * self.dependency_stall_factor

    def rebuild_milliseconds(self, stale_data_bytes: float) -> float:
        return self.rebuild_seconds(stale_data_bytes) * 1e3

    def full_memory_rebuild_ms(self, memory_bytes: float) -> float:
        """Leaf-persistence recovery: the whole tree is stale."""
        return self.rebuild_milliseconds(memory_bytes)

    def fixed_traffic_ms(self, traffic_bytes: float) -> float:
        """Recovery time for a memory-size-independent byte budget
        (e.g. Anubis replays only the shadow table)."""
        seconds = traffic_bytes / self.read_bandwidth_bytes_per_s
        return seconds * 1e3


def effective_recovery_bandwidth(pcm: PCMConfig) -> float:
    """Read bandwidth, in GB/s, the model charges recovery against."""
    return pcm.recovery_read_bandwidth_bytes_per_s / float(GB)
