"""Non-volatile memory device model: access counting and PCM timing.

The device exposes :meth:`read_access` / :meth:`write_access`, each of
which records the event per region and returns the access latency in
cycles. The simulation engine accumulates these latencies into the
run's cycle total; protocols call the device for every off-chip
metadata fetch or persist they issue, which is precisely the quantity
the paper's protocols differ in.

Persist operations (write-throughs required for crash consistency) are
ordinary writes from the device's perspective but are counted
separately so results can report the *persistence traffic* each
protocol adds over the volatile baseline.

Persistence ordering (``persist_model="wpq"``). Real controllers hold
stores in a volatile write-pending queue (WPQ) and the ADR domain
promises — but a fault model must not assume — that the queue drains on
power loss. :class:`WritePendingQueue` models that window as an *undo
log*: every store still lands in the backend immediately (reads always
see the newest value, and timing is untouched), but the line's
pre-image and per-fence-epoch values are recorded so fault injection
can roll any fence-respecting subset of un-drained lines back
(repro.faults.crashstates). Persist write-throughs are ordering fences:
everything enqueued before a fence must drain before anything after
it. :meth:`WritePendingQueue.drain` — called by the engine at each
persist group's commit point — empties the queue, making the staged
lines durable in every reachable crash state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config import PCMConfig
from repro.mem.backend import Key, MetadataRegion, SparseMemory
from repro.telemetry import metrics as _metrics
from repro.util.stats import StatRegistry

#: ``nvm.wpq.depth`` histogram bounds: lines pending at each fence.
WPQ_DEPTH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


@dataclass(slots=True)
class PendingLine:
    """Undo-log entry for one line with un-drained stores.

    ``versions`` holds at most one ``(epoch, value)`` pair per fence
    epoch, in increasing epoch order: stores to the same line within
    one epoch write-combine in the queue (no fence separates them, so
    no drain order can expose the intermediate value — torn-line
    variants cover sub-line partial application instead).
    """

    region: MetadataRegion
    key: Key
    #: Whether the line existed in the backend before the first
    #: un-drained store (rollback erases never-written lines so they
    #: read as zeros/genesis again).
    existed: bool
    original: Optional[bytes]
    versions: List[Tuple[int, bytes]]


class WritePendingQueue:
    """Volatile store queue with fence-ordered drain semantics.

    ``epoch`` counts persist fences; a line's version tagged with epoch
    ``e`` may only be lost if every version tagged with a *later* epoch
    is lost too (on every line). ``auto_drain`` is the equivalence test
    hook: draining fully at every fence collapses the model to
    write-through.
    """

    def __init__(self, auto_drain: bool = False) -> None:
        self.auto_drain = auto_drain
        self.epoch = 0
        self.recording = True
        self.entries: Dict[Tuple[MetadataRegion, Key], PendingLine] = {}
        self._epoch_dirty = False
        self.fences = 0
        self.drains = 0
        self._depth_hist = _metrics.histogram(
            "nvm.wpq.depth", WPQ_DEPTH_BUCKETS
        )

    def record(
        self,
        region: MetadataRegion,
        key: Key,
        existed: bool,
        original: Optional[bytes],
        value: bytes,
    ) -> None:
        """Note one store (called by the backend *before* it applies)."""
        if not self.recording:
            return
        entry = self.entries.get((region, key))
        if entry is None:
            self.entries[(region, key)] = PendingLine(
                region, key, existed, original, [(self.epoch, value)]
            )
        elif entry.versions[-1][0] == self.epoch:
            entry.versions[-1] = (self.epoch, value)  # write-combine
        else:
            entry.versions.append((self.epoch, value))
        self._epoch_dirty = True

    def fence(self) -> None:
        """A persist write-through: order everything enqueued so far
        before anything enqueued later."""
        self.fences += 1
        self._depth_hist.observe(float(len(self.entries)))
        if self._epoch_dirty:
            self.epoch += 1
            self._epoch_dirty = False
        if self.auto_drain:
            self.drain()

    def drain(self) -> int:
        """ADR drain point: every staged line becomes durable.

        Returns the number of lines drained.
        """
        drained = len(self.entries)
        self.entries.clear()
        self._epoch_dirty = False
        self.drains += 1
        return drained

    def depth(self) -> int:
        return len(self.entries)

    def freeze(self) -> List[PendingLine]:
        """Stop recording and hand over the pending set (crash time).

        Recovery and the oracle keep writing through the same backend;
        freezing first keeps their traffic out of the crash's undo log.
        """
        self.recording = False
        return list(self.entries.values())


class PendingSparseMemory(SparseMemory):
    """A :class:`SparseMemory` that journals stores into a WPQ.

    Reads are untouched (stores write through, so the newest value is
    always visible); only ``write`` records the pre-image first. Used
    as the functional backend under ``persist_model="wpq"`` — the MEE,
    tree, and protocols all share the one backend object, so every
    functional byte store is covered without touching their code.
    """

    def __init__(
        self, wpq: WritePendingQueue, default_line_bytes: int = 64
    ) -> None:
        super().__init__(default_line_bytes=default_line_bytes)
        self.wpq = wpq

    @classmethod
    def wrap(
        cls, memory: SparseMemory, wpq: WritePendingQueue
    ) -> "PendingSparseMemory":
        """Adopt an existing store's contents (shares the line dicts)."""
        wrapped = cls(wpq, default_line_bytes=memory.default_line_bytes)
        wrapped._store = memory._store
        return wrapped

    def write(self, region: MetadataRegion, key: Key, value: bytes) -> None:
        bucket = self._region(region)
        original = bucket.get(key)
        self.wpq.record(region, key, original is not None, original, value)
        super().write(region, key, value)


@dataclass
class NVMDevice:
    """A DDR-based PCM main memory with per-region access statistics."""

    config: PCMConfig
    #: Optional byte-level store; timing-only simulations omit it.
    backend: Optional[SparseMemory] = None
    #: Persistence-ordering model (``persist_model="wpq"``): set when
    #: ``backend`` is a :class:`PendingSparseMemory`, None under
    #: write-through. Purely functional bookkeeping — no timing impact.
    wpq: Optional[WritePendingQueue] = None
    stats: StatRegistry = field(default_factory=lambda: StatRegistry("nvm"))

    def attach_wpq(self, auto_drain: bool = False) -> WritePendingQueue:
        """Switch the backend to WPQ (undo-log) persistence staging."""
        if self.backend is None:
            raise RuntimeError("a WPQ needs a functional backend to journal")
        if self.wpq is None:
            self.wpq = WritePendingQueue(auto_drain=auto_drain)
            self.backend = PendingSparseMemory.wrap(self.backend, self.wpq)
        return self.wpq

    def fence(self) -> None:
        """Persist-ordering fence (no-op under write-through)."""
        if self.wpq is not None:
            self.wpq.fence()

    def drain(self) -> int:
        """Drain the write-pending queue; returns lines drained."""
        if self.wpq is not None:
            return self.wpq.drain()
        return 0

    def __post_init__(self) -> None:
        self._read_cycles = self.config.read_latency_cycles
        self._write_cycles = self.config.write_latency_cycles
        # Pre-resolved counters: these sit on the simulator's innermost
        # loop, so per-access string formatting is avoided.
        self._read_total = self.stats.counter("reads.total")
        self._write_total = self.stats.counter("writes.total")
        self._persist_total = self.stats.counter("persists.total")
        self._read_by_region = {
            region: self.stats.counter(f"reads.{region.value}")
            for region in MetadataRegion
        }
        self._write_by_region = {
            region: self.stats.counter(f"writes.{region.value}")
            for region in MetadataRegion
        }
        self._persist_by_region = {
            region: self.stats.counter(f"persists.{region.value}")
            for region in MetadataRegion
        }

    # -- timing-accounted accesses -----------------------------------

    def read_access(self, region: MetadataRegion) -> int:
        """Record one line read in ``region``; returns latency cycles."""
        self._read_total.value += 1
        self._read_by_region[region].value += 1
        return self._read_cycles

    def write_access(self, region: MetadataRegion, persist: bool = False) -> int:
        """Record one line write; ``persist`` marks crash-consistency
        write-throughs (counted separately from lazy writebacks)."""
        self._write_total.value += 1
        self._write_by_region[region].value += 1
        if persist:
            self._persist_total.value += 1
            self._persist_by_region[region].value += 1
        return self._write_cycles

    # -- pre-bound access closures (hot-path callers) -------------------

    def reader(self, region: MetadataRegion):
        """A zero-argument equivalent of ``read_access(region)``.

        The engine's per-access paths call the device hundreds of
        thousands of times per run with a region known statically at
        the call site; binding the counters and latency into a closure
        removes the per-call region dispatch (including the enum hash
        behind the per-region counter dict)."""
        total = self._read_total
        by_region = self._read_by_region[region]
        latency = self._read_cycles

        def read() -> int:
            total.value += 1
            by_region.value += 1
            return latency

        return read

    def writer(self, region: MetadataRegion, persist: bool = False):
        """A zero-argument equivalent of ``write_access(region,
        persist=...)`` — same counters, same returned latency."""
        total = self._write_total
        by_region = self._write_by_region[region]
        latency = self._write_cycles
        if not persist:

            def write() -> int:
                total.value += 1
                by_region.value += 1
                return latency

            return write
        persist_total = self._persist_total
        persist_by_region = self._persist_by_region[region]

        def persist_write() -> int:
            total.value += 1
            by_region.value += 1
            persist_total.value += 1
            persist_by_region.value += 1
            return latency

        return persist_write

    # -- content plumbing (functional mode) ----------------------------

    def load(self, region: MetadataRegion, key: object, width: int = 64) -> bytes:
        """Fetch line contents (requires a backend)."""
        if self.backend is None:
            raise RuntimeError("this NVM device was built without a backend")
        return self.backend.read(region, key, width)

    def store(self, region: MetadataRegion, key: object, value: bytes) -> None:
        """Store line contents (requires a backend)."""
        if self.backend is None:
            raise RuntimeError("this NVM device was built without a backend")
        self.backend.write(region, key, value)

    # -- convenience ----------------------------------------------------

    @property
    def read_latency_cycles(self) -> int:
        return self._read_cycles

    @property
    def write_latency_cycles(self) -> int:
        return self._write_cycles

    def reads(self, region: Optional[MetadataRegion] = None) -> int:
        name = "reads.total" if region is None else f"reads.{region.value}"
        return self.stats.get(name)

    def writes(self, region: Optional[MetadataRegion] = None) -> int:
        name = "writes.total" if region is None else f"writes.{region.value}"
        return self.stats.get(name)

    def persists(self, region: Optional[MetadataRegion] = None) -> int:
        name = "persists.total" if region is None else f"persists.{region.value}"
        return self.stats.get(name)
