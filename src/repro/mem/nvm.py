"""Non-volatile memory device model: access counting and PCM timing.

The device exposes :meth:`read_access` / :meth:`write_access`, each of
which records the event per region and returns the access latency in
cycles. The simulation engine accumulates these latencies into the
run's cycle total; protocols call the device for every off-chip
metadata fetch or persist they issue, which is precisely the quantity
the paper's protocols differ in.

Persist operations (write-throughs required for crash consistency) are
ordinary writes from the device's perspective but are counted
separately so results can report the *persistence traffic* each
protocol adds over the volatile baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.config import PCMConfig
from repro.mem.backend import MetadataRegion, SparseMemory
from repro.util.stats import StatRegistry


@dataclass
class NVMDevice:
    """A DDR-based PCM main memory with per-region access statistics."""

    config: PCMConfig
    #: Optional byte-level store; timing-only simulations omit it.
    backend: Optional[SparseMemory] = None
    stats: StatRegistry = field(default_factory=lambda: StatRegistry("nvm"))

    def __post_init__(self) -> None:
        self._read_cycles = self.config.read_latency_cycles
        self._write_cycles = self.config.write_latency_cycles
        # Pre-resolved counters: these sit on the simulator's innermost
        # loop, so per-access string formatting is avoided.
        self._read_total = self.stats.counter("reads.total")
        self._write_total = self.stats.counter("writes.total")
        self._persist_total = self.stats.counter("persists.total")
        self._read_by_region = {
            region: self.stats.counter(f"reads.{region.value}")
            for region in MetadataRegion
        }
        self._write_by_region = {
            region: self.stats.counter(f"writes.{region.value}")
            for region in MetadataRegion
        }
        self._persist_by_region = {
            region: self.stats.counter(f"persists.{region.value}")
            for region in MetadataRegion
        }

    # -- timing-accounted accesses -----------------------------------

    def read_access(self, region: MetadataRegion) -> int:
        """Record one line read in ``region``; returns latency cycles."""
        self._read_total.value += 1
        self._read_by_region[region].value += 1
        return self._read_cycles

    def write_access(self, region: MetadataRegion, persist: bool = False) -> int:
        """Record one line write; ``persist`` marks crash-consistency
        write-throughs (counted separately from lazy writebacks)."""
        self._write_total.value += 1
        self._write_by_region[region].value += 1
        if persist:
            self._persist_total.value += 1
            self._persist_by_region[region].value += 1
        return self._write_cycles

    # -- pre-bound access closures (hot-path callers) -------------------

    def reader(self, region: MetadataRegion):
        """A zero-argument equivalent of ``read_access(region)``.

        The engine's per-access paths call the device hundreds of
        thousands of times per run with a region known statically at
        the call site; binding the counters and latency into a closure
        removes the per-call region dispatch (including the enum hash
        behind the per-region counter dict)."""
        total = self._read_total
        by_region = self._read_by_region[region]
        latency = self._read_cycles

        def read() -> int:
            total.value += 1
            by_region.value += 1
            return latency

        return read

    def writer(self, region: MetadataRegion, persist: bool = False):
        """A zero-argument equivalent of ``write_access(region,
        persist=...)`` — same counters, same returned latency."""
        total = self._write_total
        by_region = self._write_by_region[region]
        latency = self._write_cycles
        if not persist:

            def write() -> int:
                total.value += 1
                by_region.value += 1
                return latency

            return write
        persist_total = self._persist_total
        persist_by_region = self._persist_by_region[region]

        def persist_write() -> int:
            total.value += 1
            by_region.value += 1
            persist_total.value += 1
            persist_by_region.value += 1
            return latency

        return persist_write

    # -- content plumbing (functional mode) ----------------------------

    def load(self, region: MetadataRegion, key: object, width: int = 64) -> bytes:
        """Fetch line contents (requires a backend)."""
        if self.backend is None:
            raise RuntimeError("this NVM device was built without a backend")
        return self.backend.read(region, key, width)

    def store(self, region: MetadataRegion, key: object, value: bytes) -> None:
        """Store line contents (requires a backend)."""
        if self.backend is None:
            raise RuntimeError("this NVM device was built without a backend")
        self.backend.write(region, key, value)

    # -- convenience ----------------------------------------------------

    @property
    def read_latency_cycles(self) -> int:
        return self._read_cycles

    @property
    def write_latency_cycles(self) -> int:
        return self._write_cycles

    def reads(self, region: Optional[MetadataRegion] = None) -> int:
        name = "reads.total" if region is None else f"reads.{region.value}"
        return self.stats.get(name)

    def writes(self, region: Optional[MetadataRegion] = None) -> int:
        name = "writes.total" if region is None else f"writes.{region.value}"
        return self.stats.get(name)

    def persists(self, region: Optional[MetadataRegion] = None) -> int:
        name = "persists.total" if region is None else f"persists.{region.value}"
        return self.stats.get(name)
