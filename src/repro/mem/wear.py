"""SCM endurance accounting: where do the writes land?

PCM-class cells endure ~10^8 writes. A persistence protocol multiplies
device wear as well as latency: strict persistence rewrites the same
handful of upper-tree lines on *every* data write, concentrating wear
on a few metadata cells, while lazy schemes spread (and shed) that
traffic. This module tracks per-line write counts per region and turns
them into the two numbers an SCM architect asks for:

* **write amplification** — total lines written per data line written;
* **hottest-line pressure** — the maximum per-line write count relative
  to the mean, which (absent wear-leveling) bounds device lifetime.

:class:`WearTracker` wraps a :class:`~repro.mem.nvm.NVMDevice` by
interposing on its access methods — build one around the device before
simulation and read the report after. Interposition keeps the device's
hot path free of wear bookkeeping unless a study asks for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.mem.backend import MetadataRegion
from repro.mem.nvm import NVMDevice

#: Conventional PCM cell endurance (writes) used for lifetime math.
DEFAULT_CELL_ENDURANCE = 10**8


@dataclass
class WearReport:
    """Per-region wear summary."""

    writes_by_region: Dict[str, int]
    hottest_line_writes: int
    hottest_line: Optional[Tuple[str, object]]
    distinct_lines_written: int

    @property
    def total_writes(self) -> int:
        return sum(self.writes_by_region.values())

    def write_amplification(self) -> Optional[float]:
        """Metadata lines written per data line written."""
        data = self.writes_by_region.get("data", 0)
        if data == 0:
            return None
        return (self.total_writes - data) / data

    def mean_writes_per_line(self) -> float:
        if self.distinct_lines_written == 0:
            return 0.0
        return self.total_writes / self.distinct_lines_written

    def hotspot_factor(self) -> float:
        """Hottest line's writes over the mean — wear skew. 1.0 means
        perfectly even wear; strict persistence's upper-tree lines push
        this far above the lazy schemes'."""
        mean = self.mean_writes_per_line()
        if mean == 0:
            return 0.0
        return self.hottest_line_writes / mean

    def lifetime_fraction_consumed(
        self, endurance: int = DEFAULT_CELL_ENDURANCE
    ) -> float:
        """Share of the hottest cell's endurance this run consumed
        (no wear-leveling assumed)."""
        return self.hottest_line_writes / endurance


class WearTracker:
    """Interposes on an NVM device to record per-line write counts.

    Only *writes* wear PCM; reads are free. The tracker needs line
    identity, which the timing-side ``write_access`` does not carry, so
    it hooks the MEE at the point where line identity exists: wrap the
    engine with :func:`attach_wear_tracking` and the persist/writeback
    helpers report their keys here.
    """

    def __init__(self) -> None:
        self._line_writes: Dict[Tuple[str, object], int] = {}

    def record(self, region: MetadataRegion, key: object) -> None:
        identity = (region.value, key)
        self._line_writes[identity] = self._line_writes.get(identity, 0) + 1

    def report(self) -> WearReport:
        by_region: Dict[str, int] = {}
        hottest = 0
        hottest_line: Optional[Tuple[str, object]] = None
        for (region, key), count in self._line_writes.items():
            by_region[region] = by_region.get(region, 0) + count
            if count > hottest:
                hottest = count
                hottest_line = (region, key)
        return WearReport(
            writes_by_region=by_region,
            hottest_line_writes=hottest,
            hottest_line=hottest_line,
            distinct_lines_written=len(self._line_writes),
        )

    def hottest_lines(self, top: int = 5) -> List[Tuple[Tuple[str, object], int]]:
        return sorted(
            self._line_writes.items(), key=lambda item: -item[1]
        )[:top]


def attach_wear_tracking(mee) -> WearTracker:
    """Instrument a MemoryEncryptionEngine's write paths with a tracker.

    Wraps the engine's persist helpers, lazy writeback, and data write
    so every NVM line write is attributed. Returns the tracker; call
    ``tracker.report()`` after simulation.
    """
    tracker = WearTracker()

    original_persist_counter = mee.persist_counter_line
    original_persist_hmac = mee.persist_hmac_line
    original_persist_node = mee.persist_tree_node
    original_writeback = mee._writeback_metadata
    original_write_block = mee.write_block

    def persist_counter(counter_index):
        tracker.record(MetadataRegion.COUNTERS, counter_index)
        return original_persist_counter(counter_index)

    def persist_hmac(hmac_line):
        tracker.record(MetadataRegion.HMACS, hmac_line)
        return original_persist_hmac(hmac_line)

    def persist_node(node):
        tracker.record(MetadataRegion.TREE, node)
        return original_persist_node(node)

    def writeback(key):
        kind = key[0]
        if kind == "ctr":
            tracker.record(MetadataRegion.COUNTERS, key[1])
        elif kind == "node":
            tracker.record(MetadataRegion.TREE, (key[1], key[2]))
        else:
            tracker.record(MetadataRegion.HMACS, key[1])
        return original_writeback(key)

    def write_block(paddr, data=None):
        tracker.record(
            MetadataRegion.DATA, mee.address_space.block_index(paddr)
        )
        return original_write_block(paddr, data=data)

    mee.persist_counter_line = persist_counter
    mee.persist_hmac_line = persist_hmac
    mee.persist_tree_node = persist_node
    mee._writeback_metadata = writeback
    mee.write_block = write_block
    # Protocols with private NVM regions (Anubis's shadow table) report
    # their writes through this attribute.
    mee.wear_tracker = tracker
    return tracker
