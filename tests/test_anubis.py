"""Anubis: shadow-table costs and bounded recovery."""

import pytest

from repro.config import default_config
from repro.core.mee import MemoryEncryptionEngine
from repro.core.protocol import make_protocol
from repro.core.recovery import CrashInjector
from repro.mem.backend import MetadataRegion
from repro.mem.bandwidth import RecoveryBandwidthModel
from repro.util.units import MB, TB


@pytest.fixture
def config():
    return default_config(capacity_bytes=64 * MB)


def engine_for(config, functional=False):
    return MemoryEncryptionEngine(
        config, make_protocol("anubis", config), functional=functional
    )


class TestRuntimeCosts:
    def test_fill_triggers_shadow_persist(self, config):
        mee = engine_for(config)
        mee.read_block(0)  # cold: several fills, each shadowed
        fills = mee.protocol.stats.get("shadow_fills")
        assert fills > 0
        assert mee.nvm.persists(MetadataRegion.SHADOW_TABLE) >= fills

    def test_fill_cost_is_on_critical_path(self, config):
        mee = engine_for(config)
        cost = mee.protocol.on_metadata_fill(("ctr", 0))
        assert cost == mee.nvm.write_latency_cycles

    def test_warm_accesses_avoid_slow_path(self, config):
        mee = engine_for(config)
        mee.read_block(0)
        fills_cold = mee.protocol.stats.get("shadow_fills")
        mee.read_block(64)  # fully warm
        assert (
            mee.protocol.stats.get("shadow_fills")
            == fills_cold
        )

    def test_write_updates_shadow_without_critical_cycles(self, config):
        mee = engine_for(config)
        mee.write_block(0)
        extra = mee.protocol.on_data_write(0, 0, mee.ancestor_path(0))
        assert extra == 0  # coalesced off the critical path
        assert mee.protocol.stats.get("shadow_updates") >= 1

    def test_extra_nv_register_for_shadow_root(self, config):
        mee = engine_for(config)
        assert "anubis_shadow_root" in mee.registers.names()


class TestRecovery:
    def test_recovery_restores_counters_and_macs(self, config):
        mee = engine_for(config, functional=True)
        payload = b"anubis-data".ljust(64, b"\x00")
        mee.write_block(3 * 4096, data=payload)
        outcome = CrashInjector(mee).crash_and_recover()
        assert outcome.ok
        assert "shadow entries restored" in outcome.detail
        assert mee.read_block_data(3 * 4096) == payload

    def test_recovery_time_is_memory_size_independent(self, config):
        model = RecoveryBandwidthModel(config.pcm)
        protocol = make_protocol("anubis", config)
        small = protocol.recovery_ms(model, 2 * TB)
        large = protocol.recovery_ms(model, 128 * TB)
        assert small == large

    def test_recovery_time_matches_table4(self, config):
        # Paper Table 4: 1.30 ms regardless of memory size.
        model = RecoveryBandwidthModel(config.pcm)
        protocol = make_protocol("anubis", config)
        assert protocol.recovery_ms(model, 2 * TB) == pytest.approx(
            1.30, abs=0.05
        )

    def test_zero_stale_coverage(self, config):
        protocol = make_protocol("anubis", config)
        assert protocol.stale_data_bytes(2 * TB) == 0.0


class TestArea:
    def test_table3_numbers(self, config):
        mee = engine_for(config)
        area = mee.protocol.area_overhead()
        assert area.nonvolatile_on_chip_bytes == 64
        assert area.volatile_on_chip_bytes == 37 * 1024
        assert area.in_memory_bytes == 37 * 1024


class TestShadowCacheKnob:
    """The 37 kB on-chip shadow cache is optional; without it every
    shadow update also walks the shadow Merkle tree in memory."""

    @pytest.fixture
    def no_cache_config(self, config):
        from dataclasses import replace

        from repro.config import AnubisConfig

        return replace(
            config, anubis=AnubisConfig(shadow_cache_on_chip=False)
        )

    def test_fills_cost_more_without_the_cache(self, config, no_cache_config):
        with_cache = engine_for(config)
        without_cache = MemoryEncryptionEngine(
            no_cache_config, make_protocol("anubis", no_cache_config)
        )
        assert without_cache.protocol.on_metadata_fill(
            ("ctr", 0)
        ) > with_cache.protocol.on_metadata_fill(("ctr", 0))
        assert without_cache.protocol.stats.get("shadow_tree_walks") == 1

    def test_area_trades_sram_for_traffic(self, no_cache_config):
        mee = MemoryEncryptionEngine(
            no_cache_config, make_protocol("anubis", no_cache_config)
        )
        area = mee.protocol.area_overhead()
        assert area.volatile_on_chip_bytes == 0
        assert area.in_memory_bytes == 37 * 1024
