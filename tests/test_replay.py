"""Boundary-event compilation: compiled replay == direct simulation.

The replay pipeline (repro.sim.replay) simulates the protocol-agnostic
data side once and replays the resulting boundary-event stream into
every protocol's MEE. Its entire correctness claim is *bit-identity*
with the direct path, so these tests compare full
:class:`SimulationResult` objects — and, for functional machines, the
persisted tree bytes and root registers left behind — never summaries.
"""

from dataclasses import replace

import pytest

from repro.bench.perf import reference_cells
from repro.config import default_config
from repro.core.mee import MetadataRegion
from repro.core.protocol import protocol_names, protocol_uses_modified_os
from repro.sim.engine import simulate, simulate_from_stream
from repro.sim.machine import build_machine
from repro.sim.parallel import (
    ParallelSweepRunner,
    SweepCell,
    precompile_streams,
    run_cell,
    stream_spec_for,
)
from repro.sim.replay import (
    EVENT_FILL,
    EVENT_PERSIST,
    EVENT_WRITEBACK,
    BoundaryStream,
    compile_boundary_stream,
)
from repro.sim.runner import run_protocol_sweep
from repro.util.units import MB
from repro.workloads.registry import (
    boundary_stream_cache_clear,
    boundary_stream_cache_size,
    boundary_stream_spec,
    materialize_boundary_stream,
    materialize_trace,
    profile_spec,
)


@pytest.fixture(autouse=True)
def _clean_stream_cache():
    boundary_stream_cache_clear()
    yield
    boundary_stream_cache_clear()


def machine_tree_state(machine):
    """The integrity state a functional run leaves behind: the root
    register plus every persisted tree node byte-for-byte."""
    tree = machine.mee.tree
    if tree is None:
        return None
    tree.materialize_all()
    region = MetadataRegion.TREE
    return (
        tree.root_register,
        {key: tree.backend.read(region, key) for key in tree.backend.keys(region)},
    )


class TestFunctionalEquivalence:
    """Every registered protocol, both BMT disciplines, real crypto:
    the replayed MEE must end in the same state the direct walk does."""

    @pytest.mark.parametrize("integrity_mode", ["eager", "lazy"])
    @pytest.mark.parametrize("protocol", protocol_names())
    def test_replay_matches_direct(self, small_config, protocol, integrity_mode):
        trace = materialize_trace(profile_spec("parsec", "blackscholes", 600, 7))
        modified = protocol_uses_modified_os(protocol)

        direct_machine = build_machine(
            small_config, protocol, functional=True,
            seed=7, integrity_mode=integrity_mode,
        )
        direct = simulate(direct_machine, trace, seed=7)

        stream = compile_boundary_stream(
            trace, small_config, seed=7, modified_os=modified
        )
        replay_machine = build_machine(
            small_config, protocol, functional=True,
            seed=7, integrity_mode=integrity_mode,
        )
        replayed = simulate_from_stream(stream, replay_machine)

        assert replayed == direct
        assert machine_tree_state(replay_machine) == machine_tree_state(
            direct_machine
        )

    def test_flush_at_end_equivalence(self, small_config):
        trace = materialize_trace(profile_spec("parsec", "canneal", 600, 7))
        direct = simulate(
            build_machine(small_config, "strict", functional=True, seed=7),
            trace, seed=7, flush_llc_at_end=True,
        )
        stream = compile_boundary_stream(trace, small_config, seed=7)
        replayed = simulate_from_stream(
            stream,
            build_machine(small_config, "strict", functional=True, seed=7),
            flush_llc_at_end=True,
        )
        assert replayed == direct


class TestStreamContents:
    def test_event_kinds_and_flush_tail(self, small_config):
        trace = materialize_trace(profile_spec("parsec", "canneal", 600, 7))
        stream = compile_boundary_stream(trace, small_config, seed=7)
        assert isinstance(stream, BoundaryStream)
        assert stream.accesses == 600
        assert set(stream.kind) <= {EVENT_FILL, EVENT_WRITEBACK, EVENT_PERSIST}
        # The end-of-run flush tail sits after main_events, marked with
        # the sentinel pid, and is replayed only under flush_llc_at_end.
        assert stream.main_events <= len(stream)
        tail_pids = set(stream.pid[stream.main_events:])
        assert tail_pids <= {-1}

    def test_modified_os_changes_placement(self, small_config):
        """amnt++'s allocator restructuring must show up in the compiled
        physical addresses — one stream per OS variant, never shared."""
        trace = materialize_trace(profile_spec("parsec", "canneal", 2000, 7))
        stock = compile_boundary_stream(
            trace, small_config, seed=7, modified_os=False
        )
        modified = compile_boundary_stream(
            trace, small_config, seed=7, modified_os=True
        )
        assert list(stock.addr) != list(modified.addr)


class TestStreamCache:
    def test_same_spec_returns_same_object(self, small_config):
        spec = boundary_stream_spec(
            profile_spec("parsec", "blackscholes", 400, 7), small_config, seed=7
        )
        first = materialize_boundary_stream(spec, small_config)
        second = materialize_boundary_stream(spec, small_config)
        assert first is second
        assert boundary_stream_cache_size() == 1

    def test_geometry_change_forces_recompile(self, small_config):
        trace_spec = profile_spec("parsec", "blackscholes", 400, 7)
        base = boundary_stream_spec(trace_spec, small_config, seed=7)
        bigger_llc = replace(
            small_config,
            llc=replace(
                small_config.llc,
                capacity_bytes=small_config.llc.capacity_bytes * 2,
            ),
        )
        resized = boundary_stream_spec(trace_spec, bigger_llc, seed=7)
        assert resized != base
        first = materialize_boundary_stream(base, small_config)
        second = materialize_boundary_stream(resized, bigger_llc)
        assert first is not second
        assert boundary_stream_cache_size() == 2

    def test_metadata_geometry_is_not_in_the_key(self, small_config):
        """Configs differing only on the MEE side share one stream —
        the data side cannot observe the metadata-cache shape."""
        trace_spec = profile_spec("parsec", "blackscholes", 400, 7)
        other = replace(
            small_config,
            metadata_cache=replace(
                small_config.metadata_cache,
                capacity_bytes=small_config.metadata_cache.capacity_bytes * 2,
            ),
        )
        assert boundary_stream_spec(
            trace_spec, small_config, seed=7
        ) == boundary_stream_spec(trace_spec, other, seed=7)

    def test_precompile_counts_distinct_data_sides(self, small_config):
        cells = [
            SweepCell(
                protocol=name,
                trace=profile_spec("parsec", "blackscholes", 400, 7),
                seed=7,
                replay=True,
            )
            for name in ("volatile", "leaf", "amnt", "amnt++")
        ]
        # Three stock-OS protocols share one stream; amnt++ gets its own.
        assert precompile_streams(cells, small_config) == 2
        assert boundary_stream_cache_size() == 2


class TestSweepPaths:
    def test_run_protocol_sweep_replay_default_matches_direct(self, small_config):
        trace_spec = profile_spec("parsec", "bodytrack", 800, 7)
        protocols = ("volatile", "strict", "amnt", "amnt++")
        replayed = run_protocol_sweep(trace_spec, small_config, protocols, seed=7)
        direct = run_protocol_sweep(
            trace_spec, small_config, protocols, seed=7, replay=False
        )
        assert replayed == direct

    def test_parallel_replay_matches_serial_direct(self, small_config):
        cells = [
            SweepCell(
                protocol=name,
                trace=profile_spec("parsec", "bodytrack", 800, 7),
                seed=7,
                replay=True,
            )
            for name in ("volatile", "strict", "amnt")
        ]
        parallel = ParallelSweepRunner(workers=2).run(cells, small_config)
        serial = [
            run_cell(replace(cell, replay=False), small_config) for cell in cells
        ]
        assert parallel == serial

    def test_stream_spec_keys_off_protocol_os_variant(self, small_config):
        trace_spec = profile_spec("parsec", "bodytrack", 800, 7)
        amnt = SweepCell(protocol="amnt", trace=trace_spec, seed=7, replay=True)
        amntpp = SweepCell(
            protocol="amnt++", trace=trace_spec, seed=7, replay=True
        )
        leaf = SweepCell(protocol="leaf", trace=trace_spec, seed=7, replay=True)
        assert stream_spec_for(amnt, small_config) == stream_spec_for(
            leaf, small_config
        )
        assert stream_spec_for(amnt, small_config) != stream_spec_for(
            amntpp, small_config
        )


@pytest.mark.slow
class TestReferenceGridProperty:
    """The acceptance property: every cell of the full reference grid
    (3 benchmarks x 6 figure protocols, 20k accesses) is bit-identical
    through the compiled-replay path, in both integrity modes."""

    @pytest.mark.parametrize("integrity_mode", ["eager", "lazy"])
    def test_full_grid_bit_identical(self, integrity_mode):
        config = default_config()
        cells = [
            replace(cell, integrity_mode=integrity_mode)
            for cell in reference_cells()
        ]
        assert len(cells) == 18
        for cell in cells:
            direct = run_cell(cell, config)
            replayed = run_cell(replace(cell, replay=True), config)
            assert replayed == direct, (
                f"replay diverged for {cell.protocol}/{cell.trace.label()}"
            )
