"""Shared digest helpers: canonical-JSON digests and the legacy
manifest formulas (journal compatibility is load-bearing: resume
refuses a manifest whose digests moved)."""

from hashlib import sha256

from repro.config import default_config
from repro.sim.supervisor import build_manifest
from repro.util.fingerprint import (
    canonical_json,
    config_digest,
    digest_payload,
    grid_digest,
    sha256_hex,
)


class TestSha256Hex:
    def test_text_and_bytes_agree(self):
        assert sha256_hex("abc") == sha256_hex(b"abc")

    def test_matches_hashlib(self):
        assert sha256_hex("abc") == sha256(b"abc").hexdigest()


class TestCanonicalJson:
    def test_key_order_is_irrelevant(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1}
        )

    def test_tuple_and_list_agree(self):
        assert canonical_json({"xs": (1, 2, 3)}) == canonical_json(
            {"xs": [1, 2, 3]}
        )

    def test_no_whitespace(self):
        assert canonical_json({"a": [1, 2]}) == '{"a":[1,2]}'

    def test_dataclasses_reduce(self):
        config = default_config()
        assert canonical_json(config) == canonical_json(config)
        assert '"seed"' in canonical_json(config)


class TestDigestPayload:
    def test_stable_across_orderings(self):
        assert digest_payload({"b": 1, "a": (1, 2)}) == digest_payload(
            {"a": [1, 2], "b": 1}
        )

    def test_value_sensitivity(self):
        assert digest_payload({"a": 1}) != digest_payload({"a": 2})


class TestLegacyManifestFormulas:
    """The exact byte formulas the run journals have always hashed —
    change either and every existing journal stops resuming."""

    def test_config_digest_is_sha256_of_repr(self):
        config = default_config()
        assert config_digest(config) == sha256(
            repr(config).encode("utf-8")
        ).hexdigest()

    def test_grid_digest_is_sha256_of_joined_keys(self):
        keys = ["0000/amnt/a", "0001/leaf/b"]
        assert grid_digest(keys) == sha256(
            "\n".join(keys).encode("utf-8")
        ).hexdigest()

    def test_build_manifest_uses_shared_helpers(self):
        config = default_config()
        keys = ["0000/amnt/x", "0001/leaf/y"]
        manifest = build_manifest("exp", config, keys, {"p": 1})
        assert manifest["config_digest"] == config_digest(config)
        assert manifest["grid_digest"] == grid_digest(keys)
        assert manifest["cells"] == 2
