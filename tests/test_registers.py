"""Non-volatile on-chip registers."""

import pytest

from repro.persist.root_register import NonVolatileRegister, RegisterFile


class TestRegister:
    def test_write_read(self):
        register = NonVolatileRegister("root", 64)
        register.write(b"\x01" * 8, tag=(3, 5))
        assert register.read() == b"\x01" * 8
        assert register.tag == (3, 5)

    def test_write_without_tag_keeps_tag(self):
        register = NonVolatileRegister("root", 64)
        register.write(b"a", tag=(1, 0))
        register.write(b"b")
        assert register.tag == (1, 0)

    def test_oversized_write_rejected(self):
        register = NonVolatileRegister("tiny", 4)
        with pytest.raises(ValueError):
            register.write(b"\x00" * 5)


class TestRegisterFile:
    def test_allocate_and_get(self):
        registers = RegisterFile()
        registers.allocate("bmt_root", 64)
        assert registers.get("bmt_root").size_bytes == 64

    def test_double_allocation_rejected(self):
        registers = RegisterFile()
        registers.allocate("r", 8)
        with pytest.raises(ValueError):
            registers.allocate("r", 8)

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ValueError):
            RegisterFile().allocate("r", 0)

    def test_total_bytes_sums_allocation(self):
        registers = RegisterFile()
        registers.allocate("a", 64)
        registers.allocate("b", 8)
        assert registers.total_bytes() == 72

    def test_crash_preserves_values(self):
        registers = RegisterFile()
        register = registers.allocate("root", 64)
        register.write(b"persist-me")
        registers.crash()
        assert register.read() == b"persist-me"

    def test_names_sorted(self):
        registers = RegisterFile()
        registers.allocate("b", 1)
        registers.allocate("a", 1)
        assert registers.names() == ["a", "b"]
