"""Statistics registry semantics."""

import pytest

from repro.util.stats import StatCounter, StatRegistry


class TestStatCounter:
    def test_starts_at_zero(self):
        assert StatCounter("x").value == 0

    def test_add(self):
        counter = StatCounter("x")
        counter.add()
        counter.add(5)
        assert counter.value == 6

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            StatCounter("x").add(-1)

    def test_reset(self):
        counter = StatCounter("x", value=9)
        counter.reset()
        assert counter.value == 0


class TestStatRegistry:
    def test_prefix_applied(self):
        registry = StatRegistry("nvm")
        registry.add("reads", 3)
        assert registry.get("reads") == 3
        assert dict(registry.items()) == {"nvm.reads": 3}

    def test_get_untouched_is_zero(self):
        assert StatRegistry().get("nothing") == 0

    def test_counter_identity_is_stable(self):
        registry = StatRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_snapshot_and_diff(self):
        registry = StatRegistry()
        registry.add("a", 2)
        snap = registry.snapshot()
        registry.add("a", 3)
        registry.add("b", 1)
        delta = registry.diff(snap)
        assert delta == {"a": 3, "b": 1}

    def test_snapshot_is_a_copy(self):
        registry = StatRegistry()
        registry.add("a")
        snap = registry.snapshot()
        registry.add("a")
        assert snap["a"] == 1

    def test_reset_zeroes_everything(self):
        registry = StatRegistry()
        registry.add("a", 7)
        registry.reset()
        assert registry.get("a") == 0

    def test_merge_from(self):
        left, right = StatRegistry(), StatRegistry()
        left.add("a", 1)
        right.add("a", 2)
        right.add("b", 5)
        left.merge_from(right)
        assert left.get("a") == 3
        assert left.get("b") == 5

    def test_len_counts_counters(self):
        registry = StatRegistry()
        registry.add("a")
        registry.add("b")
        assert len(registry) == 2
