"""MEE edge cases: address boundaries, tiny machines, determinism."""

import pytest

from repro.config import default_config
from repro.core.mee import MemoryEncryptionEngine
from repro.core.protocol import make_protocol, protocol_names
from repro.errors import AddressError
from repro.util.units import MB


@pytest.fixture
def config():
    return default_config(capacity_bytes=64 * MB)


class TestAddressBoundaries:
    def test_first_and_last_block(self, config):
        mee = MemoryEncryptionEngine(
            config, make_protocol("leaf", config), functional=True
        )
        last = config.pcm.capacity_bytes - 64
        mee.write_block(0, data=b"\x01" * 64)
        mee.write_block(last, data=b"\x02" * 64)
        assert mee.read_block_data(0) == b"\x01" * 64
        assert mee.read_block_data(last) == b"\x02" * 64

    def test_out_of_range_rejected(self, config):
        mee = MemoryEncryptionEngine(config, make_protocol("leaf", config))
        with pytest.raises(AddressError):
            mee.read_block(config.pcm.capacity_bytes)
        with pytest.raises(AddressError):
            mee.write_block(-64)

    def test_unaligned_addresses_hit_the_containing_block(self, config):
        mee = MemoryEncryptionEngine(
            config, make_protocol("leaf", config), functional=True
        )
        mee.write_block(100, data=b"\x03" * 64)  # block 1
        assert mee.read_block_data(64) == b"\x03" * 64


class TestTinyMachine:
    def test_single_page_memory_rejected(self):
        """Degenerate geometry: one page gives a one-node tree, which
        cannot host any subtree level — configuration must refuse."""
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="exceeds tree depth"):
            default_config(capacity_bytes=4096)

    def test_two_level_machine_runs_leaf(self):
        config = default_config(capacity_bytes=1 * MB, subtree_level=2)
        mee = MemoryEncryptionEngine(
            config, make_protocol("leaf", config), functional=True
        )
        mee.write_block(0, data=b"\x09" * 64)
        assert mee.read_block_data(0) == b"\x09" * 64


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(set(protocol_names()) - {"amnt++"}))
    def test_identical_runs_produce_identical_traffic(self, config, name):
        def run():
            mee = MemoryEncryptionEngine(config, make_protocol(name, config))
            total = 0
            for i in range(120):
                total += mee.write_block((i % 16) * 4096)
                total += mee.read_block(((i * 7) % 16) * 4096)
            return total, mee.nvm.stats.snapshot()

        assert run() == run()
