"""Hardware area accounting (Table 3)."""

import pytest

from repro.config import default_config
from repro.core.area import AreaOverhead, protocol_area_table
from repro.util.units import KB


@pytest.fixture
def table():
    rows = protocol_area_table(default_config())
    return {row.protocol: row for row in rows}


class TestTable3:
    def test_default_rows_are_the_papers(self, table):
        assert set(table) == {"bmf", "anubis", "amnt"}

    def test_bmf_row(self, table):
        # 4 kB NV root-set cache, 768 B of frequency counters.
        assert table["bmf"].nonvolatile_on_chip_bytes == 4 * KB
        assert table["bmf"].volatile_on_chip_bytes == 768
        assert table["bmf"].in_memory_bytes == 0

    def test_anubis_row(self, table):
        # 64 B shadow root, 37 kB shadow cache, 37 kB shadow table.
        assert table["anubis"].nonvolatile_on_chip_bytes == 64
        assert table["anubis"].volatile_on_chip_bytes == 37 * KB
        assert table["anubis"].in_memory_bytes == 37 * KB

    def test_amnt_row(self, table):
        # 64 B subtree register, 96 B history buffer, nothing in memory.
        assert table["amnt"].nonvolatile_on_chip_bytes == 64
        assert table["amnt"].volatile_on_chip_bytes == 96
        assert table["amnt"].in_memory_bytes == 0

    def test_amnt_wins_every_column_except_nv_tie(self, table):
        amnt, anubis, bmf = table["amnt"], table["anubis"], table["bmf"]
        assert amnt.nonvolatile_on_chip_bytes <= anubis.nonvolatile_on_chip_bytes
        assert amnt.nonvolatile_on_chip_bytes < bmf.nonvolatile_on_chip_bytes
        assert amnt.volatile_on_chip_bytes < anubis.volatile_on_chip_bytes
        assert amnt.volatile_on_chip_bytes < bmf.volatile_on_chip_bytes
        assert amnt.in_memory_bytes < anubis.in_memory_bytes


class TestFormatting:
    def test_row_rendering(self):
        area = AreaOverhead(
            "amnt",
            nonvolatile_on_chip_bytes=64,
            volatile_on_chip_bytes=96,
            in_memory_bytes=0,
        )
        row = area.row()
        assert row["nv_on_chip"] == "64B"
        assert row["vol_on_chip"] == "96B"
        assert row["in_memory"] == "-"

    def test_custom_protocol_list(self):
        rows = protocol_area_table(default_config(), ["leaf", "amnt"])
        assert [row.protocol for row in rows] == ["leaf", "amnt"]
        # Baselines add no hardware.
        assert rows[0].nonvolatile_on_chip_bytes == 0
