"""The analytic recovery-bandwidth model behind Table 4."""

import pytest

from repro.config import PCMConfig
from repro.mem.bandwidth import RecoveryBandwidthModel, effective_recovery_bandwidth
from repro.util.units import GB, TB


@pytest.fixture
def model():
    return RecoveryBandwidthModel(PCMConfig())


class TestBandwidthDerivation:
    def test_read_bandwidth_is_12gbs(self, model):
        assert model.read_bandwidth_bytes_per_s == 12 * GB

    def test_write_share_is_one_eighth(self, model):
        assert model.write_bandwidth_bytes_per_s == 12 * GB / 8

    def test_effective_bandwidth_helper(self):
        assert effective_recovery_bandwidth(PCMConfig()) == pytest.approx(12.0)


class TestByteAccounting:
    def test_counter_ratio_is_one_64th(self, model):
        assert model.counter_bytes(64 * GB) == GB

    def test_inner_tree_is_geometric_tail(self, model):
        # leaves/(arity-1): 1 GB of counters -> 1/7 GB of inner nodes.
        assert model.tree_bytes(64 * GB) == pytest.approx(GB / 7)


class TestRebuildTimes:
    def test_leaf_2tb_matches_table4(self, model):
        # Paper Table 4: leaf persistence, 2 TB -> 6222.21 ms.
        assert model.full_memory_rebuild_ms(2 * TB) == pytest.approx(
            6222.21, rel=1e-4
        )

    def test_leaf_scales_linearly_with_memory(self, model):
        t2 = model.full_memory_rebuild_ms(2 * TB)
        t16 = model.full_memory_rebuild_ms(16 * TB)
        t128 = model.full_memory_rebuild_ms(128 * TB)
        assert t16 == pytest.approx(8 * t2)
        assert t128 == pytest.approx(64 * t2)

    def test_zero_stale_takes_zero_time(self, model):
        assert model.rebuild_seconds(0) == 0.0

    def test_subtree_scales_with_stale_fraction(self, model):
        full = model.rebuild_milliseconds(2 * TB)
        eighth = model.rebuild_milliseconds(2 * TB / 8)
        assert eighth == pytest.approx(full / 8)

    def test_fixed_traffic(self, model):
        # 12 GB at 12 GB/s is one second.
        assert model.fixed_traffic_ms(12 * GB) == pytest.approx(1000.0)
