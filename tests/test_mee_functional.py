"""Functional MEE: real encryption, MACs, verification, tampering."""

import pytest

from repro.config import default_config
from repro.core.mee import MemoryEncryptionEngine
from repro.core.protocol import make_protocol
from repro.errors import IntegrityError
from repro.mem.backend import MetadataRegion
from repro.util.units import MB


@pytest.fixture
def mee():
    config = default_config(capacity_bytes=64 * MB)
    return MemoryEncryptionEngine(
        config, make_protocol("leaf", config), functional=True
    )


class TestReadWrite:
    def test_write_then_read_roundtrip(self, mee):
        mee.write_block(4096, data=b"\xabsecret".ljust(64, b"\x00"))
        assert mee.read_block_data(4096) == b"\xabsecret".ljust(64, b"\x00")

    def test_data_stored_encrypted(self, mee):
        plaintext = b"\x11" * 64
        mee.write_block(0, data=plaintext)
        stored = mee.nvm.backend.read(MetadataRegion.DATA, 0)
        assert stored != plaintext

    def test_rewrites_change_ciphertext(self, mee):
        """Temporal uniqueness: the same plaintext written twice to the
        same address encrypts differently (fresh minor counter)."""
        mee.write_block(0, data=b"\x22" * 64)
        first = mee.nvm.backend.read(MetadataRegion.DATA, 0)
        mee.write_block(0, data=b"\x22" * 64)
        second = mee.nvm.backend.read(MetadataRegion.DATA, 0)
        assert first != second

    def test_same_plaintext_different_addresses_differ(self, mee):
        """Spatial uniqueness (splicing defense at the pad level)."""
        mee.write_block(0, data=b"\x33" * 64)
        mee.write_block(64, data=b"\x33" * 64)
        a = mee.nvm.backend.read(MetadataRegion.DATA, 0)
        b = mee.nvm.backend.read(MetadataRegion.DATA, 1)
        assert a != b

    def test_uninitialized_read_is_zeros(self, mee):
        assert mee.read_block_data(8 * 4096) == bytes(64)

    def test_wrong_length_write_rejected(self, mee):
        with pytest.raises(ValueError):
            mee.write_block(0, data=b"short")

    def test_read_block_data_requires_functional(self):
        config = default_config(capacity_bytes=64 * MB)
        timing = MemoryEncryptionEngine(config, make_protocol("leaf", config))
        with pytest.raises(RuntimeError):
            timing.read_block_data(0)


class TestCounterOverflow:
    def test_minor_overflow_triggers_page_reencryption(self, mee):
        mee.write_block(0, data=b"\x01" * 64)  # neighbor in same page
        for _ in range(128):
            mee.write_block(64, data=b"\x02" * 64)
        assert mee.stats.get("minor_overflows") == 1
        # The neighbor re-encrypted under the new major still decrypts.
        assert mee.read_block_data(0) == b"\x01" * 64
        assert mee.read_block_data(64) == b"\x02" * 64


class TestTamperDetection:
    def test_corrupted_data_detected(self, mee):
        mee.write_block(0, data=b"\x42" * 64)
        mee.nvm.backend.corrupt(MetadataRegion.DATA, 0)
        with pytest.raises(IntegrityError):
            mee.read_block_data(0)

    def test_spliced_data_detected(self, mee):
        """Moving valid ciphertext+MAC to another address must fail."""
        mee.write_block(0, data=b"\x42" * 64)
        mee.write_block(64, data=b"\x43" * 64)
        backend = mee.nvm.backend
        backend.write(
            MetadataRegion.DATA, 1, backend.read(MetadataRegion.DATA, 0)
        )
        backend.write(
            MetadataRegion.HMACS, 1, backend.read(MetadataRegion.HMACS, 0, 8)
        )
        # Flush the cached MAC so the read sees the spliced one.
        mee._volatile_hmacs.clear()
        with pytest.raises(IntegrityError):
            mee.read_block_data(64)

    def test_replayed_block_detected(self, mee):
        """Replaying an older (ciphertext, MAC) pair at the same address
        fails because the counter has moved on."""
        mee.write_block(0, data=b"v1".ljust(64, b"\x00"))
        backend = mee.nvm.backend
        old_data = backend.read(MetadataRegion.DATA, 0)
        old_mac = backend.read(MetadataRegion.HMACS, 0, 8)
        mee.write_block(0, data=b"v2".ljust(64, b"\x00"))
        backend.write(MetadataRegion.DATA, 0, old_data)
        backend.write(MetadataRegion.HMACS, 0, old_mac)
        mee._volatile_hmacs.clear()
        with pytest.raises(IntegrityError):
            mee.read_block_data(0)

    def test_tampered_persisted_counter_detected_after_crash(self, mee):
        mee.write_block(0, data=b"\x55" * 64)
        mee.crash()
        mee.protocol.recover(mee.tree)
        mee.nvm.backend.corrupt(MetadataRegion.COUNTERS, 0)
        with pytest.raises(IntegrityError):
            mee.read_block_data(0)


class TestRootRegisterDiscipline:
    def test_root_register_tracks_every_write(self, mee):
        before = mee.tree.root_register
        mee.write_block(0, data=b"\x01" * 64)
        after_one = mee.tree.root_register
        mee.write_block(4096, data=b"\x02" * 64)
        assert before != after_one != mee.tree.root_register
