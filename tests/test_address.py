"""Physical address decoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AddressError
from repro.mem.address import AddressSpace
from repro.util.units import GB, MB


@pytest.fixture
def space():
    return AddressSpace(capacity_bytes=8 * GB)


class TestBounds:
    def test_check_accepts_valid(self, space):
        assert space.check(0) == 0
        assert space.check(8 * GB - 1) == 8 * GB - 1

    def test_check_rejects_out_of_range(self, space):
        with pytest.raises(AddressError):
            space.check(8 * GB)
        with pytest.raises(AddressError):
            space.check(-1)

    def test_contains(self, space):
        assert space.contains(123)
        assert not space.contains(8 * GB)

    def test_capacity_must_be_whole_pages(self):
        with pytest.raises(AddressError):
            AddressSpace(capacity_bytes=4096 + 64)


class TestDecomposition:
    def test_block_index(self, space):
        assert space.block_index(0) == 0
        assert space.block_index(63) == 0
        assert space.block_index(64) == 1

    def test_block_base(self, space):
        assert space.block_base(100) == 64

    def test_page_index(self, space):
        assert space.page_index(4095) == 0
        assert space.page_index(4096) == 1

    def test_block_offset_in_page_covers_0_to_63(self, space):
        assert space.block_offset_in_page(0) == 0
        assert space.block_offset_in_page(4032) == 63
        assert space.block_offset_in_page(4096) == 0

    def test_addr_of_block_roundtrip(self, space):
        assert space.block_index(space.addr_of_block(12345)) == 12345

    def test_addr_of_page_roundtrip(self, space):
        assert space.page_index(space.addr_of_page(777)) == 777


class TestTotals:
    def test_counts(self):
        space = AddressSpace(capacity_bytes=64 * MB)
        assert space.num_blocks == 64 * MB // 64
        assert space.num_pages == 64 * MB // 4096
        assert space.blocks_per_page == 64


@given(addr=st.integers(min_value=0, max_value=8 * GB - 1))
def test_block_and_page_consistency(addr):
    """A block's page equals the address's page; offsets stay in range."""
    space = AddressSpace(capacity_bytes=8 * GB)
    block = space.block_index(addr)
    page = space.page_index(addr)
    assert block // space.blocks_per_page == page
    assert 0 <= space.block_offset_in_page(addr) < space.blocks_per_page
    assert space.block_base(addr) <= addr < space.block_base(addr) + 64
