"""Remaining edge coverage: empty traces, CLI experiments, model knobs."""

import pytest

from repro.cli import main
from repro.config import PCMConfig
from repro.mem.bandwidth import RecoveryBandwidthModel
from repro.workloads.trace import Trace


class TestEmptyTrace:
    def test_statistics_degrade_gracefully(self):
        trace = Trace("empty")
        assert len(trace) == 0
        assert trace.write_fraction() == 0.0
        assert trace.footprint_pages() == 0
        assert trace.pids() == []

    def test_simulating_an_empty_trace(self):
        from repro.config import default_config
        from repro.sim.engine import simulate
        from repro.sim.machine import build_machine
        from repro.util.units import MB

        machine = build_machine(default_config(capacity_bytes=64 * MB), "leaf")
        result = simulate(machine, Trace("empty"), seed=1)
        assert result.cycles == 0
        assert result.accesses == 0
        assert result.cycles_per_access() == 0.0


class TestCLIExperiments:
    def test_fig3_via_cli(self, capsys):
        assert main(["experiment", "fig3", "--accesses", "2000"]) == 0
        out = capsys.readouterr().out
        assert "lbm (single)" in out
        assert "top_region_share" in out

    def test_table3_and_table4_via_experiment_alias(self, capsys):
        assert main(["experiment", "table3"]) == 0
        assert "96B" in capsys.readouterr().out
        assert main(["experiment", "table4"]) == 0
        assert "6222.22" in capsys.readouterr().out


class TestBandwidthModelKnobs:
    def test_arity_changes_write_share(self):
        pcm = PCMConfig()
        arity8 = RecoveryBandwidthModel(pcm, arity=8)
        arity4 = RecoveryBandwidthModel(pcm, arity=4)
        # With fewer children per parent, relatively more write traffic.
        assert (
            arity4.write_bandwidth_bytes_per_s
            > arity8.write_bandwidth_bytes_per_s
        )

    def test_counter_ratio_scales_leaf_bytes(self):
        pcm = PCMConfig()
        dense = RecoveryBandwidthModel(pcm, counter_ratio=1 / 32)
        sparse = RecoveryBandwidthModel(pcm, counter_ratio=1 / 64)
        assert dense.counter_bytes(1 << 30) == 2 * sparse.counter_bytes(1 << 30)

    def test_channel_count_scales_bandwidth(self):
        slow = RecoveryBandwidthModel(PCMConfig(channels=3))
        fast = RecoveryBandwidthModel(PCMConfig(channels=6))
        assert fast.read_bandwidth_bytes_per_s == 2 * slow.read_bandwidth_bytes_per_s
        assert slow.full_memory_rebuild_ms(1 << 40) == pytest.approx(
            2 * fast.full_memory_rebuild_ms(1 << 40)
        )


class TestDefaultLineWidths:
    def test_counter_block_fits_metadata_line(self):
        from repro.crypto.counters import ENCODED_BYTES
        from repro.integrity.bmt import NODE_BYTES

        assert ENCODED_BYTES == NODE_BYTES == 64

    def test_macs_per_hmac_line(self):
        from repro.core.mee import MACS_PER_LINE

        # 8 x 8 B MACs pack one 64 B line.
        assert MACS_PER_LINE * 8 == 64
