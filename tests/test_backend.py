"""Sparse NVM backing store."""

import pytest

from repro.mem.backend import MetadataRegion, SparseMemory


class TestReadWrite:
    def test_unwritten_reads_zero(self):
        memory = SparseMemory()
        assert memory.read(MetadataRegion.DATA, 5) == bytes(64)

    def test_unwritten_custom_width(self):
        memory = SparseMemory()
        assert memory.read(MetadataRegion.HMACS, 5, width=8) == bytes(8)

    def test_write_then_read(self):
        memory = SparseMemory()
        memory.write(MetadataRegion.DATA, 5, b"\x01" * 64)
        assert memory.read(MetadataRegion.DATA, 5) == b"\x01" * 64

    def test_regions_are_namespaces(self):
        memory = SparseMemory()
        memory.write(MetadataRegion.DATA, 5, b"\x01" * 64)
        assert memory.read(MetadataRegion.COUNTERS, 5) == bytes(64)

    def test_overwrite(self):
        memory = SparseMemory()
        memory.write(MetadataRegion.TREE, (2, 1), b"a" * 64)
        memory.write(MetadataRegion.TREE, (2, 1), b"b" * 64)
        assert memory.read(MetadataRegion.TREE, (2, 1)) == b"b" * 64

    def test_write_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            SparseMemory().write(MetadataRegion.DATA, 0, "text")

    def test_contains_and_erase(self):
        memory = SparseMemory()
        memory.write(MetadataRegion.DATA, 1, b"x")
        assert memory.contains(MetadataRegion.DATA, 1)
        memory.erase(MetadataRegion.DATA, 1)
        assert not memory.contains(MetadataRegion.DATA, 1)

    def test_lines_written_counts_footprint(self):
        memory = SparseMemory()
        for i in range(10):
            memory.write(MetadataRegion.DATA, i, b"x")
        memory.write(MetadataRegion.DATA, 0, b"y")  # overwrite, not new
        assert memory.lines_written(MetadataRegion.DATA) == 10


class TestSnapshotAndCorrupt:
    def test_snapshot_is_independent(self):
        memory = SparseMemory()
        memory.write(MetadataRegion.DATA, 1, b"old")
        frozen = memory.snapshot()
        memory.write(MetadataRegion.DATA, 1, b"new")
        assert frozen.read(MetadataRegion.DATA, 1, width=3) == b"old"

    def test_corrupt_flips_first_byte_by_default(self):
        memory = SparseMemory()
        memory.write(MetadataRegion.DATA, 1, bytes(64))
        old, new = memory.corrupt(MetadataRegion.DATA, 1)
        assert old == bytes(64)
        assert new[0] == 0xFF
        assert memory.read(MetadataRegion.DATA, 1) == new

    def test_corrupt_with_explicit_value(self):
        memory = SparseMemory()
        memory.write(MetadataRegion.DATA, 1, b"a" * 64)
        _, new = memory.corrupt(MetadataRegion.DATA, 1, b"b" * 64)
        assert new == b"b" * 64
