"""Bonsai Merkle Forest: coverage invariant, prune/merge, recovery."""

import pytest

from repro.config import default_config
from repro.core.mee import MemoryEncryptionEngine
from repro.core.protocol import make_protocol
from repro.core.recovery import CrashInjector
from repro.mem.backend import MetadataRegion
from repro.mem.bandwidth import RecoveryBandwidthModel
from repro.util.units import MB, TB


@pytest.fixture
def config():
    return default_config(capacity_bytes=64 * MB)


def engine_for(config, functional=False):
    return MemoryEncryptionEngine(
        config, make_protocol("bmf", config), functional=functional
    )


class TestRootSet:
    def test_starts_with_global_root(self, config):
        mee = engine_for(config)
        assert mee.protocol.persistent_roots() == [(1, 0)]

    def test_initial_coverage_is_total(self, config):
        mee = engine_for(config)
        assert mee.protocol.covers_all_leaves()

    def test_nearest_root_is_global_initially(self, config):
        mee = engine_for(config)
        path = mee.ancestor_path(0)
        assert mee.protocol.nearest_persistent_root(path) == (1, 0)

    def test_roots_act_as_read_trust_anchors(self, config):
        mee = engine_for(config)
        assert mee.protocol.trusted_register_node((1, 0), 0)
        assert not mee.protocol.trusted_register_node((2, 0), 0)


class TestWriteCosts:
    def test_initial_writes_are_near_strict(self, config):
        bmf = engine_for(config)
        strict = MemoryEncryptionEngine(config, make_protocol("strict", config))
        # With only the global root, BMF persists the whole path except
        # the root itself.
        bmf.write_block(0)
        strict.write_block(0)
        levels = bmf.geometry.num_node_levels
        assert bmf.nvm.persists(MetadataRegion.TREE) == levels - 1
        assert strict.nvm.persists(MetadataRegion.TREE) == levels

    def test_counter_and_hmac_always_persist(self, config):
        mee = engine_for(config)
        mee.write_block(0)
        assert mee.nvm.persists(MetadataRegion.COUNTERS) == 1
        assert mee.nvm.persists(MetadataRegion.HMACS) == 1


class TestAdaptation:
    def run_hot_writes(self, mee, writes):
        # Hammer one page so the hot path dominates the interval count.
        for i in range(writes):
            mee.write_block((i % 4) * 4096)

    def test_pruning_shortens_hot_persist_path(self, config):
        mee = engine_for(config)
        interval = config.bmf.adjust_interval
        self.run_hot_writes(mee, interval + 1)
        assert mee.protocol.stats.get("prunes") >= 1
        roots = mee.protocol.persistent_roots()
        assert (1, 0) not in roots
        # The root was replaced by its children (the 64 MB tree's root
        # has 4 children, fewer than the arity).
        assert roots == list(mee.geometry.children((1, 0)))

    def test_coverage_invariant_survives_adaptation(self, config):
        mee = engine_for(config)
        interval = config.bmf.adjust_interval
        self.run_hot_writes(mee, 6 * interval)
        assert mee.protocol.covers_all_leaves()

    def test_persist_path_shrinks_after_prunes(self, config):
        mee = engine_for(config)
        interval = config.bmf.adjust_interval
        before = mee.write_block(0)
        self.run_hot_writes(mee, 6 * interval)
        after = mee.write_block(0)
        assert after < before

    def test_root_set_respects_capacity(self, config):
        mee = engine_for(config)
        self.run_hot_writes(mee, 12 * config.bmf.adjust_interval)
        assert len(mee.protocol.persistent_roots()) <= config.bmf.root_set_entries


class TestRecovery:
    def test_instant_recovery_model(self, config):
        model = RecoveryBandwidthModel(config.pcm)
        protocol = make_protocol("bmf", config)
        assert protocol.recovery_ms(model, 2 * TB) == 0.0

    def test_functional_recovery_with_default_root(self, config):
        mee = engine_for(config, functional=True)
        payload = b"bmf".ljust(64, b"\x00")
        mee.write_block(0, data=payload)
        outcome = CrashInjector(mee).crash_and_recover()
        assert outcome.ok
        assert mee.read_block_data(0) == payload

    def test_functional_recovery_after_pruning(self, config):
        mee = engine_for(config, functional=True)
        interval = config.bmf.adjust_interval
        for i in range(interval + 8):
            mee.write_block((i % 4) * 4096, data=bytes([i % 251]) * 64)
        assert mee.protocol.stats.get("prunes") >= 1
        outcome = CrashInjector(mee).crash_and_recover()
        assert outcome.ok
        assert mee.read_block_data(0) is not None


class TestArea:
    def test_table3_numbers(self, config):
        mee = engine_for(config)
        area = mee.protocol.area_overhead()
        assert area.nonvolatile_on_chip_bytes == 4 * 1024
        assert area.volatile_on_chip_bytes == 768
        assert area.in_memory_bytes == 0
