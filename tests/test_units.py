"""Unit helpers: sizes and time conversion."""

import pytest

from repro.util.units import (
    GB,
    KB,
    MB,
    TB,
    cycles_from_ns,
    format_bytes,
    ns_from_cycles,
)


class TestSizeConstants:
    def test_binary_prefixes(self):
        assert KB == 1024
        assert MB == 1024 * KB
        assert GB == 1024 * MB
        assert TB == 1024 * GB


class TestCyclesFromNs:
    def test_paper_read_latency_at_2ghz(self):
        # 305 ns at 2 GHz is 610 cycles (Table 1's PCM read).
        assert cycles_from_ns(305.0, clock_ghz=2.0) == 610

    def test_paper_write_latency_at_2ghz(self):
        assert cycles_from_ns(391.0, clock_ghz=2.0) == 782

    def test_rounds_up_partial_cycles(self):
        assert cycles_from_ns(0.4, clock_ghz=2.0) == 1

    def test_zero_is_zero(self):
        assert cycles_from_ns(0.0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            cycles_from_ns(-1.0)

    def test_roundtrip_with_ns_from_cycles(self):
        assert ns_from_cycles(cycles_from_ns(100.0, 2.0), 2.0) == 100.0

    def test_ns_from_cycles_rejects_negative(self):
        with pytest.raises(ValueError):
            ns_from_cycles(-5)


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(96) == "96B"

    def test_kilobytes(self):
        assert format_bytes(64 * KB) == "64.0KB"

    def test_megabytes(self):
        assert format_bytes(128 * MB) == "128.0MB"

    def test_terabytes(self):
        assert format_bytes(2 * TB) == "2.0TB"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_bytes(-1)
