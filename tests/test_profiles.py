"""PARSEC and SPEC profile registries."""

import pytest

from repro.workloads.parsec import (
    MULTIPROGRAM_PAIRS,
    PARSEC_PROFILES,
    parsec_names,
    parsec_profile,
)
from repro.workloads.spec import SPEC_PROFILES, spec_names, spec_profile


class TestParsecRegistry:
    def test_thirteen_benchmarks(self):
        assert len(PARSEC_PROFILES) == 13

    def test_paper_benchmarks_present(self):
        for name in (
            "blackscholes", "bodytrack", "canneal", "fluidanimate",
            "freqmine", "streamcluster", "swaptions", "x264",
        ):
            assert name in PARSEC_PROFILES

    def test_lookup(self):
        assert parsec_profile("canneal").name == "canneal"

    def test_unknown_name_helpful_error(self):
        with pytest.raises(KeyError, match="unknown PARSEC"):
            parsec_profile("nope")

    def test_names_sorted(self):
        assert parsec_names() == sorted(parsec_names())

    def test_canneal_is_pointer_chasing(self):
        # The characteristic the paper leans on: essentially no
        # sequential locality, weak hot set, memory bound.
        canneal = parsec_profile("canneal")
        assert canneal.sequential_fraction < 0.1
        assert canneal.think_cycles < 15

    def test_fluidanimate_is_write_intensive(self):
        assert parsec_profile("fluidanimate").write_fraction >= 0.35

    def test_swaptions_is_cache_resident(self):
        assert parsec_profile("swaptions").footprint_bytes <= 2 * 1024 * 1024

    def test_multiprogram_pairs_are_the_papers(self):
        assert ("bodytrack", "fluidanimate") in MULTIPROGRAM_PAIRS
        assert ("swaptions", "streamcluster") in MULTIPROGRAM_PAIRS
        assert ("x264", "freqmine") in MULTIPROGRAM_PAIRS

    def test_pairs_reference_known_profiles(self):
        for a, b in MULTIPROGRAM_PAIRS:
            assert a in PARSEC_PROFILES and b in PARSEC_PROFILES


class TestSpecRegistry:
    def test_benchmark_count(self):
        assert len(SPEC_PROFILES) == 18

    def test_paper_highlighted_benchmarks_present(self):
        for name in ("xz", "lbm", "deepsjeng", "cactuBSSN", "mcf"):
            assert name in SPEC_PROFILES

    def test_lookup(self):
        assert spec_profile("xz").name == "xz"

    def test_unknown_name_helpful_error(self):
        with pytest.raises(KeyError, match="unknown SPEC"):
            spec_profile("nope")

    def test_names_sorted(self):
        assert spec_names() == sorted(spec_names())

    def test_xz_is_most_write_intensive(self):
        # Section 6.5: "xz, the most write memory intensive benchmark".
        xz = spec_profile("xz")
        assert xz.write_fraction == max(
            profile.write_fraction for profile in SPEC_PROFILES.values()
        )

    def test_read_intensive_benchmarks(self):
        # cactuBSSN and mcf are "mostly read memory-intensive".
        for name in ("cactuBSSN", "mcf"):
            profile = SPEC_PROFILES[name]
            assert profile.write_fraction <= 0.10
            assert profile.think_cycles <= 10


class TestProfileSanity:
    @pytest.mark.parametrize(
        "profile",
        list(PARSEC_PROFILES.values()) + list(SPEC_PROFILES.values()),
        ids=lambda profile: profile.name,
    )
    def test_every_profile_generates(self, profile):
        from repro.workloads.synthetic import generate_trace

        trace = generate_trace(profile.scaled(accesses=200), seed=0)
        assert len(trace) == 200
