"""Split counters: encode/decode, bumping, overflow."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.counters import (
    ENCODED_BYTES,
    MINOR_LIMIT,
    MINORS_PER_BLOCK,
    CounterBlock,
)


class TestConstruction:
    def test_defaults_are_zero(self):
        block = CounterBlock()
        assert block.major == 0
        assert block.minors == [0] * 64
        assert block.is_zero()

    def test_encoded_width_is_one_line(self):
        # 8 B major + 64 x 7 b minors = exactly 64 B.
        assert ENCODED_BYTES == 64
        assert len(CounterBlock().encode()) == 64

    def test_rejects_wrong_minor_count(self):
        with pytest.raises(ValueError):
            CounterBlock(minors=[0] * 63)

    def test_rejects_out_of_range_minor(self):
        with pytest.raises(ValueError):
            CounterBlock(minors=[128] + [0] * 63)

    def test_rejects_negative_major(self):
        with pytest.raises(ValueError):
            CounterBlock(major=-1)


class TestBump:
    def test_bump_increments_one_minor(self):
        block = CounterBlock()
        overflowed = block.bump(5)
        assert not overflowed
        assert block.minors[5] == 1
        assert block.minors[4] == 0
        assert block.major == 0

    def test_counter_for_reads_pair(self):
        block = CounterBlock(major=3)
        block.bump(7)
        assert block.counter_for(7) == (3, 1)

    def test_overflow_bumps_major_and_resets(self):
        block = CounterBlock(minors=[MINOR_LIMIT] * MINORS_PER_BLOCK)
        overflowed = block.bump(0)
        assert overflowed
        assert block.major == 1
        assert block.minors[0] == 1  # the write that overflowed counts
        assert all(minor == 0 for minor in block.minors[1:])

    def test_127_bumps_then_overflow(self):
        block = CounterBlock()
        for _ in range(MINOR_LIMIT):
            assert not block.bump(9)
        assert block.bump(9)  # the 128th write overflows


class TestCopy:
    def test_copy_is_independent(self):
        block = CounterBlock()
        clone = block.copy()
        clone.bump(0)
        assert block.minors[0] == 0


class TestWireFormat:
    def test_zero_line_decodes_to_zero_block(self):
        assert CounterBlock.decode(bytes(64)).is_zero()

    def test_decode_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            CounterBlock.decode(bytes(63))

    @given(
        major=st.integers(min_value=0, max_value=2**64 - 1),
        minors=st.lists(
            st.integers(min_value=0, max_value=MINOR_LIMIT),
            min_size=64,
            max_size=64,
        ),
    )
    def test_encode_decode_roundtrip(self, major, minors):
        block = CounterBlock(major=major, minors=minors)
        assert CounterBlock.decode(block.encode()) == block

    def test_distinct_blocks_encode_distinct(self):
        one = CounterBlock()
        other = CounterBlock()
        other.bump(0)
        assert one.encode() != other.encode()
