"""Triad-NVM and Persist-Level Parallelism comparators."""

import pytest

from repro.config import TriadConfig, default_config
from repro.core.mee import MemoryEncryptionEngine
from repro.core.protocol import make_protocol
from repro.core.recovery import CrashInjector
from repro.errors import ConfigError
from repro.mem.backend import MetadataRegion
from repro.util.units import MB


@pytest.fixture
def config():
    return default_config(capacity_bytes=64 * MB)


def engine_for(config, name, functional=False):
    return MemoryEncryptionEngine(
        config, make_protocol(name, config), functional=functional
    )


class TestTriadWritePath:
    def test_persists_only_deepest_levels(self, config):
        mee = engine_for(config, "triad")
        mee.write_block(0)
        # counters + hmac + persist_levels node levels, nothing above.
        assert mee.nvm.persists(MetadataRegion.COUNTERS) == 1
        assert mee.nvm.persists(MetadataRegion.HMACS) == 1
        assert (
            mee.nvm.persists(MetadataRegion.TREE)
            == config.triad.persist_levels
        )

    def test_upper_levels_stay_dirty(self, config):
        mee = engine_for(config, "triad")
        mee.write_block(0)
        boundary = mee.protocol.strict_above_level
        dirty_levels = {level for level, _ in mee.mdcache.dirty_tree_nodes()}
        assert dirty_levels == set(range(1, boundary))

    def test_cost_between_leaf_and_strict(self, config):
        leaf = engine_for(config, "leaf").write_block(0)
        triad = engine_for(config, "triad").write_block(0)
        strict = engine_for(config, "strict").write_block(0)
        assert leaf < triad < strict

    def test_static_for_all_addresses(self, config):
        """The paper's critique: every address pays the same cost.

        Fresh engine per address so cache state is identical; the
        first-touch write cost must not depend on where the data lives
        (contrast AMNT, whose in/out-of-subtree costs differ)."""
        costs = {
            engine_for(config, "triad").write_block(page * 4096)
            for page in (0, 500, 900)
        }
        assert len(costs) == 1

    def test_persist_levels_validated(self):
        with pytest.raises(ConfigError):
            TriadConfig(persist_levels=-1)


class TestTriadRecovery:
    def test_crash_recover_verifies(self, config):
        mee = engine_for(config, "triad", functional=True)
        for i in range(40):
            mee.write_block((i % 9) * 4096, data=bytes([i + 1]) * 64)
        outcome = CrashInjector(mee).crash_and_recover()
        assert outcome.ok, outcome.detail
        assert mee.read_block_data(0) is not None

    def test_rebuild_covers_exactly_upper_levels(self, config):
        mee = engine_for(config, "triad", functional=True)
        mee.write_block(0, data=b"\x01" * 64)
        outcome = CrashInjector(mee).crash_and_recover()
        geometry = mee.geometry
        boundary = mee.protocol.strict_above_level
        expected = sum(
            geometry.nodes_at_level(level) for level in range(1, boundary)
        )
        assert outcome.nodes_recomputed == expected

    def test_recovery_model_between_leaf_and_strict(self, config):
        from repro.mem.bandwidth import RecoveryBandwidthModel
        from repro.util.units import TB

        model = RecoveryBandwidthModel(config.pcm)
        triad = make_protocol("triad", config)
        leaf = make_protocol("leaf", config)
        strict = make_protocol("strict", config)
        assert (
            strict.recovery_ms(model, 2 * TB)
            < triad.recovery_ms(model, 2 * TB)
            < leaf.recovery_ms(model, 2 * TB)
        )


class TestPLP:
    def test_same_persist_traffic_as_strict(self, config):
        plp = engine_for(config, "plp")
        strict = engine_for(config, "strict")
        plp.write_block(0)
        strict.write_block(0)
        assert plp.nvm.persists() == strict.nvm.persists()

    def test_cheaper_critical_path_than_strict(self, config):
        plp = engine_for(config, "plp").write_block(0)
        strict = engine_for(config, "strict").write_block(0)
        assert plp < strict

    def test_still_dearer_than_leaf(self, config):
        plp = engine_for(config, "plp").write_block(0)
        leaf = engine_for(config, "leaf").write_block(0)
        assert plp > leaf

    def test_instant_recovery(self, config):
        mee = engine_for(config, "plp", functional=True)
        mee.write_block(0, data=b"\x05" * 64)
        outcome = CrashInjector(mee).crash_and_recover()
        assert outcome.ok
        assert outcome.nodes_recomputed == 0
        assert mee.read_block_data(0) == b"\x05" * 64

    def test_nothing_left_dirty(self, config):
        mee = engine_for(config, "plp")
        mee.write_block(0)
        assert list(mee.mdcache.dirty_tree_nodes()) == []
