"""Supervision layer: journal, manifest, retries, quarantine, resume."""

import json
import os
import time
from pathlib import Path

import pytest

from repro.errors import (
    CellTimeoutError,
    OrchestrationError,
    ResumeManifestMismatch,
)
from repro.sim.supervisor import (
    CellFailure,
    RunJournal,
    SupervisedRunner,
    SupervisionPolicy,
    build_manifest,
    check_manifest,
    split_outcomes,
)

#: Policy with near-zero backoff so retry tests run in milliseconds.
FAST = dict(backoff_base_seconds=0.01, backoff_max_seconds=0.02)


# -- pool-target helpers (top level: picklable for pool workers) --------


def _double(payload):
    return payload * 2


def _fail_until_marker(payload):
    """Raise OSError on the first call, succeed afterwards (the marker
    file carries the attempt count across process boundaries)."""
    marker, value = payload
    if not os.path.exists(marker):
        Path(marker).touch()
        raise OSError("transient failure injected")
    return value


def _always_raise(payload):
    raise ValueError(f"poison {payload}")


def _die_once(payload):
    """Hard worker death (no exception, no result) on the first call."""
    marker, value = payload
    if not os.path.exists(marker):
        Path(marker).touch()
        os._exit(17)
    return value


def _hang(payload):
    time.sleep(60)


def _interrupt_on(payload):
    flag, value = payload
    if value == flag:
        raise KeyboardInterrupt
    return value


class TestSupervisionPolicy:
    def test_backoff_grows_and_caps(self):
        policy = SupervisionPolicy(
            backoff_base_seconds=1.0,
            backoff_factor=2.0,
            backoff_max_seconds=3.0,
            jitter_fraction=0.0,
        )
        assert policy.backoff_seconds(1) == 1.0
        assert policy.backoff_seconds(2) == 2.0
        assert policy.backoff_seconds(3) == 3.0  # capped
        assert policy.backoff_seconds(10) == 3.0

    def test_jitter_bounded(self):
        policy = SupervisionPolicy(
            backoff_base_seconds=1.0, jitter_fraction=0.5
        )
        for _ in range(20):
            delay = policy.backoff_seconds(1)
            assert 1.0 <= delay <= 1.5

    def test_invalid_policy_rejected(self):
        with pytest.raises(OrchestrationError):
            SupervisionPolicy(max_attempts=0)
        with pytest.raises(OrchestrationError):
            SupervisionPolicy(checkpoint_every=0)


class TestManifest:
    def test_deterministic(self):
        a = build_manifest("exp", "config-repr", ["k1", "k2"], {"n": 1})
        b = build_manifest("exp", "config-repr", ["k1", "k2"], {"n": 1})
        assert a == b

    def test_sensitive_to_config_and_grid(self):
        base = build_manifest("exp", "config-a", ["k1"], {})
        assert build_manifest("exp", "config-b", ["k1"], {}) != base
        assert build_manifest("exp", "config-a", ["k2"], {}) != base

    def test_check_manifest_raises_with_fields(self):
        stored = build_manifest("exp", "config-a", ["k1"], {"n": 1})
        current = build_manifest("exp", "config-a", ["k1"], {"n": 2})
        with pytest.raises(ResumeManifestMismatch) as excinfo:
            check_manifest(stored, current)
        assert "parameters" in excinfo.value.mismatches

    def test_check_manifest_accepts_equal(self):
        manifest = build_manifest("exp", "c", ["k"], {})
        check_manifest(manifest, dict(manifest))


class TestRunJournal:
    def _manifest(self):
        return build_manifest("test", "cfg", ["a", "b"], {})

    def test_create_load_round_trip(self, tmp_path):
        journal = RunJournal.open(tmp_path, self._manifest())
        journal.record_done("a", {"value": 1}, attempts=1)
        journal.record_failed(
            CellFailure("b", 3, "ValueError", "boom", "tb-text")
        )
        journal.flush()
        loaded = RunJournal.load(tmp_path)
        assert loaded.manifest == journal.manifest
        assert loaded.entry("a")["payload"] == {"value": 1}
        failure = loaded.failure_for("b")
        assert failure.error_type == "ValueError"
        assert failure.traceback == "tb-text"
        assert loaded.counts() == {"done": 1, "failed": 1}

    def test_flush_leaves_no_temp_files(self, tmp_path):
        journal = RunJournal.open(tmp_path, self._manifest())
        for i in range(5):
            journal.record_done(f"k{i}", i, attempts=1)
            journal.flush()
        assert [p.name for p in tmp_path.iterdir()] == ["journal.jsonl"]

    def test_load_missing_journal(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            RunJournal.load(tmp_path)

    def test_resume_checks_manifest(self, tmp_path):
        RunJournal.open(tmp_path, self._manifest())
        other = build_manifest("test", "different-config", ["a", "b"], {})
        with pytest.raises(ResumeManifestMismatch):
            RunJournal.open(tmp_path, other, resume=True)

    def test_resume_with_matching_manifest(self, tmp_path):
        journal = RunJournal.open(tmp_path, self._manifest())
        journal.record_done("a", 41, attempts=1)
        journal.flush()
        resumed = RunJournal.open(tmp_path, self._manifest(), resume=True)
        assert resumed.entry("a")["payload"] == 41

    def test_tolerates_torn_trailing_line(self, tmp_path):
        journal = RunJournal.open(tmp_path, self._manifest())
        journal.record_done("a", 1, attempts=1)
        journal.flush()
        with open(journal.path, "a") as handle:
            handle.write('{"key": "b", "status": "do')  # torn append
        loaded = RunJournal.load(tmp_path)
        assert loaded.entry("a") is not None
        assert loaded.entry("b") is None


class TestSupervisedSerial:
    """workers=1: in-process execution with inline retries."""

    def test_plain_map_in_order(self):
        runner = SupervisedRunner(workers=1)
        assert runner.map(_double, [1, 2, 3], ["a", "b", "c"]) == [2, 4, 6]

    def test_transient_failure_retried(self, tmp_path):
        runner = SupervisedRunner(
            workers=1, policy=SupervisionPolicy(max_attempts=3, **FAST)
        )
        marker = str(tmp_path / "m")
        out = runner.map(
            _fail_until_marker, [(marker, "ok")], ["cell"]
        )
        assert out == ["ok"]

    def test_poison_cell_quarantined_run_completes(self):
        runner = SupervisedRunner(
            workers=1, policy=SupervisionPolicy(max_attempts=2, **FAST)
        )
        out = runner.map(
            _always_raise_or_pass,
            ["good-1", "poison", "good-2"],
            ["a", "b", "c"],
        )
        results, failures = split_outcomes(out)
        assert results == ["good-1", "good-2"]
        assert len(failures) == 1
        assert failures[0].key == "b"
        assert failures[0].attempts == 2
        assert failures[0].error_type == "ValueError"
        assert "poison" in failures[0].traceback

    def test_duplicate_keys_rejected(self):
        runner = SupervisedRunner(workers=1)
        with pytest.raises(OrchestrationError, match="unique"):
            runner.map(_double, [1, 2], ["same", "same"])

    def test_empty_grid(self):
        assert SupervisedRunner(workers=1).map(_double, [], []) == []


class TestSupervisedPool:
    """workers>1: pool execution, worker death, wall-clock budget."""

    def test_transient_pool_failure_retried(self, tmp_path):
        runner = SupervisedRunner(
            workers=2,
            policy=SupervisionPolicy(
                max_attempts=3, cell_timeout_seconds=30.0, **FAST
            ),
        )
        marker = str(tmp_path / "m")
        out = runner.map(
            _fail_until_marker,
            [(marker, "recovered"), (str(tmp_path / "n"), "steady")],
            ["cell-a", "cell-b"],
        )
        assert out[0] == "recovered"

    def test_poison_quarantined_others_complete(self):
        runner = SupervisedRunner(
            workers=2,
            policy=SupervisionPolicy(
                max_attempts=2, cell_timeout_seconds=30.0, **FAST
            ),
        )
        out = runner.map(
            _always_raise_or_pass,
            ["ok-1", "poison", "ok-2", "ok-3"],
            list("abcd"),
        )
        results, failures = split_outcomes(out)
        assert results == ["ok-1", "ok-2", "ok-3"]
        assert [f.key for f in failures] == ["b"]
        assert failures[0].error_type == "ValueError"

    def test_worker_death_retried_on_fresh_pool(self, tmp_path):
        """os._exit in a worker loses the task; the timeout watchdog
        reclaims it and the retry on a fresh pool succeeds."""
        runner = SupervisedRunner(
            workers=2,
            policy=SupervisionPolicy(
                max_attempts=3, cell_timeout_seconds=3.0, **FAST
            ),
        )
        marker = str(tmp_path / "died")
        out = runner.map(
            _die_once, [(marker, "revived"), (str(tmp_path / "n"), "fine")][:2],
            ["d", "e"],
        )
        assert out[0] == "revived"

    def test_hung_cell_times_out_and_quarantines(self):
        runner = SupervisedRunner(
            workers=2,
            policy=SupervisionPolicy(
                max_attempts=1, cell_timeout_seconds=1.0, **FAST
            ),
        )
        start = time.monotonic()
        out = runner.map(_hang_or_pass, ["hang", "ok-1", "ok-2"], list("abc"))
        elapsed = time.monotonic() - start
        results, failures = split_outcomes(out)
        assert results == ["ok-1", "ok-2"]
        assert failures[0].error_type == "CellTimeoutError"
        assert elapsed < 20  # watchdog, not the 60s sleep


def _always_raise_or_pass(payload):
    if payload == "poison":
        raise ValueError("poison cell")
    return payload


def _hang_or_pass(payload):
    if payload == "hang":
        time.sleep(60)
    return payload


class TestJournaledRuns:
    """Checkpointing, interruption, and resume at the runner level."""

    def _journal(self, tmp_path, keys):
        manifest = build_manifest("unit", "cfg", keys, {})
        return RunJournal.open(tmp_path, manifest, resume=False)

    def test_results_checkpointed_per_cell(self, tmp_path):
        keys = ["a", "b", "c"]
        journal = self._journal(tmp_path, keys)
        runner = SupervisedRunner(workers=1, journal=journal)
        runner.map(_double, [1, 2, 3], keys)
        loaded = RunJournal.load(tmp_path)
        assert loaded.counts() == {"done": 3, "failed": 0}
        assert [loaded.entry(k)["payload"] for k in keys] == [2, 4, 6]

    def test_die_after_flushes_leaves_loadable_journal(self, tmp_path):
        keys = ["a", "b", "c"]
        journal = self._journal(tmp_path, keys)
        runner = SupervisedRunner(
            workers=1,
            journal=journal,
            policy=SupervisionPolicy(die_after_flushes=1, **FAST),
        )
        with pytest.raises(KeyboardInterrupt):
            runner.map(_double, [1, 2, 3], keys)
        loaded = RunJournal.load(tmp_path)
        assert loaded.counts()["done"] == 1
        assert loaded.entry("a")["payload"] == 2

    def test_keyboard_interrupt_flushes_journal(self, tmp_path):
        keys = ["a", "b", "c"]
        journal = self._journal(tmp_path, keys)
        runner = SupervisedRunner(workers=1, journal=journal)
        with pytest.raises(KeyboardInterrupt):
            runner.map(_interrupt_on, [("x", "v1"), ("x", "x"), ("x", "v3")], keys)
        loaded = RunJournal.load(tmp_path)
        assert loaded.entry("a")["payload"] == "v1"

    def test_resume_skips_done_cells_and_matches_uninterrupted(self, tmp_path):
        keys = ["a", "b", "c"]
        clean = SupervisedRunner(workers=1).map(_double, [1, 2, 3], keys)

        journal = self._journal(tmp_path, keys)
        runner = SupervisedRunner(
            workers=1,
            journal=journal,
            policy=SupervisionPolicy(die_after_flushes=2, **FAST),
        )
        with pytest.raises(KeyboardInterrupt):
            runner.map(_double, [1, 2, 3], keys)

        manifest = build_manifest("unit", "cfg", keys, {})
        resumed_journal = RunJournal.open(tmp_path, manifest, resume=True)
        calls = []

        def counting(payload):
            calls.append(payload)
            return _double(payload)

        resumed = SupervisedRunner(workers=1, journal=resumed_journal).map(
            counting, [1, 2, 3], keys
        )
        assert resumed == clean
        assert calls == [3]  # only the un-journaled cell re-ran

    def test_failed_cells_stay_quarantined_on_resume(self, tmp_path):
        keys = ["a"]
        journal = self._journal(tmp_path, keys)
        journal.record_failed(CellFailure("a", 3, "ValueError", "m", "tb"))
        journal.flush()
        manifest = build_manifest("unit", "cfg", keys, {})
        resumed = RunJournal.open(tmp_path, manifest, resume=True)
        out = SupervisedRunner(workers=1, journal=resumed).map(
            _double, [1], keys
        )
        assert isinstance(out[0], CellFailure)

    def test_codec_normalization(self, tmp_path):
        """With a journal, fresh results round-trip the codec so a
        resumed run returns indistinguishable objects."""
        keys = ["a"]
        journal = self._journal(tmp_path, keys)
        out = SupervisedRunner(workers=1, journal=journal).map(
            lambda payload: (payload, payload),
            [1],
            keys,
            encode=lambda value: list(value),
            decode=tuple,
        )
        assert out == [(1, 1)]

    def test_cell_timeout_error_carries_key(self):
        error = CellTimeoutError("probe/0001/amnt", 12.5)
        assert error.key == "probe/0001/amnt"
        assert "12.5" in str(error)
