"""Crash-state exploration: enumeration, sampling, torn lines, and
the end-to-end intra-group audit (see docs/FAULTS.md)."""

import pytest

from repro.faults import (
    VERDICT_DETECTED,
    VERDICT_RECOVERED,
    VERDICT_SILENT,
    CrashTrigger,
    FaultCampaignSpec,
    default_fault_config,
    plan_crash_states,
    run_campaign,
    run_fault_cell,
    worst_verdict,
)
from repro.mem.backend import MetadataRegion
from repro.mem.nvm import PendingLine
from repro.util.units import MB
from repro.workloads.registry import profile_spec

SEED = 2024
DATA = MetadataRegion.DATA
COUNTERS = MetadataRegion.COUNTERS

WPQ_CONFIG = default_fault_config(capacity_bytes=16 * MB, persist_model="wpq")
TINY = profile_spec("faults", "hotshift", 600, SEED)


def line(region, key, versions, existed=False, original=None):
    return PendingLine(
        region=region,
        key=key,
        existed=existed,
        original=original,
        versions=versions,
    )


def wpq_cell(protocol, trigger, max_crash_states=4096, torn_lines=True):
    return FaultCampaignSpec(
        protocol=protocol,
        trace=TINY,
        trigger=trigger,
        seed=SEED,
        max_crash_states=max_crash_states,
        torn_lines=torn_lines,
    )


class TestWorstVerdict:
    def test_ordering(self):
        assert worst_verdict([VERDICT_RECOVERED]) == VERDICT_RECOVERED
        assert (
            worst_verdict([VERDICT_RECOVERED, VERDICT_DETECTED])
            == VERDICT_DETECTED
        )
        assert (
            worst_verdict(
                [VERDICT_DETECTED, VERDICT_SILENT, VERDICT_RECOVERED]
            )
            == VERDICT_SILENT
        )


class TestEnumeration:
    def test_empty_pending_set(self):
        plan = plan_crash_states([])
        assert plan.states == []
        assert plan.total_reachable == 1
        assert plan.exhaustive

    def test_count_formula_single_epoch(self):
        # 3 lines, one epoch: 1 + (2^3 - 1) = 8 reachable; the
        # all-drained state is audited by the ordinary oracle pass, so
        # the plan emits 8 - 1 = 7 (none-drained + 6 proper subsets).
        pending = [
            line(DATA, k, [(0, bytes([k]) * 64)]) for k in range(3)
        ]
        plan = plan_crash_states(pending, torn_lines=False)
        assert plan.total_reachable == 8
        assert plan.exhaustive
        assert plan.skipped == 0
        assert len(plan.states) == 7

    def test_count_formula_multi_epoch(self):
        # Epoch 0 owns 2 lines, epoch 1 owns 1 (one line spans both):
        # 1 + (2^2 - 1) + (2^1 - 1) = 5 reachable, 4 emitted.
        pending = [
            line(DATA, 0, [(0, b"a" * 64), (1, b"b" * 64)]),
            line(DATA, 1, [(0, b"c" * 64)]),
        ]
        plan = plan_crash_states(pending, torn_lines=False)
        assert plan.total_reachable == 5
        assert len(plan.states) == 4

    def test_fence_respecting_rollback(self):
        # Losing an epoch-0 value must also lose every epoch-1 value:
        # the boundary-0 subsets may keep line A's epoch-0 version but
        # never its epoch-1 version.
        a0, a1, b0 = b"A" * 64, b"B" * 64, b"C" * 64
        pending = [
            line(DATA, 0, [(0, a0), (1, a1)]),
            line(DATA, 1, [(0, b0)]),
        ]
        plan = plan_crash_states(pending, torn_lines=False)
        for state in plan.states:
            patched = dict(
                ((region, key), value) for region, key, value in state.patch
            )
            if patched.get((DATA, 1)) is None and (DATA, 1) in patched:
                # Line B rolled back to nothing => boundary below its
                # epoch 0 => line A cannot hold any drained version.
                assert patched.get((DATA, 0), a1) != a1

    def test_sampling_is_deterministic_and_accounted(self):
        pending = [
            line(DATA, k, [(0, bytes([k]) * 64)]) for k in range(8)
        ]
        # 2^8 - 1 = 255 candidates, budget 16: sampled, never silent.
        first = plan_crash_states(
            pending, max_crash_states=16, torn_lines=False, seed=7
        )
        second = plan_crash_states(
            pending, max_crash_states=16, torn_lines=False, seed=7
        )
        assert not first.exhaustive
        assert [s.label for s in first.states] == [
            s.label for s in second.states
        ]
        assert first.states[0].label == "none-drained"
        assert first.sampled == len(first.states) - 1
        assert first.skipped == 255 - len(first.states)
        assert first.skipped > 0

    def test_torn_variant_composes_new_prefix_old_suffix(self):
        old = bytes(range(64))
        new = bytes(64 - i for i in range(64))
        pending = [line(DATA, 5, [(0, new)], existed=True, original=old)]
        plan = plan_crash_states(pending, torn_lines=True, seed=3)
        torn = [s for s in plan.states if s.torn]
        assert len(torn) == 1 == plan.torn
        ((region, key, value),) = torn[0].patch
        assert (region, key) == (DATA, 5)
        cut = int(torn[0].label.rsplit("@", 1)[1])
        assert 1 <= cut < 64
        assert value == new[:cut] + old[cut:]

    def test_invisible_tear_skipped(self):
        # Same bytes before and after: no distinct torn image exists.
        same = b"s" * 64
        pending = [line(DATA, 1, [(0, same)], existed=True, original=same)]
        plan = plan_crash_states(pending, torn_lines=True)
        assert plan.torn == 0


class TestIntraGroupAudit:
    """End-to-end: crash inside persist groups, explore every state."""

    @pytest.mark.parametrize("protocol", ("amnt", "strict", "leaf"))
    def test_persist_window_crash_never_silent(self, protocol):
        outcome = run_fault_cell(
            wpq_cell(protocol, CrashTrigger("persist-window", 2)),
            WPQ_CONFIG,
        )
        assert outcome.verdict in (VERDICT_RECOVERED, VERDICT_DETECTED)
        assert outcome.crash_in_group
        assert not outcome.write_committed
        assert outcome.anomaly == ""
        assert outcome.exploration == "exhaustive"
        # Exhaustive: every reachable subset audited (the as-crashed
        # image via the ordinary oracle pass, the rest by the explorer).
        assert outcome.crash_states_explored == outcome.crash_states_total
        assert outcome.crash_states_total >= 2
        assert outcome.crash_states_skipped == 0

    def test_sampling_budget_respected_and_reported(self):
        outcome = run_fault_cell(
            wpq_cell(
                "amnt",
                CrashTrigger("persist-window", 6),
                max_crash_states=2,
            ),
            WPQ_CONFIG,
        )
        assert outcome.verdict in (VERDICT_RECOVERED, VERDICT_DETECTED)
        if outcome.crash_states_total > 3:
            assert outcome.exploration == "sampled"
            assert outcome.crash_states_skipped > 0

    def test_writethrough_cells_report_no_states(self):
        config = default_fault_config(capacity_bytes=16 * MB)
        outcome = run_fault_cell(
            FaultCampaignSpec(
                protocol="amnt",
                trace=TINY,
                trigger=CrashTrigger("access", 250),
                seed=SEED,
            ),
            config,
        )
        assert outcome.exploration == ""
        assert outcome.crash_states_total == 0
        assert outcome.crash_states_explored == 0

    def test_mini_campaign_exhaustive_no_silent(self):
        report = run_campaign(
            ["amnt", "strict"],
            [profile_spec("faults", "hotshift", 400, SEED)],
            config=WPQ_CONFIG,
            phase_samples=1,
            tamper_crashes=0,
            seed=SEED,
        )
        assert report.silent_cells() == []
        assert report.anomalies() == []
        coverage = report.crash_state_coverage()
        assert coverage["explored"] >= coverage["total_reachable"] > 0
        assert coverage["skipped"] == 0
        assert coverage["sampled_cells"] == 0
        summary = report.summary()
        assert summary["crash_states"] == coverage
        assert report.parameters["persist_model"] == "wpq"
