"""Multithreaded traces (shared address space, §6.5)."""

from dataclasses import replace

import pytest

from repro.config import DataCacheConfig, default_config
from repro.sim.engine import simulate
from repro.sim.machine import build_machine
from repro.util.units import MB
from repro.workloads.multithread import multithread_trace
from repro.workloads.spec import spec_profile
from repro.workloads.synthetic import WorkloadProfile


@pytest.fixture
def profile():
    return WorkloadProfile(
        name="mt-unit",
        footprint_bytes=2 * MB,
        num_accesses=4000,
        write_fraction=0.4,
        think_cycles=5,
    )


class TestConstruction:
    def test_total_length(self, profile):
        trace = multithread_trace(profile, threads=4, seed=1)
        assert len(trace) == 4000

    def test_single_shared_address_space(self, profile):
        trace = multithread_trace(profile, threads=4, seed=1)
        assert trace.pids() == [0]

    def test_threads_share_the_footprint(self, profile):
        trace = multithread_trace(profile, threads=4, seed=1)
        for access in trace.accesses[:200]:
            assert (
                profile.base_vaddr
                <= access.vaddr
                < profile.base_vaddr + profile.footprint_bytes
            )

    def test_name_tags_thread_count(self, profile):
        assert multithread_trace(profile, threads=4, seed=1).name == "mt-unitx4"

    def test_thread_streams_differ(self, profile):
        one = multithread_trace(profile, threads=1, seed=1)
        four = multithread_trace(profile, threads=4, seed=1)
        assert one.accesses != four.accesses

    def test_validation(self, profile):
        with pytest.raises(ValueError):
            multithread_trace(profile, threads=0)
        with pytest.raises(ValueError):
            multithread_trace(profile, threads=5000)


class TestAMNTUnderThreads:
    def test_shared_address_space_keeps_subtree_locality(self):
        """The §6.5 point: multithreading (one address space) does not
        break AMNT's hot-region assumption the way multiprogramming
        does — the subtree hit rate stays high without AMNT++."""
        config = replace(
            default_config(capacity_bytes=64 * MB),
            llc=DataCacheConfig(capacity_bytes=64 * 1024, associativity=16),
        )
        profile = spec_profile("lbm").scaled(accesses=6000, footprint_bytes=2 * MB)
        trace = multithread_trace(profile, threads=4, seed=2)
        machine = build_machine(config, "amnt", seed=2)
        result = simulate(machine, trace, seed=2)
        hit_rate = result.subtree_hit_rate()
        assert hit_rate is not None
        assert hit_rate > 0.9
