"""JSON export of experiment outputs."""

import pytest

from repro.bench.export import export_experiment, load_experiment
from repro.core.area import AreaOverhead


class TestExport:
    def test_roundtrip_plain_mapping(self, tmp_path):
        data = {"canneal": {"amnt": 1.015, "anubis": 1.886}}
        path = export_experiment(
            "fig4", data, tmp_path / "fig4.json", parameters={"accesses": 100}
        )
        document = load_experiment(path)
        assert document["experiment"] == "fig4"
        assert document["parameters"] == {"accesses": 100}
        assert document["data"]["canneal"]["amnt"] == 1.015

    def test_dataclasses_serialized(self, tmp_path):
        rows = [AreaOverhead("amnt", 64, 96, 0)]
        path = export_experiment("table3", rows, tmp_path / "t3.json")
        document = load_experiment(path)
        assert document["data"][0]["protocol"] == "amnt"
        assert document["data"][0]["volatile_on_chip_bytes"] == 96

    def test_version_stamped(self, tmp_path):
        import repro

        path = export_experiment("x", {}, tmp_path / "x.json")
        assert load_experiment(path)["library_version"] == repro.__version__

    def test_tuple_keys_and_values_degrade_to_strings(self, tmp_path):
        data = {"rows": [(3, 0), (3, 1)], "node": (2, 5)}
        path = export_experiment("y", data, tmp_path / "y.json")
        document = load_experiment(path)
        assert document["data"]["rows"] == [[3, 0], [3, 1]]

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "z.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(ValueError, match="missing"):
            load_experiment(path)


class TestWriteAmplification:
    def test_metric_from_nvm_stats(self):
        from repro.sim.results import SimulationResult

        result = SimulationResult(
            workload="w",
            protocol="strict",
            cycles=1,
            accesses=1,
            llc_hit_rate=0.0,
            mdcache_hit_rate=0.0,
            instructions=1,
            os_instructions=0,
            page_faults=0,
            nvm_stats={"nvm.writes.total": 1000, "nvm.writes.data": 100},
        )
        assert result.metadata_write_amplification() == pytest.approx(9.0)

    def test_none_without_data_writes(self):
        from repro.sim.results import SimulationResult

        result = SimulationResult(
            workload="w",
            protocol="leaf",
            cycles=1,
            accesses=1,
            llc_hit_rate=0.0,
            mdcache_hit_rate=0.0,
            instructions=1,
            os_instructions=0,
            page_faults=0,
        )
        assert result.metadata_write_amplification() is None

    def test_strict_amplifies_more_than_leaf(self):
        from dataclasses import replace

        from repro.config import DataCacheConfig, default_config
        from repro.sim.engine import simulate
        from repro.sim.machine import build_machine
        from repro.util.units import MB
        from repro.workloads.synthetic import WorkloadProfile, generate_trace

        config = replace(
            default_config(capacity_bytes=64 * MB),
            llc=DataCacheConfig(capacity_bytes=64 * 1024, associativity=16),
        )
        trace = generate_trace(
            WorkloadProfile(
                name="wa",
                footprint_bytes=1 * MB,
                num_accesses=3000,
                write_fraction=0.5,
                think_cycles=2,
            ),
            seed=5,
        )
        amplification = {}
        for name in ("leaf", "strict"):
            machine = build_machine(config, name, seed=5)
            amplification[name] = simulate(
                machine, trace, seed=5
            ).metadata_write_amplification()
        assert amplification["strict"] > amplification["leaf"] * 2
