"""YCSB workload mixes."""

import pytest

from repro.workloads.ycsb import (
    YCSB_WORKLOADS,
    YCSBWorkload,
    generate_ycsb_trace,
    ycsb_names,
    ycsb_workload,
)


class TestRegistry:
    def test_canonical_mixes_present(self):
        assert ycsb_names() == ["A", "B", "C", "D", "F"]

    def test_lookup_case_insensitive(self):
        assert ycsb_workload("a").name == "A"

    def test_unknown_rejected(self):
        with pytest.raises(KeyError, match="unknown YCSB"):
            ycsb_workload("E")

    def test_mix_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sums to"):
            YCSBWorkload("bad", read_fraction=0.5, update_fraction=0.1)

    def test_distribution_validated(self):
        with pytest.raises(ValueError, match="distribution"):
            YCSBWorkload(
                "bad", read_fraction=1.0, update_fraction=0.0,
                distribution="uniformish",
            )


class TestGeneration:
    def test_deterministic(self):
        a = generate_ycsb_trace(ycsb_workload("A"), operations=500, seed=1)
        b = generate_ycsb_trace(ycsb_workload("A"), operations=500, seed=1)
        assert a.accesses == b.accesses

    def test_c_is_read_only(self):
        trace = generate_ycsb_trace(ycsb_workload("C"), operations=1000, seed=1)
        assert trace.write_fraction() == 0.0

    def test_a_is_half_updates_all_flushed(self):
        trace = generate_ycsb_trace(ycsb_workload("A"), operations=4000, seed=1)
        assert trace.write_fraction() == pytest.approx(0.5, abs=0.03)
        for access in trace:
            if access.is_write:
                assert access.flush

    def test_f_rmw_pairs_read_then_write(self):
        trace = generate_ycsb_trace(ycsb_workload("F"), operations=1000, seed=1)
        accesses = trace.accesses
        for i, access in enumerate(accesses):
            if access.is_write:
                assert accesses[i - 1].vaddr == access.vaddr
                assert not accesses[i - 1].is_write

    def test_zipf_skew_concentrates_requests(self):
        trace = generate_ycsb_trace(ycsb_workload("B"), operations=8000, seed=1)
        counts = {}
        for access in trace:
            counts[access.vaddr] = counts.get(access.vaddr, 0) + 1
        top = sorted(counts.values(), reverse=True)
        hot_share = sum(top[: max(1, len(top) // 100)]) / len(trace)
        assert hot_share > 0.2  # top 1% of keys absorb >20% of requests

    def test_d_inserts_grow_live_keyspace_and_reads_chase_them(self):
        workload = ycsb_workload("D")
        trace = generate_ycsb_trace(workload, operations=6000, seed=1)
        max_addr = max(access.vaddr for access in trace)
        initial_frontier = (
            workload.base_vaddr + (workload.record_count // 2) * 64
        )
        assert max_addr >= initial_frontier  # frontier advanced

    def test_addresses_stay_in_footprint(self):
        workload = ycsb_workload("A")
        trace = generate_ycsb_trace(workload, operations=2000, seed=3)
        for access in trace:
            assert (
                workload.base_vaddr
                <= access.vaddr
                < workload.base_vaddr + workload.footprint_bytes
            )


class TestEndToEnd:
    def test_update_heavy_mix_separates_protocols(self):
        from dataclasses import replace

        from repro.config import DataCacheConfig, default_config
        from repro.sim.engine import simulate
        from repro.sim.machine import build_machine
        from repro.util.units import KB, MB

        config = replace(
            default_config(capacity_bytes=64 * MB),
            llc=DataCacheConfig(capacity_bytes=64 * KB, associativity=16),
        )
        trace = generate_ycsb_trace(ycsb_workload("A"), operations=2000, seed=2)
        cycles = {}
        for name in ("volatile", "leaf", "strict", "amnt"):
            machine = build_machine(config, name, seed=2)
            cycles[name] = simulate(machine, trace, seed=2).cycles
        assert cycles["strict"] > cycles["leaf"] * 1.2
        # Short trace: the first selection interval (64 strict writes)
        # and the zipf tail keep AMNT a little above leaf here.
        assert cycles["amnt"] <= cycles["leaf"] * 1.25
        assert cycles["amnt"] < cycles["strict"] * 0.5
