"""SCM endurance accounting."""

import pytest

from repro.config import default_config
from repro.core.mee import MemoryEncryptionEngine
from repro.core.protocol import make_protocol
from repro.mem.backend import MetadataRegion
from repro.mem.wear import WearTracker, attach_wear_tracking
from repro.util.units import MB


@pytest.fixture
def config():
    return default_config(capacity_bytes=64 * MB)


def tracked_engine(config, protocol):
    mee = MemoryEncryptionEngine(config, make_protocol(protocol, config))
    return mee, attach_wear_tracking(mee)


class TestTracker:
    def test_counts_per_line(self):
        tracker = WearTracker()
        tracker.record(MetadataRegion.TREE, (2, 0))
        tracker.record(MetadataRegion.TREE, (2, 0))
        tracker.record(MetadataRegion.DATA, 5)
        report = tracker.report()
        assert report.writes_by_region == {"tree": 2, "data": 1}
        assert report.hottest_line_writes == 2
        assert report.hottest_line == ("tree", (2, 0))
        assert report.distinct_lines_written == 2

    def test_empty_report(self):
        report = WearTracker().report()
        assert report.total_writes == 0
        assert report.write_amplification() is None
        assert report.hotspot_factor() == 0.0

    def test_hottest_lines_listing(self):
        tracker = WearTracker()
        for _ in range(3):
            tracker.record(MetadataRegion.COUNTERS, 7)
        tracker.record(MetadataRegion.COUNTERS, 8)
        top = tracker.hottest_lines(top=1)
        assert top == [(("counters", 7), 3)]


class TestProtocolWearProfiles:
    def hammer(self, mee, writes=200, pages=16):
        for i in range(writes):
            mee.write_block((i % pages) * 4096)

    def test_strict_concentrates_wear_on_upper_tree(self, config):
        mee, tracker = tracked_engine(config, "strict")
        self.hammer(mee)
        report = tracker.report()
        # The hottest line is a tree node rewritten on every write...
        assert report.hottest_line[0] == "tree"
        assert report.hottest_line_writes == 200
        # ...a severe wear hotspot.
        assert report.hotspot_factor() > 3.0

    def test_leaf_spreads_wear(self, config):
        strict_mee, strict_tracker = tracked_engine(config, "strict")
        leaf_mee, leaf_tracker = tracked_engine(config, "leaf")
        self.hammer(strict_mee)
        self.hammer(leaf_mee)
        strict_report = strict_tracker.report()
        leaf_report = leaf_tracker.report()
        assert (
            leaf_report.write_amplification()
            < strict_report.write_amplification()
        )
        assert leaf_report.total_writes < strict_report.total_writes

    def test_amnt_wear_tracks_leaf_inside_subtree(self, config):
        amnt_mee, amnt_tracker = tracked_engine(config, "amnt")
        leaf_mee, leaf_tracker = tracked_engine(config, "leaf")
        self.hammer(amnt_mee, writes=400)
        self.hammer(leaf_mee, writes=400)
        amnt_amp = amnt_tracker.report().write_amplification()
        leaf_amp = leaf_tracker.report().write_amplification()
        # The first selection interval is strict; after that AMNT pays
        # leaf-level amplification, so totals converge toward leaf's.
        assert amnt_amp < 2 * leaf_amp

    def test_lifetime_math(self, config):
        mee, tracker = tracked_engine(config, "strict")
        self.hammer(mee, writes=100)
        report = tracker.report()
        assert report.lifetime_fraction_consumed(endurance=1000) == (
            pytest.approx(0.1)
        )

    def test_write_amplification_matches_result_metric(self, config):
        """The tracker's amplification agrees with the NVM-stats-based
        metric on SimulationResult."""
        mee, tracker = tracked_engine(config, "strict")
        self.hammer(mee, writes=150)
        report = tracker.report()
        data = mee.nvm.stats.get("writes.data")
        total = mee.nvm.stats.get("writes.total")
        assert report.write_amplification() == pytest.approx(
            (total - data) / data
        )
