"""Machine construction and wiring."""

import pytest

from repro.config import default_config
from repro.sim.machine import build_machine
from repro.util.units import MB


@pytest.fixture
def config():
    return default_config(capacity_bytes=64 * MB)


class TestBuildMachine:
    def test_protocol_bound_to_engine(self, config):
        machine = build_machine(config, "amnt")
        assert machine.protocol.mee is machine.mee
        assert machine.protocol.display_name == "amnt"

    def test_stock_os_for_plain_protocols(self, config):
        for name in ("volatile", "leaf", "strict", "anubis", "bmf", "amnt"):
            assert not build_machine(config, name).modified_os

    def test_modified_os_for_amnt_plus_plus(self, config):
        machine = build_machine(config, "amnt++")
        assert machine.modified_os
        assert machine.protocol.name == "amnt"

    def test_allocator_sized_to_memory(self, config):
        machine = build_machine(config, "leaf")
        assert machine.mm.allocator.total_pages == 64 * MB // 4096

    def test_scatter_ages_allocator(self, config):
        fresh = build_machine(config, "leaf", seed=1)
        aged = build_machine(config, "leaf", seed=1, scatter_span_chunks=8)
        assert (
            aged.mm.allocator.free_pages_total()
            < fresh.mm.allocator.free_pages_total()
        )

    def test_boot_work_excluded_from_instruction_stats(self, config):
        machine = build_machine(config, "amnt++", scatter_span_chunks=8)
        assert machine.mm.allocator.instructions() == 0

    def test_restructurer_region_granularity(self, config):
        machine = build_machine(config, "amnt++")
        restructurer = machine.mm.restructurer
        pages_per_region = (
            machine.mee.geometry.region_bytes(config.amnt.subtree_level) // 4096
        )
        assert restructurer.region_of_pfn(0) == 0
        assert restructurer.region_of_pfn(pages_per_region) == 1

    def test_functional_flag_builds_tree(self, config):
        machine = build_machine(config, "leaf", functional=True)
        assert machine.mee.functional
        assert machine.mee.tree is not None

    def test_timing_machine_has_no_tree(self, config):
        machine = build_machine(config, "leaf")
        assert machine.mee.tree is None
