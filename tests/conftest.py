"""Shared fixtures: small machines that keep functional tests fast.

The paper's 8 GB geometry is exercised where the numbers matter
(geometry, Table 3/4); functional crash tests run on a 64 MB device —
identical code paths, much smaller trees.
"""

from __future__ import annotations

import pytest

from repro.config import default_config
from repro.sim.machine import build_machine
from repro.util.units import MB


@pytest.fixture
def small_config():
    """64 MB PCM: 16k counter blocks, 5 integrity levels."""
    return default_config(capacity_bytes=64 * MB)


@pytest.fixture
def paper_config():
    """The paper's Table 1 machine (8 GB, level-3 subtree)."""
    return default_config()


@pytest.fixture
def functional_machine_factory(small_config):
    """Build functional-mode machines on the small device."""

    def factory(protocol_name: str, config=None, **kwargs):
        return build_machine(
            config or small_config, protocol_name, functional=True, **kwargs
        )

    return factory


@pytest.fixture
def timing_machine_factory(small_config):
    """Build timing-only machines on the small device."""

    def factory(protocol_name: str, config=None, **kwargs):
        return build_machine(config or small_config, protocol_name, **kwargs)

    return factory
