"""Bit math helpers, including property tests on alignment identities."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bitops import (
    align_down,
    align_up,
    bit_length_exact,
    ceil_div,
    ilog2,
    is_aligned,
    is_power_of_two,
)


class TestIsPowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 64, 4096, 2**40])
    def test_true_for_powers(self, value):
        assert is_power_of_two(value)

    @pytest.mark.parametrize("value", [0, -2, 3, 6, 100, 2**40 + 1])
    def test_false_otherwise(self, value):
        assert not is_power_of_two(value)


class TestIlog2:
    @pytest.mark.parametrize("value,expected", [(1, 0), (2, 1), (64, 6), (4096, 12)])
    def test_exact_powers(self, value, expected):
        assert ilog2(value) == expected

    @pytest.mark.parametrize("value", [0, -4, 3, 12])
    def test_rejects_non_powers(self, value):
        with pytest.raises(ValueError):
            ilog2(value)


class TestBitLengthExact:
    def test_one_state_needs_no_bits(self):
        assert bit_length_exact(1) == 0

    def test_64_states_need_6_bits(self):
        # The history buffer's index width (Section 4.2).
        assert bit_length_exact(64) == 6

    def test_65_states_need_7_bits(self):
        assert bit_length_exact(65) == 7

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            bit_length_exact(0)


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(16, 8) == 2

    def test_rounds_up(self):
        assert ceil_div(17, 8) == 3

    def test_zero_numerator(self):
        assert ceil_div(0, 8) == 0

    def test_rejects_bad_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)

    @given(st.integers(min_value=0, max_value=10**12), st.integers(min_value=1, max_value=10**6))
    def test_matches_definition(self, n, d):
        q = ceil_div(n, d)
        assert (q - 1) * d < n or n == 0
        assert q * d >= n


class TestAlignment:
    def test_align_down(self):
        assert align_down(100, 64) == 64

    def test_align_up(self):
        assert align_up(100, 64) == 128

    def test_aligned_value_is_fixed_point(self):
        assert align_down(128, 64) == 128
        assert align_up(128, 64) == 128

    def test_is_aligned(self):
        assert is_aligned(4096, 4096)
        assert not is_aligned(4097, 4096)

    def test_rejects_non_power_alignment(self):
        with pytest.raises(ValueError):
            align_up(10, 3)

    @given(
        st.integers(min_value=0, max_value=2**50),
        st.sampled_from([1, 2, 64, 4096, 2**20]),
    )
    def test_align_properties(self, value, alignment):
        down = align_down(value, alignment)
        up = align_up(value, alignment)
        assert down <= value <= up
        assert down % alignment == 0
        assert up % alignment == 0
        assert up - down in (0, alignment)
