"""End-to-end integration: a persistent store on secure SCM.

This is the paper's motivating scenario exercised for real: an
in-memory store writes records through the secure-memory engine,
power fails at an arbitrary point, the protocol recovers, and every
acknowledged record must read back intact and authenticated — while a
tampered image must be rejected.
"""

import pytest

from repro.config import default_config
from repro.core.mee import MemoryEncryptionEngine
from repro.core.protocol import make_protocol
from repro.core.recovery import CrashInjector
from repro.errors import IntegrityError
from repro.mem.backend import MetadataRegion
from repro.sim.engine import simulate
from repro.sim.machine import build_machine
from repro.util.rng import make_rng
from repro.util.units import MB
from repro.workloads.synthetic import WorkloadProfile, generate_trace

CONSISTENT_PROTOCOLS = ("strict", "leaf", "osiris", "anubis", "bmf", "amnt")


def record_bytes(key: int) -> bytes:
    return f"record-{key:05d}".encode().ljust(64, b"\x00")


@pytest.fixture
def config():
    return default_config(capacity_bytes=64 * MB)


class TestPersistentStoreScenario:
    @pytest.mark.parametrize("protocol", CONSISTENT_PROTOCOLS)
    def test_store_crash_recover_verify(self, config, protocol):
        mee = MemoryEncryptionEngine(
            config, make_protocol(protocol, config), functional=True
        )
        rng = make_rng(f"e2e/{protocol}")
        store = {}
        # Phase 1: load the store with records, overwriting some keys.
        for _ in range(150):
            key = rng.randrange(40)
            addr = key * 4096
            store[addr] = record_bytes(rng.randrange(10**5))
            mee.write_block(addr, data=store[addr])
        # Phase 2: power fails; the protocol recovers.
        outcome = CrashInjector(mee).crash_and_recover()
        assert outcome.ok, f"{protocol}: {outcome.detail}"
        # Phase 3: every acknowledged record reads back authenticated.
        for addr, payload in store.items():
            assert mee.read_block_data(addr) == payload
        # Phase 4: post-recovery writes keep working.
        mee.write_block(0, data=record_bytes(99999))
        assert mee.read_block_data(0) == record_bytes(99999)

    @pytest.mark.parametrize("protocol", ("leaf", "amnt"))
    def test_offline_tampering_rejected_after_recovery(self, config, protocol):
        mee = MemoryEncryptionEngine(
            config, make_protocol(protocol, config), functional=True
        )
        for key in range(70):
            mee.write_block((key % 20) * 4096, data=record_bytes(key))
        injector = CrashInjector(mee)
        injector.crash_only()
        # The attacker modifies data while the machine is off.
        mee.nvm.backend.corrupt(MetadataRegion.DATA, 0)
        injector.recover()
        with pytest.raises(IntegrityError):
            mee.read_block_data(0)


class TestTimingFunctionalEquivalence:
    def test_same_protocol_decisions_in_both_modes(self, config):
        """Timing and functional engines make identical persistence
        decisions — persists and cache behaviour must line up."""
        profile = WorkloadProfile(
            name="equiv",
            footprint_bytes=1 * MB,
            num_accesses=1500,
            write_fraction=0.5,
            think_cycles=2,
        )
        trace = generate_trace(profile, seed=9)
        timing = build_machine(config, "amnt", seed=9)
        functional = build_machine(config, "amnt", functional=True, seed=9)
        timing_result = simulate(timing, trace, seed=9)
        functional_result = simulate(functional, trace, seed=9)
        assert timing_result.cycles == functional_result.cycles
        assert (
            timing_result.nvm_stats["nvm.persists.total"]
            == functional_result.nvm_stats["nvm.persists.total"]
        )
        assert timing_result.protocol_stats == functional_result.protocol_stats


class TestWorkloadLevelRecovery:
    def test_simulated_workload_then_crash_then_recover(self, config):
        """Run a real simulated workload (through LLC and demand
        paging) in functional mode, crash, recover, and spot-check
        memory contents authenticate."""
        machine = build_machine(config, "amnt", functional=True, seed=4)
        profile = WorkloadProfile(
            name="crashy",
            footprint_bytes=1 * MB,
            num_accesses=2500,
            write_fraction=0.5,
            think_cycles=2,
        )
        trace = generate_trace(profile, seed=4)
        simulate(machine, trace, seed=4)
        outcome = CrashInjector(machine.mee).crash_and_recover()
        assert outcome.ok, outcome.detail
        # Every persisted data block must still authenticate.
        backend = machine.mee.nvm.backend
        for block_index in list(backend.keys(MetadataRegion.DATA))[:64]:
            machine.mee.read_block_data(block_index * 64)
