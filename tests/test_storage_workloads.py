"""Persistence-aware storage workloads and the flush datapath."""

from dataclasses import replace

import pytest

from repro.config import DataCacheConfig, default_config
from repro.sim.engine import simulate
from repro.sim.machine import build_machine
from repro.util.units import MB
from repro.workloads.storage import (
    STORAGE_PROFILES,
    StorageProfile,
    generate_storage_trace,
    persisted_write_count,
    storage_names,
    storage_profile,
)
from repro.workloads.synthetic import WorkloadProfile


@pytest.fixture
def config():
    base = default_config(capacity_bytes=64 * MB)
    return replace(
        base, llc=DataCacheConfig(capacity_bytes=64 * 1024, associativity=16)
    )


def small_profile(persist_fraction=1.0):
    return StorageProfile(
        base=WorkloadProfile(
            name="unit-store",
            footprint_bytes=1 * MB,
            num_accesses=3000,
            write_fraction=0.5,
            think_cycles=4,
        ),
        persist_fraction=persist_fraction,
    )


class TestProfiles:
    def test_registry_contents(self):
        assert storage_names() == ["kvstore", "logger", "oltp"]

    def test_lookup_and_error(self):
        assert storage_profile("kvstore").name == "kvstore"
        with pytest.raises(KeyError, match="unknown storage"):
            storage_profile("nope")

    def test_persist_fraction_validated(self):
        with pytest.raises(ValueError):
            small_profile(persist_fraction=1.5)

    def test_all_profiles_persist_something(self):
        for profile in STORAGE_PROFILES.values():
            assert profile.persist_fraction > 0


class TestGeneration:
    def test_flush_tags_only_writes(self):
        trace = generate_storage_trace(small_profile(), seed=1)
        for access in trace:
            if access.flush:
                assert access.is_write

    def test_persist_fraction_respected(self):
        trace = generate_storage_trace(small_profile(0.5), seed=1)
        writes = sum(1 for access in trace if access.is_write)
        assert persisted_write_count(trace) == pytest.approx(
            writes * 0.5, rel=0.15
        )

    def test_address_stream_matches_plain_variant(self):
        """The flush marking must not perturb the address stream."""
        from repro.workloads.synthetic import generate_trace

        profile = small_profile()
        flushed = generate_storage_trace(profile, seed=9)
        plain = generate_trace(profile.base, seed=9)
        assert [a.vaddr for a in flushed] == [a.vaddr for a in plain]

    def test_accesses_override(self):
        trace = generate_storage_trace(small_profile(), seed=1, accesses=123)
        assert len(trace) == 123


class TestFlushDatapath:
    def test_flushes_force_memory_writes(self, config):
        """With every write persisted, memory writes track application
        writes instead of waiting for evictions."""
        flushed_trace = generate_storage_trace(small_profile(1.0), seed=2)
        from repro.workloads.synthetic import generate_trace

        lazy_trace = generate_trace(small_profile(1.0).base, seed=2)
        flushed = simulate(build_machine(config, "volatile"), flushed_trace, seed=2)
        lazy = simulate(build_machine(config, "volatile"), lazy_trace, seed=2)
        assert (
            flushed.mee_stats["mee.data_writes"]
            > lazy.mee_stats["mee.data_writes"] * 1.4
        )

    def test_persist_path_on_commit_path_hurts_strict_most(self, config):
        """The paper's motivating claim: explicit persistence puts the
        metadata protocol on the application's commit path, where
        strict persistence is most expensive and AMNT is near leaf."""
        trace = generate_storage_trace(small_profile(1.0), seed=3)
        cycles = {}
        for name in ("volatile", "leaf", "strict", "amnt"):
            machine = build_machine(config, name, seed=3)
            cycles[name] = simulate(machine, trace, seed=3).cycles
        assert cycles["strict"] > cycles["leaf"] * 1.3
        assert cycles["amnt"] < cycles["strict"]
        assert cycles["amnt"] <= cycles["leaf"] * 1.1

    def test_functional_flush_data_verifies(self, config):
        trace = generate_storage_trace(small_profile(1.0), seed=4)
        machine = build_machine(config, "amnt", functional=True, seed=4)
        simulate(machine, trace, seed=4)
        from repro.core.recovery import CrashInjector
        from repro.mem.backend import MetadataRegion

        outcome = CrashInjector(machine.mee).crash_and_recover()
        assert outcome.ok, outcome.detail
        backend = machine.mee.nvm.backend
        for block in list(backend.keys(MetadataRegion.DATA))[:32]:
            machine.mee.read_block_data(block * 64)
