"""Adversarial scenarios from the paper's threat model (§3).

The attacker has physical access to everything off-chip: they can snoop
(confidentiality), splice (move valid blocks), spoof (inject forged
blocks), and replay (restore stale-but-once-valid state) — including
while the machine is powered off, which is the new exposure SCM adds.
On-chip state (registers, caches) is trusted and, for the NV registers,
survives power loss.

Each test stages one concrete attack against the functional engine and
asserts it is detected. These complement the per-module tamper tests by
attacking *coherent combinations* of state (data + MAC + counter
together), which naive implementations miss.
"""

import pytest

from repro.config import default_config
from repro.core.mee import MemoryEncryptionEngine
from repro.core.protocol import make_protocol
from repro.core.recovery import CrashInjector
from repro.errors import IntegrityError
from repro.mem.backend import MetadataRegion
from repro.util.units import MB


@pytest.fixture
def config():
    return default_config(capacity_bytes=64 * MB)


def engine(config, protocol="leaf"):
    return MemoryEncryptionEngine(
        config, make_protocol(protocol, config), functional=True
    )


def snapshot_block_state(mee, block_index, counter_index):
    """Capture the full off-chip state an attacker can record."""
    backend = mee.nvm.backend
    return {
        "data": backend.read(MetadataRegion.DATA, block_index),
        "mac": backend.read(MetadataRegion.HMACS, block_index, 8),
        "counter": backend.read(MetadataRegion.COUNTERS, counter_index),
    }


def restore_block_state(mee, block_index, counter_index, snapshot):
    backend = mee.nvm.backend
    backend.write(MetadataRegion.DATA, block_index, snapshot["data"])
    backend.write(MetadataRegion.HMACS, block_index, snapshot["mac"])
    backend.write(MetadataRegion.COUNTERS, counter_index, snapshot["counter"])


class TestConfidentiality:
    def test_plaintext_never_stored_off_chip(self, config):
        mee = engine(config)
        secret = b"API-KEY-0123456789abcdef".ljust(64, b"\x00")
        mee.write_block(0, data=secret)
        stored = mee.nvm.backend.read(MetadataRegion.DATA, 0)
        assert secret not in stored
        assert b"API-KEY" not in stored


class TestCoherentReplay:
    def test_full_block_state_rollback_detected(self, config):
        """The attacker replays data + MAC + counter *together* — a
        self-consistent stale triple. Only the BMT (rooted on-chip)
        exposes it."""
        mee = engine(config)
        mee.write_block(0, data=b"v1".ljust(64, b"\x00"))
        mee.protocol.mee.persist_counter_line(0)  # ensure v1 on media
        stale = snapshot_block_state(mee, 0, 0)
        mee.write_block(0, data=b"v2".ljust(64, b"\x00"))
        restore_block_state(mee, 0, 0, stale)
        # The cached (trusted, on-chip) counter still wins at runtime;
        # force the engine to see the replayed off-chip state.
        mee.mdcache.drop_all()
        mee.tree._volatile_counters.clear()
        mee._volatile_hmacs.clear()
        with pytest.raises(IntegrityError):
            mee.read_block_data(0)

    def test_powered_off_rollback_caught_at_recovery(self, config):
        """Same attack staged across a power cycle: recovery's rebuild
        contradicts the NV root register."""
        from repro.errors import CrashConsistencyError

        mee = engine(config)
        mee.write_block(0, data=b"v1".ljust(64, b"\x00"))
        stale = snapshot_block_state(mee, 0, 0)
        mee.write_block(0, data=b"v2".ljust(64, b"\x00"))
        injector = CrashInjector(mee)
        injector.crash_only()
        restore_block_state(mee, 0, 0, stale)
        with pytest.raises(CrashConsistencyError):
            injector.recover()


class TestSplicing:
    def test_cross_page_splice_detected(self, config):
        """Move a coherent (data, MAC) pair to a different page whose
        counter happens to hold the same value — address binding in the
        MAC must catch it."""
        mee = engine(config)
        mee.write_block(0, data=b"\x41" * 64)          # page 0, counter 1
        mee.write_block(4096, data=b"\x42" * 64)       # page 1, counter 1
        backend = mee.nvm.backend
        source_block = 0
        target_block = 4096 // 64
        backend.write(
            MetadataRegion.DATA,
            target_block,
            backend.read(MetadataRegion.DATA, source_block),
        )
        backend.write(
            MetadataRegion.HMACS,
            target_block,
            backend.read(MetadataRegion.HMACS, source_block, 8),
        )
        mee._volatile_hmacs.clear()
        with pytest.raises(IntegrityError):
            mee.read_block_data(4096)


class TestSpoofing:
    def test_forged_block_with_forged_mac_detected(self, config):
        """An attacker without the key cannot mint a verifying MAC."""
        mee = engine(config)
        mee.write_block(0, data=b"\x01" * 64)
        backend = mee.nvm.backend
        backend.write(MetadataRegion.DATA, 0, b"\xee" * 64)
        backend.write(MetadataRegion.HMACS, 0, b"\xbb" * 8)
        mee._volatile_hmacs.clear()
        with pytest.raises(IntegrityError):
            mee.read_block_data(0)

    def test_forged_tree_node_detected_after_crash(self, config):
        mee = engine(config, protocol="strict")
        mee.write_block(0, data=b"\x01" * 64)
        injector = CrashInjector(mee)
        injector.crash_only()
        node = mee.ancestor_path(0)[0]
        mee.nvm.backend.write(MetadataRegion.TREE, node, b"\xcc" * 64)
        with pytest.raises(IntegrityError):
            mee.read_block_data(0)


class TestAMNTSpecificSurface:
    def test_subtree_register_defeats_in_subtree_replay(self, config):
        """AMNT's fast subtree nodes are lazy in the cache — the NV
        subtree register is the only thing standing between a crash and
        an in-subtree replay. Verify it does its job."""
        mee = engine(config, protocol="amnt")
        interval = config.amnt.movement_interval_writes
        for _ in range(interval + 1):
            mee.write_block(0, data=b"old".ljust(64, b"\x00"))
        stale = snapshot_block_state(mee, 0, 0)
        mee.write_block(0, data=b"new".ljust(64, b"\x00"))
        injector = CrashInjector(mee)
        injector.crash_only()
        restore_block_state(mee, 0, 0, stale)
        outcome = injector.recover()
        assert not outcome.ok
        assert "register" in outcome.detail

    def test_out_of_subtree_state_is_never_stale(self, config):
        """Strictly persisted regions verify directly from media after
        a crash — no recovery needed, nothing for an attacker to race."""
        mee = engine(config, protocol="amnt")
        interval = config.amnt.movement_interval_writes
        for _ in range(interval + 1):  # settle the subtree on region 0
            mee.write_block(0, data=b"\x01" * 64)
        outside_page = mee.geometry.counters_covered_by(3) * 2
        mee.write_block(outside_page * 4096, data=b"\x07" * 64)
        mee.crash()
        report = mee.tree.verify_counter(outside_page, persisted_only=False)
        assert report.mismatched_levels == []
