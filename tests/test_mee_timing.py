"""The MEE's timing behaviour: cache walks, fills, write paths."""

import pytest

from repro.cache.metadata_cache import counter_key, hmac_key, node_key
from repro.config import default_config
from repro.core.mee import MemoryEncryptionEngine
from repro.core.protocol import make_protocol
from repro.mem.backend import MetadataRegion
from repro.util.units import MB


@pytest.fixture
def config():
    return default_config(capacity_bytes=64 * MB)


def engine_for(config, name="volatile"):
    return MemoryEncryptionEngine(config, make_protocol(name, config))


class TestReadPath:
    def test_cold_read_fetches_full_path(self, config):
        mee = engine_for(config)
        mee.read_block(0)
        # data + counter + every node level + hmac line.
        levels = mee.geometry.num_node_levels
        assert mee.nvm.reads(MetadataRegion.DATA) == 1
        assert mee.nvm.reads(MetadataRegion.COUNTERS) == 1
        assert mee.nvm.reads(MetadataRegion.TREE) == levels
        assert mee.nvm.reads(MetadataRegion.HMACS) == 1

    def test_warm_read_stops_at_cached_node(self, config):
        mee = engine_for(config)
        mee.read_block(0)
        tree_reads = mee.nvm.reads(MetadataRegion.TREE)
        mee.read_block(64)  # same page: counter + path all cached
        assert mee.nvm.reads(MetadataRegion.TREE) == tree_reads

    def test_sibling_page_shares_upper_path(self, config):
        mee = engine_for(config)
        mee.read_block(0)
        tree_reads = mee.nvm.reads(MetadataRegion.TREE)
        mee.read_block(8 * 4096)  # different leaf parent, shared upper
        assert mee.nvm.reads(MetadataRegion.TREE) == tree_reads + 1

    def test_read_returns_positive_cycles(self, config):
        mee = engine_for(config)
        assert mee.read_block(0) >= mee.nvm.read_latency_cycles

    def test_walk_stop_stats(self, config):
        mee = engine_for(config)
        mee.read_block(0)
        mee.read_block(64)
        assert mee.stats.get("walk_stopped_at_cache") == 1


class TestWritePath:
    def test_write_dirties_counter_hmac_and_path(self, config):
        mee = engine_for(config)  # volatile: nothing persists
        mee.write_block(0)
        assert mee.mdcache.is_dirty(counter_key(0))
        assert mee.mdcache.is_dirty(hmac_key(0))
        for node in mee.ancestor_path(0):
            assert mee.mdcache.is_dirty(node_key(node[0], node[1]))

    def test_volatile_write_never_persists(self, config):
        mee = engine_for(config)
        mee.write_block(0)
        assert mee.nvm.persists() == 0

    def test_data_write_reaches_nvm(self, config):
        mee = engine_for(config)
        mee.write_block(0)
        assert mee.nvm.writes(MetadataRegion.DATA) == 1

    def test_dirty_eviction_writes_back(self, config):
        mee = engine_for(config)
        capacity = mee.mdcache.capacity_lines()
        # Touch enough distinct pages to overflow the metadata cache.
        for page in range(capacity + 512):
            mee.write_block(page * 4096)
        assert mee.stats.get("metadata_writebacks") > 0
        assert mee.nvm.writes(MetadataRegion.COUNTERS) > 0


class TestPersistHelpers:
    def test_persist_counter_cleans_line(self, config):
        mee = engine_for(config)
        mee.write_block(0)
        assert mee.mdcache.is_dirty(counter_key(0))
        cycles = mee.persist_counter_line(0)
        assert cycles == mee.nvm.write_latency_cycles
        assert not mee.mdcache.is_dirty(counter_key(0))
        assert mee.nvm.persists(MetadataRegion.COUNTERS) == 1

    def test_persist_tree_node_cleans_line(self, config):
        mee = engine_for(config)
        mee.write_block(0)
        node = mee.ancestor_path(0)[0]
        mee.persist_tree_node(node)
        assert not mee.mdcache.is_dirty(node_key(node[0], node[1]))

    def test_posted_write_cheaper_than_persist(self, config):
        mee = engine_for(config)
        assert 0 < mee.posted_write_cycles < mee.nvm.write_latency_cycles


class TestPathMemo:
    def test_ancestor_path_memoized(self, config):
        mee = engine_for(config)
        assert mee.ancestor_path(5) is mee.ancestor_path(5)

    def test_path_matches_geometry(self, config):
        mee = engine_for(config)
        assert mee.ancestor_path(5) == mee.geometry.ancestors_of_counter(5)


class TestCrash:
    def test_crash_empties_volatile_structures(self, config):
        mee = engine_for(config)
        mee.write_block(0)
        mee.crash()
        assert mee.mdcache.occupancy() == 0
        assert mee.stats.get("crashes") == 1
