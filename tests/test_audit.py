"""The persisted-image integrity auditor."""

import pytest

from repro.config import default_config
from repro.core.audit import audit_persisted_image, localize_damage
from repro.core.mee import MemoryEncryptionEngine
from repro.core.protocol import make_protocol
from repro.core.recovery import CrashInjector
from repro.mem.backend import MetadataRegion
from repro.util.units import MB


@pytest.fixture
def config():
    return default_config(capacity_bytes=64 * MB)


def engine_for(config, protocol="strict"):
    return MemoryEncryptionEngine(
        config, make_protocol(protocol, config), functional=True
    )


class TestCleanImages:
    def test_fresh_image_is_clean(self, config):
        report = audit_persisted_image(engine_for(config))
        assert report.clean
        assert report.counters_checked == 0

    def test_strict_image_is_always_clean(self, config):
        mee = engine_for(config, "strict")
        for i in range(30):
            mee.write_block(i * 4096, data=bytes([i + 1]) * 64)
        report = audit_persisted_image(mee)
        assert report.clean
        assert report.counters_checked == 30
        assert report.blocks_checked == 30
        assert "clean" in report.summary()

    def test_recovered_leaf_image_is_clean(self, config):
        mee = engine_for(config, "leaf")
        for i in range(20):
            mee.write_block(i * 4096, data=bytes([i + 1]) * 64)
        CrashInjector(mee).crash_and_recover()
        assert audit_persisted_image(mee).clean

    def test_requires_functional_engine(self, config):
        timing = MemoryEncryptionEngine(config, make_protocol("leaf", config))
        with pytest.raises(RuntimeError):
            audit_persisted_image(timing)


class TestDamageDetection:
    def test_unrecovered_leaf_image_reports_stale_chains(self, config):
        """Leaf persistence leaves inner nodes stale at a crash — the
        audit sees exactly that before recovery runs."""
        mee = engine_for(config, "leaf")
        mee.write_block(0, data=b"\x01" * 64)
        mee.crash()
        report = audit_persisted_image(mee)
        assert not report.clean
        assert 0 in report.broken_counter_chains

    def test_spliced_block_localized_to_mac(self, config):
        mee = engine_for(config, "strict")
        mee.write_block(0, data=b"\x01" * 64)
        mee.write_block(4096, data=b"\x02" * 64)
        backend = mee.nvm.backend
        backend.write(
            MetadataRegion.DATA, 64, backend.read(MetadataRegion.DATA, 0)
        )
        report = audit_persisted_image(mee)
        assert report.broken_macs == [64]
        assert report.broken_counter_chains == []  # chains untouched
        assert "DAMAGED" in report.summary()

    def test_corrupted_counter_localized_to_chain(self, config):
        mee = engine_for(config, "strict")
        mee.write_block(0, data=b"\x01" * 64)
        mee.nvm.backend.corrupt(MetadataRegion.COUNTERS, 0)
        report = audit_persisted_image(mee)
        assert 0 in report.broken_counter_chains
        # The MAC check also fails (it binds the counter).
        assert 0 in report.broken_macs

    def test_missing_mac_counts_as_broken(self, config):
        mee = engine_for(config, "volatile")
        mee.write_block(0, data=b"\x01" * 64)
        mee.crash()  # MAC was only in the volatile overlay
        report = audit_persisted_image(mee)
        assert 0 in report.broken_macs


class TestLocalization:
    def test_damage_mapped_to_subtree_regions(self, config):
        mee = engine_for(config, "strict")
        per_region = mee.geometry.counters_covered_by(3)
        for region in (0, 2):
            for i in range(3):
                page = region * per_region + i
                mee.write_block(page * 4096, data=bytes([i + 1]) * 64)
                mee.nvm.backend.corrupt(MetadataRegion.COUNTERS, page)
        report = audit_persisted_image(mee)
        clusters = localize_damage(mee, report)
        assert clusters == [(0, 3), (2, 3)]
