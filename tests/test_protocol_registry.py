"""Protocol registry and construction."""

import pytest

from repro.config import default_config
from repro.core.protocol import (
    make_protocol,
    protocol_names,
    protocol_uses_modified_os,
)
from repro.errors import ConfigError


class TestRegistry:
    def test_all_paper_protocols_registered(self):
        names = protocol_names()
        for expected in (
            "volatile", "strict", "leaf", "osiris", "anubis", "bmf",
            "amnt", "amnt++",
        ):
            assert expected in names

    def test_make_protocol_by_name(self):
        protocol = make_protocol("leaf", default_config())
        assert protocol.name == "leaf"
        assert protocol.display_name == "leaf"

    def test_amnt_plus_plus_shares_hardware(self):
        protocol = make_protocol("amnt++", default_config())
        assert protocol.name == "amnt"  # same hardware class
        assert protocol.display_name == "amnt++"

    def test_modified_os_flags(self):
        assert protocol_uses_modified_os("amnt++")
        assert not protocol_uses_modified_os("amnt")
        assert not protocol_uses_modified_os("leaf")

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigError, match="unknown protocol"):
            make_protocol("nacht", default_config())
        with pytest.raises(ConfigError):
            protocol_uses_modified_os("nacht")

    def test_crash_consistency_flags(self):
        config = default_config()
        assert not make_protocol("volatile", config).is_crash_consistent
        for name in ("strict", "leaf", "osiris", "anubis", "bmf", "amnt"):
            assert make_protocol(name, config).is_crash_consistent

    def test_repr_names_protocol(self):
        assert "amnt" in repr(make_protocol("amnt", default_config()))
