"""AMNT++ free-list restructuring and the memory manager."""

import pytest

from repro.os.amntpp import AMNTPlusPlusRestructurer
from repro.os.buddy import BuddyAllocator
from repro.os.process import MemoryManager
from repro.util.rng import make_rng


def region_of(pfn: int) -> int:
    """4 regions of 256 pages each over a 1024-page machine."""
    return pfn // 256


@pytest.fixture
def aged_allocator():
    allocator = BuddyAllocator(total_pages=1024, max_order=5)
    allocator.scatter(make_rng(3), span_chunks=16)  # span 512 pages
    return allocator


class TestRestructure:
    def test_biases_head_toward_one_region(self, aged_allocator):
        restructurer = AMNTPlusPlusRestructurer(region_of_pfn=region_of)
        chosen = restructurer.restructure(aged_allocator)
        assert chosen >= 0
        # Every next allocation until that region's pool drains comes
        # from the chosen region.
        for _ in range(32):
            assert region_of(aged_allocator.alloc_pages(0)) == chosen

    def test_chooses_region_with_most_free_chunks(self):
        allocator = BuddyAllocator(total_pages=1024, max_order=5)
        # Hold everything, then free 3 pages in region 2, 1 in region 0.
        held = [allocator.alloc_pages(0) for _ in range(1024)]
        for pfn in (512, 514, 516, 0):
            allocator.free_pages(pfn, 0)
        restructurer = AMNTPlusPlusRestructurer(region_of_pfn=region_of)
        assert restructurer.restructure(allocator) == 2

    def test_preserves_chunk_population(self, aged_allocator):
        before = sorted(
            (chunk.pfn, chunk.order) for chunk in aged_allocator.free_chunks()
        )
        AMNTPlusPlusRestructurer(region_of_pfn=region_of).restructure(
            aged_allocator
        )
        after = sorted(
            (chunk.pfn, chunk.order) for chunk in aged_allocator.free_chunks()
        )
        assert before == after  # reorder only, never create/destroy

    def test_empty_allocator_is_harmless(self):
        allocator = BuddyAllocator(total_pages=4, max_order=2)
        allocator.alloc_pages(2)
        restructurer = AMNTPlusPlusRestructurer(region_of_pfn=region_of)
        assert restructurer.restructure(allocator) == -1

    def test_instructions_charged_separately(self, aged_allocator):
        restructurer = AMNTPlusPlusRestructurer(region_of_pfn=region_of)
        restructurer.restructure(aged_allocator)
        assert aged_allocator.stats.get("restructure_instructions") > 0
        assert (
            aged_allocator.instructions()
            >= aged_allocator.stats.get("restructure_instructions")
        )

    def test_on_free_throttled_by_interval(self, aged_allocator):
        restructurer = AMNTPlusPlusRestructurer(
            region_of_pfn=region_of, reclaim_interval=4
        )
        ran = [restructurer.on_free(aged_allocator) for _ in range(8)]
        assert ran == [False, False, False, True] * 2


class TestMemoryManager:
    def test_demand_paging_maps_on_first_touch(self):
        mm = MemoryManager(BuddyAllocator(1024, max_order=5), page_bytes=4096)
        paddr1 = mm.translate(0, 0x1000_0000)
        paddr2 = mm.translate(0, 0x1000_0000 + 64)
        assert paddr2 == paddr1 + 64  # same page
        assert mm.stats.get("page_faults") == 1

    def test_processes_have_distinct_spaces(self):
        mm = MemoryManager(BuddyAllocator(1024, max_order=5), page_bytes=4096)
        a = mm.translate(0, 0x1000_0000)
        b = mm.translate(1, 0x1000_0000)
        assert a // 4096 != b // 4096

    def test_release_process_frees_frames(self):
        mm = MemoryManager(BuddyAllocator(1024, max_order=5), page_bytes=4096)
        for i in range(8):
            mm.translate(0, i * 4096)
        free_before = mm.allocator.free_pages_total()
        assert mm.release_process(0) == 8
        assert mm.allocator.free_pages_total() == free_before + 8

    def test_release_unknown_pid_is_noop(self):
        mm = MemoryManager(BuddyAllocator(1024, max_order=5))
        assert mm.release_process(42) == 0

    def test_churn_triggers_reclamation_path(self):
        restructurer = AMNTPlusPlusRestructurer(
            region_of_pfn=region_of, reclaim_interval=8
        )
        allocator = BuddyAllocator(1024, max_order=5)
        mm = MemoryManager(allocator, restructurer=restructurer)
        mm.churn(make_rng(1), bursts=2, pages_per_burst=16)
        assert allocator.stats.get("restructures") >= 1
        assert mm.modified_os

    def test_stock_manager_reports_unmodified(self):
        mm = MemoryManager(BuddyAllocator(1024, max_order=5))
        assert not mm.modified_os
