"""Metadata-plan compilation: planned replay == direct simulation.

The plan compiler (repro.sim.plan) resolves every metadata address a
boundary stream will touch — counter line, HMAC line, BMT ancestor
path, premixed cache-set indices — once per (trace, geometry). Its
correctness claim is the same as the replay layer's one level up:
*bit identity* with the direct path. These tests check that claim
three ways: full-result equality across the protocol lineup, a
randomized-geometry property test that recomputes every plan column
from first principles, and cache-contract tests (geometry change
recompiles; a metadata-cache-only change shares the plan).
"""

import random
from dataclasses import replace

import pytest

from repro.cache.cache import build_cache, mix_of
from repro.cache.metadata_cache import counter_key, hmac_key, node_key
from repro.config import default_config
from repro.core.mee import MACS_PER_LINE, MetadataRegion
from repro.core.protocol import protocol_names, protocol_uses_modified_os
from repro.integrity.geometry import TreeGeometry
from repro.mem.address import AddressSpace
from repro.sim.engine import simulate, simulate_from_plan, simulate_from_stream
from repro.sim.machine import build_machine
from repro.sim.parallel import (
    ParallelSweepRunner,
    SweepCell,
    precompile_plans,
    precompile_streams,
    run_cell,
    stream_spec_for,
)
from repro.sim.plan import MetadataPlan, compile_metadata_plan
from repro.sim.replay import compile_boundary_stream
from repro.sim.runner import run_protocol_sweep
from repro.util.units import MB
from repro.workloads.registry import (
    boundary_stream_cache_clear,
    materialize_boundary_stream,
    materialize_metadata_plan,
    materialize_trace,
    metadata_plan_cache_clear,
    metadata_plan_cache_size,
    metadata_plan_spec,
    profile_spec,
)


@pytest.fixture(autouse=True)
def _clean_caches():
    boundary_stream_cache_clear()
    metadata_plan_cache_clear()
    yield
    boundary_stream_cache_clear()
    metadata_plan_cache_clear()


def machine_tree_state(machine):
    tree = machine.mee.tree
    if tree is None:
        return None
    tree.materialize_all()
    region = MetadataRegion.TREE
    return (
        tree.root_register,
        {key: tree.backend.read(region, key) for key in tree.backend.keys(region)},
    )


class TestPlanBitIdentity:
    """Every registered protocol, both BMT disciplines, real crypto:
    the plan-driven replay must end in exactly the direct path's state
    — timing result and persisted tree bytes alike."""

    @pytest.mark.parametrize("integrity_mode", ["eager", "lazy"])
    @pytest.mark.parametrize("protocol", protocol_names())
    def test_plan_matches_direct(self, small_config, protocol, integrity_mode):
        trace = materialize_trace(profile_spec("parsec", "blackscholes", 600, 7))
        modified = protocol_uses_modified_os(protocol)

        direct_machine = build_machine(
            small_config, protocol, functional=True,
            seed=7, integrity_mode=integrity_mode,
        )
        direct = simulate(direct_machine, trace, seed=7)

        stream = compile_boundary_stream(
            trace, small_config, seed=7, modified_os=modified
        )
        plan = compile_metadata_plan(stream, small_config)
        plan_machine = build_machine(
            small_config, protocol, functional=True,
            seed=7, integrity_mode=integrity_mode,
        )
        planned = simulate_from_plan(stream, plan, plan_machine)

        assert planned == direct
        assert machine_tree_state(plan_machine) == machine_tree_state(
            direct_machine
        )

    def test_plan_matches_stream_timing_only(self, small_config):
        """Timing-only machines (no functional crypto) through both
        replay flavours, including the pointer-chasing profile."""
        trace = materialize_trace(profile_spec("parsec", "canneal", 800, 7))
        stream = compile_boundary_stream(trace, small_config, seed=7)
        plan = compile_metadata_plan(stream, small_config)
        for protocol in ("volatile", "strict", "amnt"):
            streamed = simulate_from_stream(
                stream, build_machine(small_config, protocol, seed=7)
            )
            planned = simulate_from_plan(
                stream, plan, build_machine(small_config, protocol, seed=7)
            )
            assert planned == streamed, protocol


GEOMETRY_CHOICES = {
    # (page_bytes, block_bytes) pairs; counters_per_block follows.
    "page_block": [(4096, 64), (2048, 64), (1024, 32), (4096, 128)],
    "arity": [4, 8, 16],
    "capacity_mb": [16, 64, 256],
}


def _random_geometry_config(rng):
    page_bytes, block_bytes = rng.choice(GEOMETRY_CHOICES["page_block"])
    base = default_config(
        capacity_bytes=rng.choice(GEOMETRY_CHOICES["capacity_mb"]) * MB
    )
    return replace(
        base,
        security=replace(
            base.security,
            block_bytes=block_bytes,
            page_bytes=page_bytes,
            counters_per_block=page_bytes // block_bytes,
            tree_arity=rng.choice(GEOMETRY_CHOICES["arity"]),
        ),
    )


class TestPlanContentsProperty:
    """The property test: every plan column must equal the value
    recomputed on the fly from the stream's addresses and the tree
    geometry — across randomized line sizes, arities, counter ratios,
    and footprints."""

    @pytest.mark.parametrize("seed", range(6))
    def test_plan_columns_match_recomputation(self, seed):
        rng = random.Random(seed)
        config = _random_geometry_config(rng)
        accesses = rng.choice([300, 700, 1200])
        trace = materialize_trace(
            profile_spec("parsec", "bodytrack", accesses, seed)
        )
        stream = compile_boundary_stream(trace, config, seed=seed)
        plan = compile_metadata_plan(stream, config)

        geometry = TreeGeometry.from_config(config)
        space = AddressSpace(
            config.pcm.capacity_bytes,
            block_bytes=config.security.block_bytes,
            page_bytes=config.security.page_bytes,
        )
        block_shift = space._block_shift
        page_shift = space._page_shift
        arity = geometry.arity

        assert len(plan) == len(stream.addr)
        records = plan.event_records()
        for i, addr in enumerate(stream.addr):
            counter = addr >> page_shift
            hline = (addr >> block_shift) // MACS_PER_LINE
            assert plan.counter_line[i] == counter
            assert plan.hmac_line[i] == hline
            assert plan.leaf_slot[i] == counter % arity
            expected_path = geometry.ancestors_of_counter(counter)
            pool = plan.node_pool
            planned_path = [
                pool[n] for n in plan.path_node_ids(plan.path_id[i])
            ]
            assert planned_path == expected_path
            ctr_key, ctr_mix, hkey, hmac_mix, triples, path, rec_counter = (
                records[i]
            )
            assert rec_counter == counter
            assert ctr_key == counter_key(counter)
            assert ctr_mix == mix_of(ctr_key)
            assert hkey == hmac_key(hline)
            assert hmac_mix == mix_of(hkey)
            assert path == expected_path
            assert [t[0] for t in triples] == expected_path
            for node, key, mix in triples:
                assert key == node_key(*node)
                assert mix == mix_of(key)

    def test_sibling_counters_share_one_path_object(self, small_config):
        trace = materialize_trace(profile_spec("parsec", "canneal", 2000, 7))
        stream = compile_boundary_stream(trace, small_config, seed=7)
        plan = compile_metadata_plan(stream, small_config)
        records = plan.records()
        by_head = {}
        for rec in records:
            path = rec[5]
            head = path[0]
            if head in by_head:
                assert by_head[head] is path
            else:
                by_head[head] = path


class TestPremixedAccess:
    """access_line_premixed(key, mix_of(key)) must be a bit-identical
    drop-in for access_line on a default-placement cache."""

    def test_premixed_matches_access_line(self):
        rng = random.Random(11)
        keys = [counter_key(i) for i in range(64)] + [
            node_key(level, i) for level in (1, 2, 3) for i in range(16)
        ]
        sequence = [
            (rng.choice(keys), rng.random() < 0.3) for _ in range(4000)
        ]
        plain = build_cache(4096, 64, 4, name="plain")
        premixed = build_cache(4096, 64, 4, name="premixed")
        for key, dirty in sequence:
            expected = plain.access_line(key, dirty)
            actual = premixed.access_line_premixed(key, mix_of(key), dirty)
            if expected is True or expected is None:
                assert actual == expected
            else:
                assert (actual.key, actual.dirty) == (
                    expected.key,
                    expected.dirty,
                )
        for stat in ("hits", "misses", "fills", "evictions", "dirty_evictions"):
            assert plain.stats.get(stat) == premixed.stats.get(stat)


class TestPlanCache:
    def test_same_spec_returns_same_object(self, small_config):
        spec = metadata_plan_spec(
            stream_spec_for(
                SweepCell(
                    protocol="strict",
                    trace=profile_spec("parsec", "blackscholes", 400, 7),
                    seed=7,
                    replay=True,
                ),
                small_config,
            )
        )
        first = materialize_metadata_plan(spec, small_config)
        second = materialize_metadata_plan(spec, small_config)
        assert isinstance(first, MetadataPlan)
        assert first is second
        assert metadata_plan_cache_size() == 1

    def test_geometry_change_forces_recompile(self, small_config):
        cell = SweepCell(
            protocol="strict",
            trace=profile_spec("parsec", "blackscholes", 400, 7),
            seed=7,
            replay=True,
        )
        bigger = default_config(
            capacity_bytes=small_config.pcm.capacity_bytes * 4
        )
        base_spec = metadata_plan_spec(stream_spec_for(cell, small_config))
        resized_spec = metadata_plan_spec(stream_spec_for(cell, bigger))
        assert base_spec != resized_spec
        first = materialize_metadata_plan(base_spec, small_config)
        second = materialize_metadata_plan(resized_spec, bigger)
        assert first is not second
        assert metadata_plan_cache_size() == 2

    def test_metadata_cache_change_shares_the_plan(self, small_config):
        """A config differing only in metadata-cache capacity maps to
        the same plan spec — the plan never depends on cache shape."""
        cell = SweepCell(
            protocol="strict",
            trace=profile_spec("parsec", "blackscholes", 400, 7),
            seed=7,
            replay=True,
        )
        resized_cache = replace(
            small_config,
            metadata_cache=replace(
                small_config.metadata_cache,
                capacity_bytes=small_config.metadata_cache.capacity_bytes * 2,
            ),
        )
        base_spec = metadata_plan_spec(stream_spec_for(cell, small_config))
        other_spec = metadata_plan_spec(stream_spec_for(cell, resized_cache))
        assert base_spec == other_spec
        first = materialize_metadata_plan(base_spec, small_config)
        second = materialize_metadata_plan(other_spec, resized_cache)
        assert first is second
        assert metadata_plan_cache_size() == 1

    def test_precompile_counts_distinct_plans(self, small_config):
        cells = [
            SweepCell(
                protocol=name,
                trace=profile_spec("parsec", "blackscholes", 400, 7),
                seed=7,
                replay=True,
            )
            for name in ("volatile", "leaf", "amnt", "amnt++")
        ]
        precompile_streams(cells, small_config)
        # Three stock-OS protocols share one plan; amnt++ gets its own.
        assert precompile_plans(cells, small_config) == 2
        assert metadata_plan_cache_size() == 2


class TestSweepPaths:
    def test_run_protocol_sweep_plan_matches_direct(self, small_config):
        trace_spec = profile_spec("parsec", "bodytrack", 800, 7)
        protocols = ("volatile", "strict", "amnt", "amnt++")
        planned = run_protocol_sweep(trace_spec, small_config, protocols, seed=7)
        unplanned = run_protocol_sweep(
            trace_spec, small_config, protocols, seed=7, plan=False
        )
        direct = run_protocol_sweep(
            trace_spec, small_config, protocols, seed=7, replay=False
        )
        assert planned == unplanned == direct

    def test_parallel_plan_matches_serial_direct(self, small_config):
        cells = [
            SweepCell(
                protocol=name,
                trace=profile_spec("parsec", "bodytrack", 800, 7),
                seed=7,
                replay=True,
            )
            for name in ("volatile", "strict", "amnt")
        ]
        parallel = ParallelSweepRunner(workers=2).run(cells, small_config)
        serial = [
            run_cell(replace(cell, replay=False), small_config)
            for cell in cells
        ]
        assert parallel == serial

    def test_fault_campaigns_stay_unplanned(self):
        """Fault cells go through drive_memory_boundary, never the
        planned replay — the crash oracles need live per-access state."""
        import inspect

        from repro.faults import campaign

        source = inspect.getsource(campaign)
        assert "simulate_from_plan" not in source
