"""Crash-safe artifact writes (util.atomicio)."""

import json
import os
from dataclasses import dataclass

import pytest

from repro.util.atomicio import (
    atomic_append_jsonl,
    atomic_write_json,
    atomic_write_text,
    fsync_directory,
    jsonable,
    read_jsonl,
)


class TestAtomicWriteText:
    def test_writes_content(self, tmp_path):
        target = tmp_path / "out.txt"
        result = atomic_write_text(target, "hello\n")
        assert result == target
        assert target.read_text() == "hello\n"

    def test_overwrites_existing(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_no_temp_siblings_left_behind(self, tmp_path):
        target = tmp_path / "out.txt"
        for i in range(3):
            atomic_write_text(target, f"version {i}")
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_failed_serialization_leaves_no_temp(self, tmp_path):
        target = tmp_path / "out.json"
        target.write_text("intact")
        with pytest.raises(TypeError):
            atomic_write_json(target, {"bad": object()})
        # json.dumps happens before any file IO: destination untouched.
        assert target.read_text() == "intact"
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_special_destination_written_in_place(self):
        """Device nodes cannot be atomically replaced — renaming over
        /dev/null would destroy it. The writer must fall back to a
        plain write and leave the node a device."""
        atomic_write_text("/dev/null", "discarded")
        assert not os.path.isfile("/dev/null")  # still a character device

    def test_unicode_round_trip(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "träd — tree\n")
        assert target.read_text(encoding="utf-8") == "träd — tree\n"


class TestAtomicWriteJson:
    def test_document_round_trips(self, tmp_path):
        target = tmp_path / "doc.json"
        atomic_write_json(target, {"cells": [1, 2], "ok": True})
        assert json.loads(target.read_text()) == {"cells": [1, 2], "ok": True}

    def test_trailing_newline(self, tmp_path):
        target = tmp_path / "doc.json"
        atomic_write_json(target, {})
        assert target.read_text().endswith("\n")

    def test_sort_keys(self, tmp_path):
        target = tmp_path / "doc.json"
        atomic_write_json(target, {"b": 1, "a": 2}, sort_keys=True)
        assert target.read_text().index('"a"') < target.read_text().index('"b"')


class TestJsonable:
    def test_dataclass_and_tuple_reduction(self):
        @dataclass
        class Point:
            x: int
            label: str

        document = jsonable({"point": Point(1, "origin"), "pair": (1, 2)})
        assert document == {"point": {"x": 1, "label": "origin"}, "pair": [1, 2]}

    def test_unknown_objects_become_strings(self):
        class Odd:
            def __repr__(self):
                return "<odd>"

        assert jsonable({"o": Odd()}) == {"o": "<odd>"}

    def test_mapping_keys_coerced_to_strings(self):
        assert jsonable({1: "one"}) == {"1": "one"}


class TestAppendJsonl:
    def test_appends_one_line_per_record(self, tmp_path):
        log = tmp_path / "trend.jsonl"
        atomic_append_jsonl(log, {"run": 1})
        atomic_append_jsonl(log, {"run": 2, "nested": {"a": [1, 2]}})
        lines = log.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0]) == {"run": 1}
        assert read_jsonl(log) == [
            {"run": 1},
            {"run": 2, "nested": {"a": [1, 2]}},
        ]

    def test_append_never_rewrites_earlier_records(self, tmp_path):
        log = tmp_path / "trend.jsonl"
        atomic_append_jsonl(log, {"run": 1})
        before = log.read_text()
        atomic_append_jsonl(log, {"run": 2})
        assert log.read_text().startswith(before)

    def test_read_skips_torn_trailing_line(self, tmp_path):
        log = tmp_path / "trend.jsonl"
        atomic_append_jsonl(log, {"run": 1})
        with open(log, "a", encoding="utf-8") as handle:
            handle.write('{"run": 2, "torn')  # crash mid-append
        assert read_jsonl(log) == [{"run": 1}]
        # The next writer notices the tear and starts a fresh line, so
        # the crashed append costs one record, never two.
        atomic_append_jsonl(log, {"run": 3})
        assert read_jsonl(log) == [{"run": 1}, {"run": 3}]

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_jsonl(tmp_path / "absent.jsonl") == []

    def test_records_are_jsonable_reduced(self, tmp_path):
        log = tmp_path / "trend.jsonl"
        atomic_append_jsonl(log, {"pair": (1, 2)})
        assert read_jsonl(log) == [{"pair": [1, 2]}]


class TestFsyncDirectory:
    def test_missing_directory_is_noop(self, tmp_path):
        fsync_directory(tmp_path / "does-not-exist")  # must not raise
