"""Hybrid SCM + DRAM secure memory (§7.3)."""

import pytest

from repro.config import default_config
from repro.core.hybrid import HybridLayout, HybridSCMDRAMSystem
from repro.errors import AddressError, ConfigError
from repro.util.units import MB


@pytest.fixture
def layout():
    return HybridLayout(dram_bytes=32 * MB, scm_bytes=32 * MB)


@pytest.fixture
def system(layout):
    return HybridSCMDRAMSystem(
        default_config(capacity_bytes=32 * MB), layout, functional=True
    )


def scm_addr(layout, offset=0):
    return layout.dram_bytes + offset


class TestLayout:
    def test_partition_routing(self, layout):
        assert layout.partition_of(0) == ("dram", 0)
        assert layout.partition_of(32 * MB - 1) == ("dram", 32 * MB - 1)
        assert layout.partition_of(32 * MB) == ("scm", 0)

    def test_out_of_range(self, layout):
        with pytest.raises(AddressError):
            layout.partition_of(64 * MB)
        with pytest.raises(AddressError):
            layout.partition_of(-1)

    def test_power_of_two_required(self):
        with pytest.raises(ConfigError):
            HybridLayout(dram_bytes=3 * MB, scm_bytes=32 * MB)

    def test_is_scm(self, system, layout):
        assert not system.is_scm(0)
        assert system.is_scm(scm_addr(layout))


class TestDatapath:
    def test_roundtrip_both_partitions(self, system, layout):
        system.write_block(0, data=b"\x0d" * 64)
        system.write_block(scm_addr(layout), data=b"\x0e" * 64)
        assert system.read_block_data(0) == b"\x0d" * 64
        assert system.read_block_data(scm_addr(layout)) == b"\x0e" * 64

    def test_persists_come_only_from_scm(self, system, layout):
        for i in range(10):
            system.write_block(i * 4096, data=bytes([i]) * 64)
        assert system.persist_traffic() == 0  # DRAM side persists nothing
        system.write_block(scm_addr(layout), data=b"\x01" * 64)
        assert system.persist_traffic() > 0

    def test_independent_trees(self, system, layout):
        """Writing DRAM never touches the SCM root and vice versa."""
        scm_root = system.scm.tree.root_register
        system.write_block(0, data=b"\x01" * 64)
        assert system.scm.tree.root_register == scm_root
        dram_root = system.dram.tree.root_register
        system.write_block(scm_addr(layout), data=b"\x02" * 64)
        assert system.dram.tree.root_register == dram_root


class TestCrashSemantics:
    def test_scm_survives_dram_resets(self, system, layout):
        system.write_block(0, data=b"\xaa" * 64)  # DRAM
        interval = system.scm.config.amnt.movement_interval_writes
        for _ in range(interval + 2):  # SCM, subtree settles
            system.write_block(scm_addr(layout), data=b"\xbb" * 64)
        outcome = system.crash_and_recover()
        assert outcome.ok, outcome.detail
        # SCM data recovered and authenticated:
        assert system.read_block_data(scm_addr(layout)) == b"\xbb" * 64
        # DRAM data gone, back to zeroed boot state (and verifiable):
        assert system.read_block_data(0) == bytes(64)

    def test_recovery_label_mentions_both_sides(self, system):
        outcome = system.crash_and_recover()
        assert "volatile-dram" in outcome.protocol

    def test_post_crash_writes_work_on_both_sides(self, system, layout):
        system.crash_and_recover()
        system.write_block(0, data=b"\x11" * 64)
        system.write_block(scm_addr(layout), data=b"\x22" * 64)
        assert system.read_block_data(0) == b"\x11" * 64
        assert system.read_block_data(scm_addr(layout)) == b"\x22" * 64


class TestAlternativeSCMProtocols:
    def test_scm_side_can_run_leaf(self, layout):
        system = HybridSCMDRAMSystem(
            default_config(capacity_bytes=32 * MB),
            layout,
            functional=True,
            scm_protocol="leaf",
        )
        system.write_block(scm_addr(layout), data=b"\x33" * 64)
        outcome = system.crash_and_recover()
        assert outcome.ok
        assert "leaf" in outcome.protocol
        assert system.read_block_data(scm_addr(layout)) == b"\x33" * 64

    def test_scm_side_can_run_strict(self, layout):
        system = HybridSCMDRAMSystem(
            default_config(capacity_bytes=32 * MB),
            layout,
            functional=True,
            scm_protocol="strict",
        )
        system.write_block(scm_addr(layout), data=b"\x44" * 64)
        outcome = system.crash_and_recover()
        assert outcome.ok
        assert outcome.nodes_recomputed == 0


class TestRegisters:
    def test_dram_register_is_volatile_scm_register_nonvolatile(self, system):
        nonvolatile, volatile = system.extra_register_bytes()
        # SCM: global root + AMNT subtree register.
        assert nonvolatile == 128
        # DRAM: its own root register, volatile by design.
        assert volatile == 64
