"""Per-process page tables."""

import pytest

from repro.os.pagetable import PageTable


class TestPageTable:
    def test_translate_unmapped_is_none(self):
        assert PageTable().translate(0x1234) is None

    def test_map_and_translate(self):
        table = PageTable()
        table.map(3, 17)
        assert table.translate(3 * 4096 + 100) == 17 * 4096 + 100

    def test_lookup(self):
        table = PageTable()
        table.map(3, 17)
        assert table.lookup(3) == 17
        assert table.lookup(4) is None

    def test_double_map_rejected(self):
        table = PageTable()
        table.map(3, 17)
        with pytest.raises(KeyError):
            table.map(3, 18)

    def test_unmap(self):
        table = PageTable()
        table.map(3, 17)
        assert table.unmap(3) == 17
        assert table.translate(3 * 4096) is None

    def test_len_and_iteration(self):
        table = PageTable()
        table.map(1, 10)
        table.map(2, 20)
        assert len(table) == 2
        assert dict(table.mapped_pages()) == {1: 10, 2: 20}

    def test_custom_page_size(self):
        table = PageTable(page_bytes=8192)
        table.map(1, 5)
        assert table.translate(8192 + 1) == 5 * 8192 + 1
