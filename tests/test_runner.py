"""Protocol sweeps and summary helpers."""

import pytest

from dataclasses import replace

from repro.config import DataCacheConfig, default_config
from repro.sim.runner import (
    FIGURE_PROTOCOLS,
    geometric_mean,
    run_protocol_sweep,
    sweep_normalized,
)
from repro.util.units import MB
from repro.workloads.synthetic import WorkloadProfile, generate_trace


@pytest.fixture
def config():
    # A small LLC so short unit traces actually generate memory
    # writebacks (the traffic the persistence protocols differ on).
    base = default_config(capacity_bytes=64 * MB)
    return replace(
        base,
        llc=DataCacheConfig(capacity_bytes=64 * 1024, associativity=16),
    )


@pytest.fixture
def trace():
    profile = WorkloadProfile(
        name="sweep-unit",
        footprint_bytes=2 * MB,
        num_accesses=3000,
        write_fraction=0.4,
        think_cycles=5,
    )
    return generate_trace(profile, seed=3)


class TestSweep:
    def test_runs_each_protocol_once(self, config, trace):
        results = run_protocol_sweep(
            trace, config, ("volatile", "leaf"), seed=1
        )
        assert set(results) == {"volatile", "leaf"}
        assert results["leaf"].protocol == "leaf"

    def test_default_lineup_matches_figures(self):
        assert FIGURE_PROTOCOLS == (
            "volatile", "leaf", "strict", "anubis", "bmf", "amnt",
        )

    def test_normalized_includes_baseline_implicitly(self, config, trace):
        normalized = sweep_normalized(
            trace, config, protocols=("leaf", "strict"), seed=1
        )
        assert normalized["volatile"] == 1.0
        assert normalized["strict"] > normalized["leaf"]

    def test_protocol_ordering_story(self, config, trace):
        """The paper's headline ordering on a write-heavy workload:
        leaf <= amnt << strict, with anubis and bmf in between."""
        normalized = sweep_normalized(
            trace,
            config,
            protocols=("leaf", "strict", "anubis", "bmf", "amnt"),
            seed=1,
        )
        assert normalized["amnt"] <= normalized["bmf"]
        assert normalized["amnt"] < normalized["strict"]
        assert normalized["leaf"] < normalized["strict"]


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single_value(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_long_tiny_sweep_does_not_underflow(self):
        # A running product of 500 values ~1e-3 underflows a double to
        # 0.0; the log-sum form keeps full precision.
        assert geometric_mean([1e-3] * 500) == pytest.approx(1e-3)

    def test_long_huge_sweep_does_not_overflow(self):
        assert geometric_mean([1e300] * 10) == pytest.approx(1e300, rel=1e-9)

    def test_mixed_extremes(self):
        values = [1e200, 1e-200] * 50
        assert geometric_mean(values) == pytest.approx(1.0)


class TestSweepValidation:
    """run_protocol_sweep fails fast on a malformed grid, before any
    machine is built (serial and parallel paths alike)."""

    def test_unknown_protocol_rejected_up_front(self, config, trace):
        from repro.errors import ConfigValidationError

        with pytest.raises(ConfigValidationError) as excinfo:
            run_protocol_sweep(trace, config, protocols=("volatile", "typo"))
        assert excinfo.value.field == "cell.protocol"
        assert "typo" in str(excinfo.value)

    def test_bad_churn_interval_rejected_up_front(self, config, trace):
        from repro.errors import ConfigValidationError

        with pytest.raises(ConfigValidationError) as excinfo:
            run_protocol_sweep(
                trace, config, protocols=("volatile",), churn_interval=0
            )
        assert excinfo.value.field == "cell.churn_interval"

    def test_malformed_spec_rejected_up_front(self, config):
        from repro.errors import ConfigValidationError
        from repro.workloads.registry import profile_spec

        spec = profile_spec("parsec", "blackscholes", 0, 1)
        with pytest.raises(ConfigValidationError) as excinfo:
            run_protocol_sweep(spec, config, protocols=("volatile",))
        assert excinfo.value.field == "trace.accesses"
