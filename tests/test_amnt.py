"""AMNT: the tree-within-a-tree protocol (Section 4)."""

import pytest

from repro.cache.metadata_cache import node_key
from repro.config import default_config
from repro.core.mee import MemoryEncryptionEngine
from repro.core.protocol import make_protocol
from repro.core.recovery import CrashInjector
from repro.mem.backend import MetadataRegion
from repro.mem.bandwidth import RecoveryBandwidthModel
from repro.util.units import GB, MB, TB


@pytest.fixture
def config():
    return default_config(capacity_bytes=64 * MB)


def engine_for(config, functional=False):
    return MemoryEncryptionEngine(
        config, make_protocol("amnt", config), functional=functional
    )


def settle_subtree(mee, page=0):
    """Write one page until the first selection interval elapses, so the
    fast subtree lands on that page's region."""
    interval = mee.config.amnt.movement_interval_writes
    for _ in range(interval):
        mee.write_block(page * 4096)
    return mee.protocol.current_region


class TestRegionArithmetic:
    def test_region_of_counter(self, config):
        mee = engine_for(config)
        per_region = mee.geometry.counters_covered_by(config.amnt.subtree_level)
        assert mee.protocol.region_of_counter(0) == 0
        assert mee.protocol.region_of_counter(per_region) == 1

    def test_region_of_frame_matches_counters(self, config):
        mee = engine_for(config)
        assert mee.protocol.region_of_frame(0) == 0
        frames_per_region = mee.geometry.region_bytes(3) // 4096
        assert mee.protocol.region_of_frame(frames_per_region) == 1

    def test_no_subtree_before_first_interval(self, config):
        mee = engine_for(config)
        assert mee.protocol.current_region is None
        assert mee.protocol.subtree_node() is None
        assert not mee.protocol.in_subtree(0)


class TestSelection:
    def test_first_interval_selects_hot_region(self, config):
        mee = engine_for(config)
        region = settle_subtree(mee, page=0)
        assert region == 0
        assert mee.protocol.subtree_node() == (config.amnt.subtree_level, 0)

    def test_selection_interval_counted(self, config):
        mee = engine_for(config)
        settle_subtree(mee)
        assert (
            mee.protocol.stats.get("selection_intervals") == 1
        )

    def test_stable_hotness_never_moves_again(self, config):
        mee = engine_for(config)
        settle_subtree(mee)
        for _ in range(4 * config.amnt.movement_interval_writes):
            mee.write_block(0)
        assert mee.protocol.stats.get("movements") == 1


class TestPersistenceSplit:
    def test_in_subtree_writes_are_leaf_like(self, config):
        mee = engine_for(config)
        settle_subtree(mee, page=0)
        tree_persists = mee.nvm.persists(MetadataRegion.TREE)
        mee.write_block(0)
        assert mee.nvm.persists(MetadataRegion.TREE) == tree_persists
        assert mee.protocol.stats.get("subtree_hits") >= 1

    def test_out_of_subtree_writes_are_strict(self, config):
        mee = engine_for(config)
        settle_subtree(mee, page=0)
        tree_persists = mee.nvm.persists(MetadataRegion.TREE)
        other_region_page = mee.geometry.counters_covered_by(3)
        mee.write_block(other_region_page * 4096)
        levels = mee.geometry.num_node_levels
        assert mee.nvm.persists(MetadataRegion.TREE) == tree_persists + levels
        assert mee.protocol.stats.get("subtree_misses") >= 1

    def test_in_subtree_write_cheaper_than_outside(self, config):
        mee = engine_for(config)
        settle_subtree(mee, page=0)
        inside = mee.write_block(0)
        outside_page = mee.geometry.counters_covered_by(3)
        outside = mee.write_block(outside_page * 4096)
        assert inside < outside

    def test_only_in_subtree_nodes_dirty(self, config):
        """Section 4.2's dirty-bit argument: everything outside the
        subtree is written through, so only in-subtree nodes can carry
        dirty bits."""
        mee = engine_for(config)
        settle_subtree(mee, page=0)
        outside_page = mee.geometry.counters_covered_by(3)
        mee.write_block(outside_page * 4096)
        level = config.amnt.subtree_level
        for node_level, node_index in mee.mdcache.dirty_tree_nodes():
            assert node_level > level
            assert mee.protocol._node_in_subtree(
                node_level, node_index, (level, 0)
            )

    def test_subtree_register_terminates_read_walk(self, config):
        mee = engine_for(config)
        settle_subtree(mee, page=0)
        mee.mdcache.drop_all()  # force a cold walk
        tree_reads_before = mee.nvm.reads(MetadataRegion.TREE)
        mee.read_block(0)
        tree_reads = mee.nvm.reads(MetadataRegion.TREE) - tree_reads_before
        # Only the levels strictly below the subtree root are fetched.
        levels_below = mee.geometry.num_node_levels - config.amnt.subtree_level
        assert tree_reads == levels_below
        assert mee.stats.get("walk_stopped_at_register") == 1


class TestMovement:
    def test_hotness_shift_moves_subtree(self, config):
        mee = engine_for(config)
        settle_subtree(mee, page=0)
        other_page = mee.geometry.counters_covered_by(3) * 2
        for _ in range(2 * config.amnt.movement_interval_writes):
            mee.write_block(other_page * 4096)
        assert mee.protocol.current_region == 2
        assert mee.protocol.stats.get("movements") == 2

    def test_movement_flushes_dirty_subtree_nodes(self, config):
        mee = engine_for(config)
        settle_subtree(mee, page=0)
        # A few in-subtree (leaf-persistence) writes leave dirty nodes.
        for _ in range(3):
            mee.write_block(0)
        assert any(True for _ in mee.mdcache.dirty_tree_nodes())
        other_page = mee.geometry.counters_covered_by(3) * 2
        for _ in range(2 * config.amnt.movement_interval_writes):
            mee.write_block(other_page * 4096)
        # Old subtree's interior got persisted on the move.
        assert mee.protocol.stats.get("movement_flushes") > 0
        old_subtree = (config.amnt.subtree_level, 0)
        for node_level, node_index in mee.mdcache.dirty_tree_nodes():
            assert not mee.protocol._node_in_subtree(
                node_level, node_index, old_subtree
            )

    def test_register_tag_follows_subtree(self, config):
        mee = engine_for(config)
        settle_subtree(mee, page=0)
        register = mee.registers.get("amnt_subtree_root")
        assert tuple(register.tag) == (config.amnt.subtree_level, 0)


class TestRecoveryModel:
    def test_stale_fraction_is_one_region(self):
        config = default_config()  # 8 GB
        protocol = make_protocol("amnt", config)
        assert protocol.stale_data_bytes(8 * GB) == 8 * GB / 64  # level 3

    def test_table4_rows(self):
        config = default_config()
        model = RecoveryBandwidthModel(config.pcm)
        leaf = make_protocol("leaf", config)
        leaf_ms = leaf.recovery_ms(model, 2 * TB)
        for level, divisor in ((2, 8), (3, 64), (4, 512)):
            amnt = make_protocol("amnt", config.with_amnt(subtree_level=level))
            assert amnt.recovery_ms(model, 2 * TB) == pytest.approx(
                leaf_ms / divisor
            )

    def test_recovery_time_reconfigurable_via_level(self):
        config = default_config()
        model = RecoveryBandwidthModel(config.pcm)
        l3 = make_protocol("amnt", config.with_amnt(subtree_level=3))
        l4 = make_protocol("amnt", config.with_amnt(subtree_level=4))
        assert l4.recovery_ms(model, 2 * TB) < l3.recovery_ms(model, 2 * TB)


class TestFunctionalRecovery:
    def test_crash_and_recover_in_subtree_data(self, config):
        mee = engine_for(config, functional=True)
        payload = b"amnt-hot".ljust(64, b"\x00")
        interval = config.amnt.movement_interval_writes
        for _ in range(interval + 3):
            mee.write_block(0, data=payload)
        outcome = CrashInjector(mee).crash_and_recover()
        assert outcome.ok
        assert mee.read_block_data(0) == payload

    def test_recovery_detects_tampered_subtree_counters(self, config):
        mee = engine_for(config, functional=True)
        interval = config.amnt.movement_interval_writes
        for _ in range(interval + 3):
            mee.write_block(0, data=b"\x01" * 64)
        injector = CrashInjector(mee)
        injector.crash_only()
        mee.nvm.backend.corrupt(MetadataRegion.COUNTERS, 0)
        outcome = injector.recover()
        assert not outcome.ok
        assert "subtree" in outcome.detail

    def test_nothing_selected_means_nothing_stale(self, config):
        mee = engine_for(config, functional=True)
        outcome = CrashInjector(mee).crash_and_recover()
        assert outcome.ok
        assert outcome.nodes_recomputed == 0


class TestArea:
    def test_table3_numbers(self, config):
        mee = engine_for(config)
        area = mee.protocol.area_overhead()
        assert area.nonvolatile_on_chip_bytes == 64
        assert area.volatile_on_chip_bytes == 96
        assert area.in_memory_bytes == 0
