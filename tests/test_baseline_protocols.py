"""Volatile, strict, and leaf persistence semantics."""

import pytest

from repro.cache.metadata_cache import counter_key, node_key
from repro.config import default_config
from repro.core.mee import MemoryEncryptionEngine
from repro.core.protocol import make_protocol
from repro.mem.backend import MetadataRegion
from repro.util.units import MB


@pytest.fixture
def config():
    return default_config(capacity_bytes=64 * MB)


def engine_for(config, name):
    return MemoryEncryptionEngine(config, make_protocol(name, config))


class TestVolatile:
    def test_no_persists_ever(self, config):
        mee = engine_for(config, "volatile")
        for i in range(20):
            mee.write_block(i * 4096)
        assert mee.nvm.persists() == 0

    def test_write_cost_is_posted_only(self, config):
        mee = engine_for(config, "volatile")
        protocol_cycles = mee.protocol.on_data_write(0, 0, mee.ancestor_path(0))
        assert protocol_cycles == 0


class TestStrict:
    def test_write_through_whole_path(self, config):
        mee = engine_for(config, "strict")
        mee.write_block(0)
        levels = mee.geometry.num_node_levels
        assert mee.nvm.persists(MetadataRegion.COUNTERS) == 1
        assert mee.nvm.persists(MetadataRegion.HMACS) == 1
        assert mee.nvm.persists(MetadataRegion.TREE) == levels

    def test_nothing_left_dirty(self, config):
        mee = engine_for(config, "strict")
        mee.write_block(0)
        assert not mee.mdcache.is_dirty(counter_key(0))
        for node in mee.ancestor_path(0):
            assert not mee.mdcache.is_dirty(node_key(node[0], node[1]))

    def test_strict_costs_more_than_leaf(self, config):
        strict = engine_for(config, "strict")
        leaf = engine_for(config, "leaf")
        assert strict.write_block(0) > leaf.write_block(0)

    def test_zero_stale_coverage(self, config):
        protocol = make_protocol("strict", config)
        assert protocol.stale_data_bytes(8 * MB) == 0.0


class TestLeaf:
    def test_persists_counter_and_hmac_only(self, config):
        mee = engine_for(config, "leaf")
        mee.write_block(0)
        assert mee.nvm.persists(MetadataRegion.COUNTERS) == 1
        assert mee.nvm.persists(MetadataRegion.HMACS) == 1
        assert mee.nvm.persists(MetadataRegion.TREE) == 0

    def test_tree_nodes_stay_dirty(self, config):
        mee = engine_for(config, "leaf")
        mee.write_block(0)
        assert not mee.mdcache.is_dirty(counter_key(0))
        for node in mee.ancestor_path(0):
            assert mee.mdcache.is_dirty(node_key(node[0], node[1]))

    def test_full_memory_stale_coverage(self, config):
        protocol = make_protocol("leaf", config)
        assert protocol.stale_data_bytes(64 * MB) == float(64 * MB)

    def test_repeat_writes_keep_persisting(self, config):
        mee = engine_for(config, "leaf")
        for _ in range(5):
            mee.write_block(0)
        assert mee.nvm.persists(MetadataRegion.COUNTERS) == 5
