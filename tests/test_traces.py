"""Trace generation, statistics, persistence, and interleaving."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.units import MB
from repro.workloads.multiprogram import interleave, multiprogram_trace, pair_label
from repro.workloads.synthetic import WorkloadProfile, generate_trace
from repro.workloads.trace import ColumnarAccesses, MemoryAccess, Trace


def profile(**overrides):
    base = dict(
        name="unit",
        footprint_bytes=1 * MB,
        num_accesses=5000,
        write_fraction=0.3,
        hot_fraction=0.1,
        hot_access_fraction=0.8,
        sequential_fraction=0.5,
        think_cycles=10,
    )
    base.update(overrides)
    return WorkloadProfile(**base)


class TestProfileValidation:
    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            profile(write_fraction=1.5)

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            profile(stream_window_fraction=0.0)

    def test_footprint_minimum(self):
        with pytest.raises(ValueError):
            profile(footprint_bytes=32)

    def test_accesses_positive(self):
        with pytest.raises(ValueError):
            profile(num_accesses=0)

    def test_scaled_changes_length_only(self):
        base = profile()
        scaled = base.scaled(accesses=99)
        assert scaled.num_accesses == 99
        assert scaled.footprint_bytes == base.footprint_bytes

    def test_scaled_arbitrary_field(self):
        assert profile().scaled(base_vaddr=0x42).base_vaddr == 0x42


class TestGeneration:
    def test_deterministic_for_seed(self):
        a = generate_trace(profile(), seed=7)
        b = generate_trace(profile(), seed=7)
        assert a.accesses == b.accesses

    def test_seeds_differ(self):
        a = generate_trace(profile(), seed=7)
        b = generate_trace(profile(), seed=8)
        assert a.accesses != b.accesses

    def test_length_matches_profile(self):
        assert len(generate_trace(profile())) == 5000

    def test_write_fraction_approximates_parameter(self):
        trace = generate_trace(profile(num_accesses=20000), seed=1)
        assert trace.write_fraction() == pytest.approx(0.3, abs=0.02)

    def test_addresses_stay_in_footprint(self):
        prof = profile()
        trace = generate_trace(prof, seed=1)
        for access in trace.accesses[:500]:
            assert (
                prof.base_vaddr
                <= access.vaddr
                < prof.base_vaddr + prof.footprint_bytes
            )

    def test_pid_tagging(self):
        trace = generate_trace(profile(), seed=1, pid=4)
        assert trace.pids() == [4]

    def test_hot_concentration(self):
        """With 0 sequential share, hot_access_fraction of accesses land
        in hot_fraction of the footprint."""
        prof = profile(
            sequential_fraction=0.0,
            hot_fraction=0.1,
            hot_access_fraction=0.9,
            num_accesses=20000,
        )
        trace = generate_trace(prof, seed=1)
        pages = {}
        for access in trace:
            page = access.vaddr // 4096
            pages[page] = pages.get(page, 0) + 1
        shares = sorted(pages.values(), reverse=True)
        hot_pages = int(len(pages) * 0.15) or 1
        top_share = sum(shares[:hot_pages]) / len(trace)
        assert top_share > 0.7

    def test_think_cycles_propagated(self):
        trace = generate_trace(profile(think_cycles=42), seed=1)
        assert all(access.think_cycles == 42 for access in trace.accesses[:50])


class TestTraceContainer:
    def test_footprint_pages(self):
        trace = Trace("t", [MemoryAccess(0, False, 0, 1),
                            MemoryAccess(64, False, 0, 1),
                            MemoryAccess(4096, True, 0, 1),
                            MemoryAccess(0, False, 1, 1)])
        assert trace.footprint_pages() == 3  # (0,0), (0,1), (1,0)

    def test_save_load_roundtrip(self, tmp_path):
        trace = generate_trace(profile(num_accesses=100), seed=1)
        path = tmp_path / "trace.json"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.name == trace.name
        assert loaded.accesses == trace.accesses

    def test_repr_mentions_name_and_length(self):
        trace = Trace("demo", [])
        assert "demo" in repr(trace)


class TestInterleave:
    def test_preserves_all_accesses(self):
        a = generate_trace(profile(num_accesses=500), seed=1, pid=0)
        b = generate_trace(profile(num_accesses=300), seed=2, pid=1)
        merged = interleave([a, b])
        assert len(merged) == 800
        assert merged.pids() == [0, 1]

    def test_per_program_order_preserved(self):
        a = generate_trace(profile(num_accesses=200), seed=1, pid=0)
        b = generate_trace(profile(num_accesses=200), seed=2, pid=1)
        merged = interleave([a, b])
        assert [x for x in merged if x.pid == 0] == a.accesses
        assert [x for x in merged if x.pid == 1] == b.accesses

    def test_think_weighting_balances_time(self):
        """A slow (high think) program issues fewer early accesses."""
        fast = generate_trace(profile(num_accesses=300, think_cycles=1), 1, pid=0)
        slow = generate_trace(profile(num_accesses=300, think_cycles=30), 2, pid=1)
        merged = interleave([fast, slow])
        first_hundred = merged.accesses[:100]
        fast_share = sum(1 for x in first_hundred if x.pid == 0)
        assert fast_share > 80

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            interleave([])

    def test_multiprogram_trace_disjoint_vaddrs(self):
        merged = multiprogram_trace(
            [profile(), profile()], seed=1, accesses_each=100
        )
        by_pid = {}
        for access in merged:
            by_pid.setdefault(access.pid, set()).add(access.vaddr)
        assert not (by_pid[0] & by_pid[1])

    def test_pair_label_matches_paper_style(self):
        assert pair_label(("bodytrack", "fluidanimate")) == "bodyt and fluida"


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_generation_total_and_bounds_property(seed):
    prof = profile(num_accesses=300)
    trace = generate_trace(prof, seed=seed)
    assert len(trace) == 300
    assert all(
        prof.base_vaddr <= a.vaddr < prof.base_vaddr + prof.footprint_bytes
        for a in trace
    )


class TestColumnarAccesses:
    def records(self, n=6):
        return [
            MemoryAccess(
                vaddr=64 * i,
                is_write=bool(i % 2),
                pid=i % 3,
                think_cycles=i,
                flush=(i % 4 == 3),
            )
            for i in range(n)
        ]

    def test_roundtrip_through_columns(self):
        records = self.records()
        cols = ColumnarAccesses(records)
        assert list(cols) == records

    def test_columns_pack_write_and_flush_bits(self):
        cols = ColumnarAccesses(self.records())
        _, _, _, flags = cols.columns()
        for access, packed in zip(self.records(), flags):
            assert bool(packed & 1) == access.is_write
            assert bool(packed & 2) == access.flush

    def test_indexing_and_negative_indexing(self):
        records = self.records()
        cols = ColumnarAccesses(records)
        assert cols[0] == records[0]
        assert cols[-1] == records[-1]

    def test_slicing(self):
        records = self.records()
        cols = ColumnarAccesses(records)
        assert cols[1:4] == records[1:4]
        assert cols[::2] == records[::2]

    def test_equality_with_list_and_columnar(self):
        records = self.records()
        assert ColumnarAccesses(records) == records
        assert ColumnarAccesses(records) == ColumnarAccesses(records)
        assert ColumnarAccesses(records) != records[:-1]

    def test_append_matches_list_semantics(self):
        cols = ColumnarAccesses()
        for access in self.records():
            cols.append(access)
        assert cols == self.records()
        assert len(cols) == len(self.records())


class TestTraceDerivedCaches:
    def trace(self):
        return Trace.from_accesses(
            "unit",
            [
                MemoryAccess(4096 * i, i % 2 == 0, 0, 1)
                for i in range(10)
            ],
        )

    def test_write_fraction_cached_value_stable(self):
        trace = self.trace()
        assert trace.write_fraction() == trace.write_fraction() == 0.5

    def test_append_invalidates_write_fraction(self):
        trace = self.trace()
        assert trace.write_fraction() == 0.5
        trace.append(MemoryAccess(0, True, 0, 1))
        assert trace.write_fraction() == pytest.approx(6 / 11)

    def test_append_invalidates_touched_pages(self):
        trace = self.trace()
        assert trace.touched_pages() == 10
        trace.append(MemoryAccess(4096 * 50, True, 0, 1))
        assert trace.touched_pages() == 11

    def test_append_invalidates_pids(self):
        trace = self.trace()
        assert trace.pids() == [0]
        trace.append(MemoryAccess(0, True, 7, 1))
        assert trace.pids() == [0, 7]

    def test_footprint_cache_keyed_by_page_size(self):
        trace = self.trace()
        assert trace.footprint_pages(4096) == 10
        assert trace.footprint_pages(8192) == 5
        assert trace.footprint_pages(4096) == 10
